"""Categorical distributional DQN (C51, Bellemare et al. 2017).

The last of the Section 5 alternatives: instead of a scalar Q per
action, the network outputs a categorical distribution over ``n_atoms``
fixed support points in ``[v_min, v_max]``; learning projects the
Bellman-updated target distribution back onto the support and minimizes
cross-entropy.

The network has ``n_actions * n_atoms`` linear outputs reshaped to
``(batch, actions, atoms)``; softmax over atoms happens here (not in the
network) so the cross-entropy gradient stays the simple ``p - m`` form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import MLP, build_mlp
from repro.nn.optimizers import make_optimizer
from repro.rl.agent import AgentConfig, LearnInfo
from repro.rl.replay import ReplayMemory
from repro.rl.schedules import EpsilonGreedy, LinearSchedule
from repro.utils.rng import RngFactory


def _softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass(frozen=True)
class DistributionalConfig:
    """C51 value-distribution support."""

    n_atoms: int = 51
    v_min: float = -50.0
    v_max: float = 50.0

    def __post_init__(self) -> None:
        if self.n_atoms < 2:
            raise ValueError("n_atoms must be >= 2")
        if not self.v_min < self.v_max:
            raise ValueError("need v_min < v_max")

    @property
    def support(self) -> np.ndarray:
        """The fixed atom locations z_i."""
        return np.linspace(self.v_min, self.v_max, self.n_atoms)

    @property
    def delta_z(self) -> float:
        """Spacing between adjacent atoms."""
        return (self.v_max - self.v_min) / (self.n_atoms - 1)


class DistributionalDQNAgent:
    """C51 agent with the same act/remember/learn interface as DQNAgent."""

    def __init__(
        self,
        config: AgentConfig,
        dist: DistributionalConfig | None = None,
    ):
        self.config = config
        self.dist = dist or DistributionalConfig()
        rngs = RngFactory(config.seed)
        out_dim = config.n_actions * self.dist.n_atoms
        self.q_net: MLP = build_mlp(
            config.state_dim,
            config.hidden_sizes,
            out_dim,
            activation=config.activation,
            rng=rngs.get("network"),
        )
        self.target_net = self.q_net.clone()
        self.optimizer = make_optimizer(
            config.update_rule,
            self.q_net.params(),
            self.q_net.grads(),
            config.learning_rate,
            max_grad_norm=config.max_grad_norm,
        )
        self.replay = ReplayMemory(
            config.replay_capacity, config.state_dim, seed=rngs.get("replay")
        )
        self.policy = EpsilonGreedy(
            LinearSchedule(
                config.epsilon_start,
                config.epsilon_final,
                config.epsilon_decay,
            ),
            config.n_actions,
            exploration_steps=config.initial_exploration_steps,
            rng=rngs.get("policy"),
        )
        self.learn_steps = 0
        self.target_syncs = 0

    # -- distributions -----------------------------------------------------
    def _distribution(self, net: MLP, states: np.ndarray) -> np.ndarray:
        """(batch, actions, atoms) probabilities from ``net``."""
        x = np.asarray(states, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        logits = net.predict(x).reshape(
            x.shape[0], self.config.n_actions, self.dist.n_atoms
        )
        probs = _softmax(logits, axis=-1)
        return probs[0] if squeeze else probs

    def predict_q(self, state: np.ndarray) -> np.ndarray:
        """Expected values E[Z(s, a)] -- comparable to scalar Q-values."""
        probs = self._distribution(self.q_net, state)
        return probs @ self.dist.support

    def act(self, state: np.ndarray, global_step: int) -> tuple[int, np.ndarray]:
        """Epsilon-greedy on expected values; returns (action, q_values)."""
        q = self.predict_q(state)
        return self.policy.select(q, global_step), q

    def greedy_action(self, state: np.ndarray) -> int:
        """Pure exploitation."""
        return int(np.argmax(self.predict_q(state)))

    def remember(self, state, action, reward, next_state, terminal) -> None:
        """Store a transition."""
        self.replay.push(
            state, action, reward, next_state, terminal,
            discount=self.config.gamma,
        )

    def can_learn(self) -> bool:
        """True once the memory holds a minibatch."""
        return len(self.replay) >= self.config.minibatch_size

    # -- learning -------------------------------------------------------------
    def _project_target(
        self,
        rewards: np.ndarray,
        terminals: np.ndarray,
        next_probs: np.ndarray,
        discounts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Categorical projection of the Bellman-shifted distribution."""
        d = self.dist
        b = rewards.shape[0]
        if discounts is None:
            discounts = np.full(b, self.config.gamma)
        tz = rewards[:, None] + discounts[:, None] * (
            ~terminals[:, None]
        ) * d.support[None, :]
        tz = np.clip(tz, d.v_min, d.v_max)
        pos = (tz - d.v_min) / d.delta_z
        lower = np.floor(pos).astype(int)
        upper = np.ceil(pos).astype(int)
        m = np.zeros((b, d.n_atoms))
        # When lower == upper (exact hit) give full mass to that atom.
        exact = lower == upper
        w_up = pos - lower
        w_lo = 1.0 - w_up
        rows = np.repeat(np.arange(b), d.n_atoms)
        np.add.at(
            m,
            (rows, lower.ravel()),
            (next_probs * np.where(exact, 1.0, w_lo)).ravel(),
        )
        np.add.at(
            m,
            (rows, upper.ravel()),
            (next_probs * np.where(exact, 0.0, w_up)).ravel(),
        )
        return m

    def learn(self) -> LearnInfo:
        """One C51 cross-entropy step."""
        cfg = self.config
        batch = self.replay.sample(cfg.minibatch_size)
        b = len(batch)
        d = self.dist

        next_probs_all = self._distribution(self.target_net, batch.next_states)
        next_q = next_probs_all @ d.support
        best = np.argmax(next_q, axis=1)
        next_probs = next_probs_all[np.arange(b), best]  # (b, atoms)
        m = self._project_target(
            batch.rewards, batch.terminals, next_probs, batch.discounts
        )

        self.q_net.zero_grad()
        logits = self.q_net.forward(batch.states, train=True).reshape(
            b, cfg.n_actions, d.n_atoms
        )
        probs = _softmax(logits, axis=-1)
        chosen = probs[np.arange(b), batch.actions]  # (b, atoms)
        eps = 1e-12
        loss = float(-(m * np.log(chosen + eps)).sum(axis=1).mean())
        # d(cross-entropy)/d(logits of chosen action) = p - m.
        grad_logits = np.zeros_like(logits)
        grad_logits[np.arange(b), batch.actions] = (chosen - m) / b
        self.q_net.backward(
            grad_logits.reshape(b, -1), need_input_grad=False
        )
        self.optimizer.step()
        self.learn_steps += 1

        q_all = probs @ d.support
        td = (chosen @ d.support) - (m @ d.support)
        return LearnInfo(
            loss=loss,
            mean_q=float(q_all.mean()),
            max_q=float(q_all.max(axis=1).mean()),
            mean_td_error=float(np.abs(td).mean()),
        )

    def sync_target(self) -> None:
        """Copy online weights into the target network."""
        self.target_net.copy_weights_from(self.q_net)
        self.target_syncs += 1

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """Full C51 learner state (networks, optimizer, replay, RNGs)."""
        from repro.nn.checkpoints import network_arrays
        from repro.utils.rng import generator_state

        return {
            "state_dim": self.config.state_dim,
            "n_actions": self.config.n_actions,
            "n_atoms": self.dist.n_atoms,
            "q_net": network_arrays(self.q_net),
            "target_net": network_arrays(self.target_net),
            "optimizer": self.optimizer.state_dict(),
            "replay": self.replay.state_dict(),
            "policy_rng": generator_state(self.policy.rng),
            "learn_steps": self.learn_steps,
            "target_syncs": self.target_syncs,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated, in place)."""
        from repro.nn.checkpoints import (
            CheckpointMismatchError,
            load_network_arrays,
        )
        from repro.utils.rng import restore_generator

        checks = (
            ("state_dim", self.config.state_dim),
            ("n_actions", self.config.n_actions),
            ("n_atoms", self.dist.n_atoms),
        )
        for field_name, expected in checks:
            if int(state.get(field_name, -1)) != expected:
                raise CheckpointMismatchError(
                    f"C51 {field_name} mismatch: checkpoint "
                    f"{state.get(field_name)} vs agent {expected}"
                )
        load_network_arrays(self.q_net, state["q_net"], source="q_net")
        load_network_arrays(
            self.target_net, state["target_net"], source="target_net"
        )
        self.optimizer.load_state_dict(state["optimizer"])
        self.replay.load_state_dict(state["replay"])
        restore_generator(self.policy.rng, state["policy_rng"])
        self.learn_steps = int(state["learn_steps"])
        self.target_syncs = int(state["target_syncs"])
