"""The shared learn-step / target-sync / epsilon-schedule core.

Every trainer in the repo -- the sequential :class:`~repro.rl.trainer.
Trainer`, the batched :class:`~repro.rl.vector_trainer.VectorTrainer`,
and the multi-process :class:`~repro.rl.distributed.ActorLearnerTrainer`
-- must apply *exactly* the same update cadence so runs are comparable
at equal transition counts: one gradient step per ``train_interval``
environment transitions once ``learning_start`` transitions have been
collected, and one target-network sync per ``target_update_steps``
transitions.

:class:`LearnerCore` owns that cadence in one place.  The update count
for a step-counter move from ``prev_step`` to ``new_step`` is the number
of multiples of the interval *crossed*::

    updates = new_step // interval - prev_step // interval

For the sequential trainer (``new_step == prev_step + 1``) this is 1
exactly when ``new_step % interval == 0`` -- bit-identical to the
historical inline check -- while vector and actor/learner trainers
advance the counter by N per call and get the same update density.
Seeded pins in ``tests/test_learner_core.py`` hold both old trainers to
bit-equality with their pre-extraction behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.spans import SpanTracer


class LearnerCore:
    """Cadence-correct learn/target-sync driver around one agent.

    Parameters
    ----------
    agent:
        Any agent with ``can_learn()``, ``learn()``, ``sync_target()``,
        ``predict_q()`` and a ``policy`` (``repro.rl.agent.DQNAgent``
        and the distributional agent both qualify).
    learning_start:
        Global transitions of pure experience collection before any
        gradient step (Algorithm 2's warm-up).
    target_update_steps:
        Table 1's C -- target sync period in global transitions.
    train_interval:
        One gradient step per this many global transitions.
    """

    def __init__(
        self,
        agent,
        *,
        learning_start: int = 0,
        target_update_steps: int = 1000,
        train_interval: int = 1,
    ):
        self.agent = agent
        self.learning_start = int(learning_start)
        self.target_update_steps = max(1, int(target_update_steps))
        self.train_interval = max(1, int(train_interval))

    def advance(
        self,
        prev_step: int,
        new_step: int,
        tracer: SpanTracer | None = None,
    ) -> list:
        """Run the updates owed by the move ``prev_step -> new_step``.

        Returns the list of :class:`~repro.rl.agent.LearnInfo` records
        from the gradient steps taken (possibly empty).  Learns run
        before target syncs, matching both historical trainers.
        """
        infos: list = []
        if new_step >= self.learning_start and self.agent.can_learn():
            updates = (
                new_step // self.train_interval
                - prev_step // self.train_interval
            )
            for _ in range(updates):
                if tracer is not None:
                    with tracer.span("learn"):
                        infos.append(self.agent.learn())
                else:
                    infos.append(self.agent.learn())
        syncs = (
            new_step // self.target_update_steps
            - prev_step // self.target_update_steps
        )
        for _ in range(syncs):
            self.agent.sync_target()
        return infos

    def epsilon(self, global_step: int) -> float:
        """The exploration rate at ``global_step`` (policy schedule)."""
        return float(self.agent.policy.epsilon(global_step))

    def select_actions(
        self, states: np.ndarray, global_step: int
    ) -> np.ndarray:
        """Batched epsilon-greedy: one forward for all N states.

        Draw order (one ``uniform(size=n)`` then one
        ``integers(size=n)`` from the policy RNG) is pinned -- the
        vector trainer's bit-equality tests depend on it.
        """
        # predict_q (not q_net.predict): expands compact dynamic tails
        # back to full states when the agent runs in compact mode.
        q = self.agent.predict_q(states)  # (n, actions)
        greedy = np.argmax(q, axis=1)
        policy = self.agent.policy
        eps = policy.epsilon(global_step)
        n = states.shape[0]
        random_mask = policy.rng.uniform(size=n) < eps
        random_actions = policy.rng.integers(policy.n_actions, size=n)
        return np.where(random_mask, random_actions, greedy)
