"""Uniform experience replay (Lin 1993; Mnih et al. 2015).

The memory stores transition tuples ``(s, a, r, s', terminal)`` in
preallocated ring-buffer arrays -- at the paper's scale (400k memories of
16,599 floats) object-per-transition storage would be hopeless, so states
live in one float32 matrix and sampling is pure fancy indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """One stored transition (returned by single-item access)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    terminal: bool


@dataclass(frozen=True)
class Batch:
    """A sampled minibatch as parallel arrays."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    terminals: np.ndarray
    #: Buffer slots of each sample (prioritized replay updates these).
    indices: np.ndarray
    #: Importance-sampling weights (all ones for uniform replay).
    weights: np.ndarray
    #: Per-transition bootstrap discounts (gamma for 1-step transitions,
    #: gamma^h for h-step accumulated ones).
    discounts: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayMemory:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        *,
        seed: SeedLike = None,
        dtype=np.float32,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if state_dim < 1:
            raise ValueError("state_dim must be >= 1")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self._states = np.zeros((capacity, state_dim), dtype=dtype)
        self._next_states = np.zeros((capacity, state_dim), dtype=dtype)
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._terminals = np.zeros(capacity, dtype=bool)
        self._discounts = np.ones(capacity, dtype=np.float64)
        self._rng = as_generator(seed)
        self._size = 0
        self._cursor = 0

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        terminal: bool,
        discount: float = 1.0,
    ) -> int:
        """Store one transition; returns the slot index used.

        ``discount`` is the bootstrap factor for this transition's
        target (the agent passes gamma, or gamma^h for n-step).
        """
        i = self._cursor
        self._states[i] = state
        self._actions[i] = action
        self._rewards[i] = reward
        self._next_states[i] = next_state
        self._terminals[i] = terminal
        self._discounts[i] = discount
        self._cursor = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return i

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions (with replacement)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty memory")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return Batch(
            states=self._states[idx].astype(np.float64),
            actions=self._actions[idx].copy(),
            rewards=self._rewards[idx].copy(),
            next_states=self._next_states[idx].astype(np.float64),
            terminals=self._terminals[idx].copy(),
            indices=idx,
            weights=np.ones(batch_size),
            discounts=self._discounts[idx].copy(),
        )

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> Transition:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range 0..{self._size - 1}")
        return Transition(
            state=self._states[index].astype(np.float64),
            action=int(self._actions[index]),
            reward=float(self._rewards[index]),
            next_state=self._next_states[index].astype(np.float64),
            terminal=bool(self._terminals[index]),
        )

    @property
    def is_full(self) -> bool:
        """True once the ring has wrapped."""
        return self._size == self.capacity

    def nbytes(self) -> int:
        """Approximate memory footprint of the stored arrays."""
        return (
            self._states.nbytes
            + self._next_states.nbytes
            + self._actions.nbytes
            + self._rewards.nbytes
            + self._terminals.nbytes
        )
