"""Uniform experience replay (Lin 1993; Mnih et al. 2015).

The memory stores transition tuples ``(s, a, r, s', terminal)`` in
preallocated ring-buffer arrays -- at the paper's scale (400k memories of
16,599 floats) object-per-transition storage would be hopeless, so states
live in flat float32 matrices and sampling is pure gathering.

Two storage layouts are supported:

**Dense** (default) keeps full ``state`` / ``next_state`` matrices, as in
the classic DQN implementations.  At the paper's Table-1 scale that is
400k x 16,599 x float32 x 2 ~ 53 GB -- unusable on commodity hardware.

**Compact** (``static_prefix=...``) exploits two structural facts of the
docking MDP: the leading receptor block of every state is *constant for
the entire run*, and within an episode ``next_state`` of step *t* is
``state`` of step *t+1*.  The constant prefix is stored once, only the
dynamic ligand tail (~267 floats for the paper's 2BSM complex) lives in
the ring, and successor transitions share a single dynamic ring: the
``next_state`` tail of slot ``i`` is usually just ``_dyn[i + 1]``.  Tails
that have no live successor slot (episode ends, ring wrap, interleaved
multi-env pushes) spill into a small growable overflow pool.  The same
400k capacity then costs ~0.9 GB.

``sample()`` gathers into preallocated per-batch-size float32 buffers
(static prefix pre-filled), so steady-state learning allocates no new
state arrays.  **The returned state buffers are reused by the next
``sample()`` call of the same batch size** -- consume or copy them before
sampling again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator

#: ``_next_ref`` codes for compact storage (values >= 0 are overflow rows).
_SUCC = -1  #: next-state tail aliases the successor slot's state tail
_PENDING = -2  #: next-state tail lives in ``_pending`` (newest transition)


@dataclass(frozen=True)
class Transition:
    """One stored transition (returned by single-item access)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    terminal: bool


@dataclass(frozen=True)
class Batch:
    """A sampled minibatch as parallel arrays.

    ``states`` / ``next_states`` are views of preallocated gather
    buffers owned by the memory; they are overwritten by the next
    ``sample()`` call with the same batch size.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    terminals: np.ndarray
    #: Buffer slots of each sample (prioritized replay updates these).
    indices: np.ndarray
    #: Importance-sampling weights (all ones for uniform replay).
    weights: np.ndarray
    #: Per-transition bootstrap discounts (gamma for 1-step transitions,
    #: gamma^h for h-step accumulated ones).
    discounts: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayMemory:
    """Fixed-capacity ring buffer with uniform sampling.

    With ``static_prefix`` set, states are stored compactly (see module
    docstring); ``push`` then accepts either full ``state_dim`` vectors
    or bare dynamic tails of ``state_dim - len(static_prefix)`` floats,
    and samples reconstruct full states on the fly.
    """

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        *,
        seed: SeedLike = None,
        dtype=np.float32,
        static_prefix: np.ndarray | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if state_dim < 1:
            raise ValueError("state_dim must be >= 1")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self._dtype = np.dtype(dtype)
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._terminals = np.zeros(capacity, dtype=bool)
        self._discounts = np.ones(capacity, dtype=np.float64)
        self._rng = as_generator(seed)
        self._size = 0
        self._cursor = 0
        #: Per-batch-size (states, next_states) gather buffers.
        self._batch_bufs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._ones: dict[int, np.ndarray] = {}

        if static_prefix is None:
            self._compact = False
            self._states = np.zeros((capacity, state_dim), dtype=self._dtype)
            self._next_states = np.zeros(
                (capacity, state_dim), dtype=self._dtype
            )
        else:
            static = np.ascontiguousarray(static_prefix, dtype=self._dtype)
            if static.ndim != 1:
                raise ValueError("static_prefix must be a 1-D array")
            if static.shape[0] >= state_dim:
                raise ValueError(
                    "static_prefix must be shorter than state_dim "
                    f"({static.shape[0]} >= {state_dim})"
                )
            self._compact = True
            self._static = static
            self._static.flags.writeable = False
            self._prefix_len = static.shape[0]
            self._tail_dim = self.state_dim - self._prefix_len
            #: One dynamic ring: slot i holds the *state* tail of
            #: transition i; next-state tails resolve via ``_next_ref``.
            self._dyn = np.zeros(
                (capacity, self._tail_dim), dtype=self._dtype
            )
            self._next_ref = np.full(capacity, _PENDING, dtype=np.int64)
            #: Next-state tail of the most recent push, until the
            #: following push proves it aliases the successor slot (or
            #: spills it to overflow on mismatch / episode end).
            self._pending = np.zeros(self._tail_dim, dtype=self._dtype)
            self._pending_slot = -1
            #: Growable pool of next-state tails that cannot alias a
            #: live ring slot; rows are recycled through a free list
            #: when their owning transition is overwritten.
            self._overflow = np.zeros(
                (min(64, capacity), self._tail_dim), dtype=self._dtype
            )
            self._over_used = 0
            self._over_free: list[int] = []

    # -- compact-layout helpers -----------------------------------------

    @property
    def is_compact(self) -> bool:
        """True when states are stored as static prefix + dynamic tail."""
        return self._compact

    @property
    def prefix_len(self) -> int:
        """Length of the shared static prefix (0 for dense storage)."""
        return self._prefix_len if self._compact else 0

    @property
    def tail_dim(self) -> int:
        """Length of the per-transition dynamic tail."""
        return self._tail_dim if self._compact else self.state_dim

    def _tail_of(self, arr) -> np.ndarray:
        """Dynamic tail of ``arr`` (accepts full states or bare tails)."""
        a = np.asarray(arr)
        if a.ndim != 1:
            a = a.reshape(-1)
        if a.shape[0] == self.state_dim:
            a = a[self._prefix_len :]
        elif a.shape[0] != self._tail_dim:
            raise ValueError(
                f"state length {a.shape[0]} is neither state_dim "
                f"{self.state_dim} nor tail_dim {self._tail_dim}"
            )
        if a.dtype != self._dtype:
            a = a.astype(self._dtype)
        return a

    def _alloc_overflow(self) -> int:
        """Reserve one overflow row, growing the pool if needed."""
        if self._over_free:
            return self._over_free.pop()
        if self._over_used == self._overflow.shape[0]:
            rows = min(2 * self._overflow.shape[0], self.capacity)
            grown = np.zeros((rows, self._tail_dim), dtype=self._dtype)
            grown[: self._over_used] = self._overflow
            self._overflow = grown
        slot = self._over_used
        self._over_used += 1
        return slot

    def _flush_pending(self) -> None:
        """Spill the pending next-state tail to the overflow pool."""
        slot = self._alloc_overflow()
        self._overflow[slot] = self._pending
        self._next_ref[self._pending_slot] = slot
        self._pending_slot = -1

    def _next_tail(self, index: int) -> np.ndarray:
        """Next-state tail of transition ``index`` (compact layout)."""
        ref = self._next_ref[index]
        if ref >= 0:
            return self._overflow[ref]
        if ref == _SUCC:
            return self._dyn[(index + 1) % self.capacity]
        return self._pending

    def _full_state(self, tail: np.ndarray) -> np.ndarray:
        """Reconstruct a full float64 state from a dynamic tail."""
        out = np.empty(self.state_dim, dtype=np.float64)
        out[: self._prefix_len] = self._static
        out[self._prefix_len :] = tail
        return out

    # -- core API -------------------------------------------------------

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        terminal: bool,
        discount: float = 1.0,
    ) -> int:
        """Store one transition; returns the slot index used.

        ``discount`` is the bootstrap factor for this transition's
        target (the agent passes gamma, or gamma^h for n-step).
        """
        i = self._cursor
        if self._compact:
            tail_s = self._tail_of(state)
            tail_n = self._tail_of(next_state)
            # Resolve the previous push's pending next-state: if this
            # state continues that trajectory, alias it to our slot.
            if self._pending_slot >= 0:
                if np.array_equal(self._pending, tail_s):
                    self._next_ref[self._pending_slot] = _SUCC
                    self._pending_slot = -1
                else:
                    self._flush_pending()
            # Recycle the overflow row of the transition we overwrite.
            if self._size == self.capacity and self._next_ref[i] >= 0:
                self._over_free.append(int(self._next_ref[i]))
            self._dyn[i] = tail_s
            np.copyto(self._pending, tail_n)
            self._pending_slot = i
            self._next_ref[i] = _PENDING
        else:
            self._states[i] = state
            self._next_states[i] = next_state
        self._actions[i] = action
        self._rewards[i] = reward
        self._terminals[i] = terminal
        self._discounts[i] = discount
        if self._compact and terminal:
            # Episode over: the next push starts a fresh trajectory, so
            # this next-state can never alias a ring slot.
            self._flush_pending()
        self._cursor = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return i

    def _batch_buffers(
        self, batch_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(states, next_states) gather buffers for this batch size."""
        bufs = self._batch_bufs.get(batch_size)
        if bufs is None:
            states = np.empty(
                (batch_size, self.state_dim), dtype=self._dtype
            )
            next_states = np.empty_like(states)
            if self._compact:
                states[:, : self._prefix_len] = self._static
                next_states[:, : self._prefix_len] = self._static
            bufs = (states, next_states)
            self._batch_bufs[batch_size] = bufs
        return bufs

    def _gather(
        self, idx: np.ndarray, weights: np.ndarray | None = None
    ) -> Batch:
        """Build a :class:`Batch` for ``idx`` using the shared buffers."""
        b = int(idx.shape[0])
        states, next_states = self._batch_buffers(b)
        if self._compact:
            p = self._prefix_len
            for j, i in enumerate(idx):
                states[j, p:] = self._dyn[i]
                next_states[j, p:] = self._next_tail(int(i))
        else:
            np.take(self._states, idx, axis=0, out=states)
            np.take(self._next_states, idx, axis=0, out=next_states)
        if weights is None:
            weights = self._ones.get(b)
            if weights is None:
                weights = np.ones(b)
                weights.flags.writeable = False
                self._ones[b] = weights
        return Batch(
            states=states,
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_states=next_states,
            terminals=self._terminals[idx],
            indices=idx,
            weights=weights,
            discounts=self._discounts[idx],
        )

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions (with replacement)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty memory")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return self._gather(idx)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> Transition:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range 0..{self._size - 1}")
        if self._compact:
            state = self._full_state(self._dyn[index])
            next_state = self._full_state(self._next_tail(index))
        else:
            state = self._states[index].astype(np.float64)
            next_state = self._next_states[index].astype(np.float64)
        return Transition(
            state=state,
            action=int(self._actions[index]),
            reward=float(self._rewards[index]),
            next_state=next_state,
            terminal=bool(self._terminals[index]),
        )

    @property
    def is_full(self) -> bool:
        """True once the ring has wrapped."""
        return self._size == self.capacity

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """Full replay state: ring contents, cursor, and sampling RNG.

        Ring arrays are trimmed to the occupied rows (slots beyond
        ``len(self)`` have never been written), so checkpoints of a
        part-filled memory stay proportional to the data actually held.
        Restoring via :meth:`load_state_dict` is bit-exact: the same
        pushes and the same ``sample()`` draws follow.
        """
        from repro.utils.rng import generator_state

        n = self._size
        state: dict = {
            "layout": "compact" if self._compact else "dense",
            "capacity": self.capacity,
            "state_dim": self.state_dim,
            "dtype": self._dtype.name,
            "size": n,
            "cursor": self._cursor,
            "actions": self._actions[:n].copy(),
            "rewards": self._rewards[:n].copy(),
            "terminals": self._terminals[:n].copy(),
            "discounts": self._discounts[:n].copy(),
            "rng": generator_state(self._rng),
        }
        if self._compact:
            state.update(
                prefix_len=self._prefix_len,
                static=self._static.copy(),
                dyn=self._dyn[:n].copy(),
                next_ref=self._next_ref[:n].copy(),
                pending=self._pending.copy(),
                pending_slot=self._pending_slot,
                overflow=self._overflow[: self._over_used].copy(),
                over_used=self._over_used,
                over_free=list(self._over_free),
            )
        else:
            state.update(
                states=self._states[:n].copy(),
                next_states=self._next_states[:n].copy(),
            )
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated, in place)."""
        from repro.nn.checkpoints import CheckpointMismatchError
        from repro.utils.rng import restore_generator

        layout = "compact" if self._compact else "dense"
        if state.get("layout") != layout:
            raise CheckpointMismatchError(
                f"replay layout mismatch: checkpoint "
                f"{state.get('layout')!r} vs memory {layout!r}"
            )
        for field in ("capacity", "state_dim"):
            if int(state.get(field, -1)) != getattr(self, field):
                raise CheckpointMismatchError(
                    f"replay {field} mismatch: checkpoint "
                    f"{state.get(field)} vs memory {getattr(self, field)}"
                )
        if state.get("dtype") != self._dtype.name:
            raise CheckpointMismatchError(
                f"replay dtype mismatch: checkpoint {state.get('dtype')!r} "
                f"vs memory {self._dtype.name!r}"
            )
        n = int(state["size"])
        if self._compact:
            if int(state["prefix_len"]) != self._prefix_len:
                raise CheckpointMismatchError(
                    f"static prefix length mismatch: checkpoint "
                    f"{state['prefix_len']} vs memory {self._prefix_len}"
                )
            if not np.array_equal(
                np.asarray(state["static"]), self._static
            ):
                raise CheckpointMismatchError(
                    "static prefix contents differ between checkpoint "
                    "and memory (different complex?)"
                )
            self._dyn[:n] = state["dyn"]
            self._dyn[n:] = 0
            self._next_ref[:n] = state["next_ref"]
            self._next_ref[n:] = _PENDING
            np.copyto(self._pending, np.asarray(state["pending"]))
            self._pending_slot = int(state["pending_slot"])
            used = int(state["over_used"])
            if used > self._overflow.shape[0]:
                grown = np.zeros(
                    (used, self._tail_dim), dtype=self._dtype
                )
                self._overflow = grown
            self._overflow[:used] = state["overflow"]
            self._overflow[used:] = 0
            self._over_used = used
            self._over_free = [int(i) for i in state["over_free"]]
        else:
            self._states[:n] = state["states"]
            self._states[n:] = 0
            self._next_states[:n] = state["next_states"]
            self._next_states[n:] = 0
        self._actions[:n] = state["actions"]
        self._actions[n:] = 0
        self._rewards[:n] = state["rewards"]
        self._rewards[n:] = 0
        self._terminals[:n] = state["terminals"]
        self._terminals[n:] = False
        self._discounts[:n] = state["discounts"]
        self._discounts[n:] = 1.0
        self._size = n
        self._cursor = int(state["cursor"])
        restore_generator(self._rng, state["rng"])

    def nbytes(self) -> int:
        """Approximate memory footprint of the stored arrays."""
        n = (
            self._actions.nbytes
            + self._rewards.nbytes
            + self._terminals.nbytes
            + self._discounts.nbytes
        )
        if self._compact:
            n += (
                self._static.nbytes
                + self._dyn.nbytes
                + self._next_ref.nbytes
                + self._pending.nbytes
                + self._overflow.nbytes
            )
        else:
            n += self._states.nbytes + self._next_states.nbytes
        return n
