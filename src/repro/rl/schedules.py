"""Exploration schedules (Table 1's epsilon block)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class ConstantSchedule:
    """A schedule that always returns the same value."""

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, step: int) -> float:
        return self.value


class LinearSchedule:
    """Linear annealing: ``start - decay * step``, clamped at ``final``.

    Matches Table 1's parameterization (epsilon decay is a *rate per
    time-step*, 4.5e-5, rather than a horizon).
    """

    def __init__(self, start: float, final: float, decay_per_step: float):
        if decay_per_step < 0:
            raise ValueError("decay_per_step must be non-negative")
        self.start = float(start)
        self.final = float(final)
        self.decay = float(decay_per_step)

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        value = self.start - self.decay * step
        lo, hi = sorted((self.start, self.final))
        return float(np.clip(value, lo, hi))

    def steps_to_final(self) -> float:
        """Steps until the schedule saturates (inf when decay is 0)."""
        if self.decay == 0:
            return float("inf")
        return abs(self.start - self.final) / self.decay


class EpsilonGreedy:
    """Epsilon-greedy action selection over a Q-value callable.

    Before ``exploration_steps`` every action is random ("Initial
    exploration steps" in Table 1); afterwards epsilon follows the given
    schedule.
    """

    def __init__(
        self,
        schedule,
        n_actions: int,
        *,
        exploration_steps: int = 0,
        rng: SeedLike = None,
    ):
        if n_actions < 1:
            raise ValueError("n_actions must be >= 1")
        self.schedule = schedule
        self.n_actions = int(n_actions)
        self.exploration_steps = int(exploration_steps)
        self.rng = as_generator(rng)

    def epsilon(self, step: int) -> float:
        """Effective epsilon at ``step`` (1.0 during forced exploration)."""
        if step < self.exploration_steps:
            return 1.0
        return self.schedule(step - self.exploration_steps)

    def select(self, q_values: np.ndarray, step: int) -> int:
        """Pick an action from ``q_values`` under the schedule."""
        if self.rng.uniform() < self.epsilon(step):
            return int(self.rng.integers(self.n_actions))
        q = np.asarray(q_values, dtype=float)
        if q.shape != (self.n_actions,):
            raise ValueError(
                f"expected {self.n_actions} Q-values, got shape {q.shape}"
            )
        return int(np.argmax(q))
