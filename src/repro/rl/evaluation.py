"""Policy evaluation: the DQN-Nature protocol applied to docking.

The paper tracks only the training-time Q metric (Figure 4); standard
DQN practice additionally freezes the policy periodically and measures
greedy (or small-epsilon) performance.  This module provides that
protocol so training quality can be judged on *docking* outcomes (best
score, crystal RMSD, success rate) rather than Q magnitudes alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregates over a batch of frozen-policy episodes."""

    episodes: int
    mean_best_score: float
    max_best_score: float
    mean_episode_length: float
    mean_min_rmsd: float
    success_rate: float

    def summary(self) -> str:
        """One-line report."""
        return (
            f"eval over {self.episodes} episodes: "
            f"best score mean {self.mean_best_score:.2f} "
            f"(max {self.max_best_score:.2f}), "
            f"min RMSD mean {self.mean_min_rmsd:.2f} A, "
            f"success@2A {self.success_rate:.1%}"
        )


def evaluate_policy(
    env,
    agent,
    *,
    episodes: int = 5,
    max_steps: int = 200,
    epsilon: float = 0.05,
    rmsd_threshold: float = 2.0,
    rng: SeedLike = None,
) -> EvaluationResult:
    """Run frozen-policy episodes and aggregate docking metrics.

    ``epsilon`` > 0 follows DQN-Nature's evaluation recipe (a small
    random fraction prevents degenerate deterministic loops, which the
    back-and-forth ±action structure of docking invites).
    """
    if episodes < 1 or max_steps < 1:
        raise ValueError("episodes and max_steps must be >= 1")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must lie in [0, 1]")
    gen = as_generator(rng)
    best_scores: list[float] = []
    lengths: list[int] = []
    min_rmsds: list[float] = []
    for _ep in range(episodes):
        state = env.reset()
        best = float("-inf")
        min_rmsd = float("inf")
        steps = 0
        for _t in range(max_steps):
            if epsilon and gen.uniform() < epsilon:
                action = int(gen.integers(env.n_actions))
            else:
                action = agent.greedy_action(state)
            state, _r, done, info = env.step(action)
            steps += 1
            s = info.get("score", float("nan"))
            if np.isfinite(s):
                best = max(best, s)
            r = info.get("crystal_rmsd", float("nan"))
            if np.isfinite(r):
                min_rmsd = min(min_rmsd, r)
            if done:
                break
        best_scores.append(best)
        lengths.append(steps)
        min_rmsds.append(min_rmsd)
    rmsds = np.asarray(min_rmsds)
    finite = np.isfinite(rmsds)
    return EvaluationResult(
        episodes=episodes,
        mean_best_score=float(np.mean(best_scores)),
        max_best_score=float(np.max(best_scores)),
        mean_episode_length=float(np.mean(lengths)),
        mean_min_rmsd=float(rmsds[finite].mean()) if finite.any() else float("nan"),
        success_rate=float((rmsds[finite] <= rmsd_threshold).mean())
        if finite.any()
        else 0.0,
    )


@dataclass
class PeriodicEvaluator:
    """Trainer callback running :func:`evaluate_policy` every N episodes.

    Usage::

        evaluator = PeriodicEvaluator(env, agent, every=10)
        Trainer(..., on_episode_end=evaluator).run()
        evaluator.results  # [(episode, EvaluationResult), ...]
    """

    env: object
    agent: object
    every: int = 10
    episodes: int = 3
    max_steps: int = 100
    epsilon: float = 0.05
    seed: int = 0
    results: list[tuple[int, EvaluationResult]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")

    def __call__(self, stats) -> None:
        if (stats.episode + 1) % self.every:
            return
        result = evaluate_policy(
            self.env,
            self.agent,
            episodes=self.episodes,
            max_steps=self.max_steps,
            epsilon=self.epsilon,
            rng=self.seed + stats.episode,
        )
        self.results.append((stats.episode, result))

    def score_series(self) -> np.ndarray:
        """Mean best score at each evaluation point."""
        return np.asarray([r.mean_best_score for _e, r in self.results])
