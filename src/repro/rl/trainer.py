"""The training loop of Algorithm 2 with Figure 4 instrumentation.

The trainer owns the episode loop; the agent owns learning; the
environment owns docking physics and game rules.  Metrics follow the
paper's protocol: "track the average maximum predicted Q for each
time-step" once learning has started, aggregated per episode -- exactly
the series plotted in Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.rl.learner import LearnerCore
from repro.telemetry.callbacks import CallbackList, StepInfo, TrainerCallback
from repro.telemetry.spans import SpanTracer
from repro.utils.ascii_plot import ascii_line_plot, sparkline


class SupportsEnv(Protocol):
    """Environment interface the trainer drives (gym-flavoured)."""

    def reset(self) -> np.ndarray: ...

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]: ...


@dataclass(frozen=True)
class EpisodeStats:
    """Per-episode aggregates."""

    episode: int
    steps: int
    total_reward: float
    #: Mean over the episode's time-steps of ``max_a Q(s_t, a)`` -- the
    #: Figure 4 quantity.
    avg_max_q: float
    best_score: float
    final_score: float
    epsilon: float
    mean_loss: float
    #: True if any learning update ran during this episode.
    learning_active: bool
    termination: str
    #: Closest approach to the crystallographic pose (RMSD, angstrom);
    #: NaN when the environment does not report it.
    min_crystal_rmsd: float = float("nan")


@dataclass
class TrainingHistory:
    """Full run record with the figure-series accessors."""

    episodes: list[EpisodeStats] = field(default_factory=list)
    total_steps: int = 0
    wall_seconds: float = 0.0
    timer_report: str = ""

    def figure4_series(self) -> np.ndarray:
        """Average max predicted Q per episode, from the first episode
        where learning was active (the paper's measurement window)."""
        active = [e.avg_max_q for e in self.episodes if e.learning_active]
        return np.asarray(active)

    def best_score_series(self) -> np.ndarray:
        """Best engine score reached in each episode."""
        return np.asarray([e.best_score for e in self.episodes])

    def reward_series(self) -> np.ndarray:
        """Total clipped reward per episode."""
        return np.asarray([e.total_reward for e in self.episodes])

    def rmsd_series(self) -> np.ndarray:
        """Minimum crystal RMSD per episode (NaN where unavailable)."""
        return np.asarray([e.min_crystal_rmsd for e in self.episodes])

    def docking_success_rate(self, threshold: float = 2.0) -> float:
        """Fraction of episodes whose closest approach to the crystal
        pose was within ``threshold`` angstrom RMSD -- the standard
        docking success criterion ("discovering the crystallographic
        solution" in the paper's terms)."""
        rmsd = self.rmsd_series()
        valid = np.isfinite(rmsd)
        if not valid.any():
            return 0.0
        return float((rmsd[valid] <= threshold).mean())

    @property
    def best_score(self) -> float:
        """Best engine score reached across the entire run."""
        if not self.episodes:
            return float("-inf")
        return max(e.best_score for e in self.episodes)

    def summary(self) -> str:
        """Multi-line human-readable run report (with ASCII Figure 4)."""
        if not self.episodes:
            return "(no episodes)"
        q = self.figure4_series()
        lines = [
            f"episodes: {len(self.episodes)}   steps: {self.total_steps}"
            f"   wall: {self.wall_seconds:.1f}s",
            f"best score: {self.best_score:.2f}   "
            f"final epsilon: {self.episodes[-1].epsilon:.3f}",
        ]
        if q.size:
            lines.append(
                f"avg max Q: first {q[0]:.3f}  peak {q.max():.3f} "
                f"(episode {int(np.argmax(q))} of measured)  "
                f"last {q[-1]:.3f}"
            )
            lines.append("Q curve:     " + sparkline(q))
        lines.append("best scores: " + sparkline(self.best_score_series()))
        return "\n".join(lines)

    def figure4_plot(self) -> str:
        """ASCII rendering of the Figure 4 training curve."""
        return ascii_line_plot(
            self.figure4_series(),
            title="Figure 4: average max predicted Q per episode",
        )


class Trainer:
    """Drives Algorithm 2 against any agent/environment pair.

    Parameters
    ----------
    env / agent:
        See :class:`SupportsEnv` and :class:`repro.rl.agent.DQNAgent`
        (the distributional agent satisfies the same protocol).
    episodes / max_steps_per_episode:
        Table 1's M and T.
    learning_start:
        Global steps of pure experience collection before updates.
    target_update_steps:
        Table 1's C -- target sync period in *global environment steps*.
    train_interval:
        Gradient steps every this many environment steps.
    callbacks:
        :class:`~repro.telemetry.callbacks.TrainerCallback` hooks; they
        receive episode boundaries and per-step
        :class:`~repro.telemetry.callbacks.StepInfo` records.  With no
        callbacks registered the per-step hook machinery is skipped
        entirely.
    tracer:
        Shared :class:`~repro.telemetry.spans.SpanTracer`; pass the one
        owned by a :class:`~repro.telemetry.run.TelemetryRun` so
        trainer phases nest with agent/env/engine spans.  A private
        tracer is created when omitted (it feeds ``timer_report``).
    """

    def __init__(
        self,
        env: SupportsEnv,
        agent,
        *,
        episodes: int,
        max_steps_per_episode: int,
        learning_start: int = 0,
        target_update_steps: int = 1000,
        train_interval: int = 1,
        on_episode_end=None,
        callbacks: Sequence[TrainerCallback] | None = None,
        tracer: SpanTracer | None = None,
    ):
        if episodes < 1 or max_steps_per_episode < 1:
            raise ValueError("episodes and max_steps must be >= 1")
        self.env = env
        self.agent = agent
        self.episodes = int(episodes)
        self.max_steps = int(max_steps_per_episode)
        # All update cadence (learn / target-sync / epsilon) lives in
        # the shared LearnerCore so every trainer applies Algorithm 2's
        # schedule identically.
        self.core = LearnerCore(
            agent,
            learning_start=learning_start,
            target_update_steps=target_update_steps,
            train_interval=train_interval,
        )
        self.on_episode_end = on_episode_end
        self.callbacks = CallbackList(callbacks)
        self.tracer = tracer

    @property
    def learning_start(self) -> int:
        return self.core.learning_start

    @property
    def target_update_steps(self) -> int:
        return self.core.target_update_steps

    @property
    def train_interval(self) -> int:
        return self.core.train_interval

    def run(
        self,
        *,
        start_episode: int = 0,
        global_step: int = 0,
        history: TrainingHistory | None = None,
        stop=None,
    ) -> TrainingHistory:
        """Execute the training run (or the remainder of one).

        ``start_episode`` / ``global_step`` / ``history`` continue an
        interrupted run from a checkpoint: the episode loop resumes at
        ``start_episode`` with the epsilon/target-sync counters at
        ``global_step`` and new episodes appended to ``history``.  With
        the defaults this is a fresh run.  ``stop``, when given, is
        called after every completed episode as ``stop(ep, global_step)``
        and ends the run early when it returns True -- the hook
        :class:`repro.runtime.loop.RunLoop` uses for checkpoint cadence
        and graceful shutdown.  ``wall_seconds`` accumulates across
        resumed segments; ``timer_report`` covers only the last one.
        """
        tracer = self.tracer if self.tracer is not None else SpanTracer()
        cb = self.callbacks
        notify = len(cb) > 0
        if history is None:
            history = TrainingHistory()

        t0 = time.perf_counter()
        if notify:
            cb.on_train_start(self)
        with tracer.span("train"):
            for ep in range(start_episode, self.episodes):
                if notify:
                    cb.on_episode_start(ep)
                state = self.env.reset()
                max_qs: list[float] = []
                losses: list[float] = []
                total_reward = 0.0
                best_score = float("-inf")
                final_score = float("nan")
                min_rmsd = float("nan")
                termination = "time-limit"
                learning_active = False
                steps = 0
                for _t in range(self.max_steps):
                    with tracer.span("act"):
                        action, q = self.agent.act(state, global_step)
                    max_q = float(np.max(q))
                    max_qs.append(max_q)
                    with tracer.span("env-step"):
                        next_state, reward, done, info = self.env.step(action)
                    self.agent.remember(
                        state, action, reward, next_state, done
                    )
                    state = next_state
                    total_reward += reward
                    score = info.get("score", float("nan"))
                    if np.isfinite(score):
                        best_score = max(best_score, score)
                        final_score = score
                    rmsd = info.get("crystal_rmsd", float("nan"))
                    if np.isfinite(rmsd):
                        min_rmsd = rmsd if np.isnan(min_rmsd) else min(
                            min_rmsd, rmsd
                        )
                    global_step += 1
                    steps += 1
                    step_loss = float("nan")
                    learn_infos = self.core.advance(
                        global_step - 1, global_step, tracer
                    )
                    if learn_infos:
                        losses.append(learn_infos[-1].loss)
                        step_loss = learn_infos[-1].loss
                        learning_active = True
                    if done:
                        termination = info.get("termination", "terminal")
                    if notify:
                        cb.on_step(
                            StepInfo(
                                episode=ep,
                                step=steps - 1,
                                global_step=global_step,
                                action=int(action),
                                reward=float(reward),
                                score=float(score),
                                max_q=max_q,
                                epsilon=float(
                                    self.agent.policy.epsilon(global_step)
                                ),
                                loss=step_loss,
                                done=done,
                            )
                        )
                    if done:
                        break
                # n-step agents must not carry partial windows across
                # episodes.
                flush = getattr(self.agent, "flush_episode", None)
                if flush is not None:
                    flush()
                stats = EpisodeStats(
                    episode=ep,
                    steps=steps,
                    total_reward=total_reward,
                    avg_max_q=float(np.mean(max_qs)) if max_qs else 0.0,
                    best_score=best_score,
                    final_score=final_score,
                    epsilon=self.agent.policy.epsilon(global_step),
                    mean_loss=(
                        float(np.mean(losses)) if losses else float("nan")
                    ),
                    learning_active=learning_active,
                    termination=termination,
                    min_crystal_rmsd=min_rmsd,
                )
                history.episodes.append(stats)
                history.total_steps = global_step
                if self.on_episode_end is not None:
                    self.on_episode_end(stats)
                if notify:
                    cb.on_episode_end(stats)
                if stop is not None and stop(ep, global_step):
                    break
        history.total_steps = global_step
        history.wall_seconds += time.perf_counter() - t0
        history.timer_report = tracer.report()
        if notify:
            cb.on_train_end(history)
        return history


def greedy_rollout(
    env: SupportsEnv, agent, max_steps: int
) -> tuple[float, list[float]]:
    """Deploy a trained agent greedily; returns (best score, score trace).

    This is the paper's end goal: once the NN is trained, docking is a
    cheap greedy walk instead of a costly stochastic search.
    """
    state = env.reset()
    scores: list[float] = []
    best = float("-inf")
    for _ in range(max_steps):
        action = agent.greedy_action(state)
        state, _reward, done, info = env.step(action)
        s = info.get("score", float("nan"))
        if np.isfinite(s):
            scores.append(s)
            best = max(best, s)
        if done:
            break
    return best, scores
