"""Deep reinforcement learning: DQN (Algorithm 2) and its extensions.

- :mod:`repro.rl.replay` -- the uniform experience-replay memory of the
  original DQN (ring buffer, preallocated arrays);
- :mod:`repro.rl.prioritized_replay` -- proportional prioritized replay
  (sum tree + importance weights), a Section 5 "newer variant" component;
- :mod:`repro.rl.schedules` -- the linear epsilon annealing of Table 1;
- :mod:`repro.rl.agent` -- :class:`DQNAgent` with the target network,
  reward-clipped learning step, and the DDQN/dueling switches;
- :mod:`repro.rl.distributional` -- categorical C51 agent;
- :mod:`repro.rl.trainer` -- the episode loop of Algorithm 2 with the
  Figure 4 metric instrumentation.
"""

from repro.rl.replay import ReplayMemory, Transition
from repro.rl.prioritized_replay import PrioritizedReplayMemory, SumTree
from repro.rl.schedules import LinearSchedule, ConstantSchedule, EpsilonGreedy
from repro.rl.agent import DQNAgent, AgentConfig
from repro.rl.distributional import DistributionalDQNAgent
from repro.rl.trainer import Trainer, TrainingHistory, EpisodeStats
from repro.rl.evaluation import (
    EvaluationResult,
    PeriodicEvaluator,
    evaluate_policy,
)
from repro.rl.learner import LearnerCore
from repro.rl.nstep import NStepTransitionBuffer
from repro.rl.vector_trainer import VectorTrainer, VectorRunStats
from repro.rl.distributed import ActorLearnerTrainer

__all__ = [
    "ReplayMemory",
    "Transition",
    "PrioritizedReplayMemory",
    "SumTree",
    "LinearSchedule",
    "ConstantSchedule",
    "EpsilonGreedy",
    "DQNAgent",
    "AgentConfig",
    "DistributionalDQNAgent",
    "Trainer",
    "TrainingHistory",
    "EpisodeStats",
    "EvaluationResult",
    "PeriodicEvaluator",
    "evaluate_policy",
    "LearnerCore",
    "NStepTransitionBuffer",
    "VectorTrainer",
    "VectorRunStats",
    "ActorLearnerTrainer",
]
