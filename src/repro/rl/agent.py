"""The DQN agent: Q-network, frozen target, replay, epsilon-greedy.

Implements the learner side of the paper's Algorithm 2, plus the
Section 5 variants behind flags:

- ``double=True`` -- Double DQN: the online network chooses the argmax
  action, the target network evaluates it (van Hasselt et al.);
- ``dueling=True`` -- dueling value/advantage head
  (:mod:`repro.nn.dueling`);
- ``prioritized=True`` -- prioritized replay with importance weights.

The distributional (C51) variant has different output semantics and
lives in :mod:`repro.rl.distributional`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import DQNDockingConfig
from repro.nn.dueling import DuelingMLP
from repro.nn.losses import make_loss
from repro.nn.network import MLP, build_mlp
from repro.nn.optimizers import make_optimizer
from repro.rl.prioritized_replay import PrioritizedReplayMemory
from repro.rl.replay import ReplayMemory
from repro.rl.schedules import EpsilonGreedy, LinearSchedule
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class AgentConfig:
    """Learner hyperparameters (see Table 1 for the paper's values)."""

    state_dim: int
    n_actions: int
    hidden_sizes: tuple[int, ...] = (135, 135)
    activation: str = "relu"
    gamma: float = 0.99
    learning_rate: float = 0.00025
    update_rule: str = "rmsprop"
    loss: str = "mse"
    minibatch_size: int = 32
    replay_capacity: int = 400000
    target_update_steps: int = 1000
    epsilon_start: float = 1.0
    epsilon_final: float = 0.05
    epsilon_decay: float = 4.5e-5
    initial_exploration_steps: int = 20000
    double: bool = False
    dueling: bool = False
    prioritized: bool = False
    #: Multi-step return horizon (1 = the paper's plain DQN; Rainbow
    #: uses 3).
    n_step: int = 1
    #: NoisyNet exploration: replaces epsilon-greedy with learned
    #: parameter noise (epsilon is forced to 0 when enabled).
    noisy: bool = False
    #: Polyak averaging coefficient for soft target updates; ``None``
    #: keeps the paper's hard every-C-steps sync.  When set, the target
    #: tracks ``tau * online + (1 - tau) * target`` after every learn
    #: step and explicit syncs become no-ops by default.
    target_update_tau: float | None = None
    max_grad_norm: float | None = 10.0
    #: Network compute precision.  float32 halves matmul bandwidth on
    #: the paper's 16,599-wide input layer with no measurable effect on
    #: docking behaviour (see docs/PERFORMANCE.md for the drift bound);
    #: NoisyNet layers always run in float64.
    dtype: str = "float32"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_step < 1:
            raise ValueError("n_step must be >= 1")
        if self.target_update_tau is not None and not (
            0.0 < self.target_update_tau <= 1.0
        ):
            raise ValueError("target_update_tau must lie in (0, 1]")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")

    @staticmethod
    def from_run_config(
        cfg: DQNDockingConfig, state_dim: int, n_actions: int
    ) -> "AgentConfig":
        """Derive the learner config from a run-level config."""
        variant = cfg.variant
        return AgentConfig(
            state_dim=state_dim,
            n_actions=n_actions,
            hidden_sizes=(cfg.hidden_size,) * cfg.hidden_layers,
            activation=cfg.activation,
            gamma=cfg.gamma,
            learning_rate=cfg.learning_rate,
            update_rule=cfg.update_rule,
            loss=cfg.loss,
            minibatch_size=cfg.minibatch_size,
            replay_capacity=cfg.replay_capacity,
            target_update_steps=cfg.target_update_steps,
            epsilon_start=cfg.epsilon_start,
            epsilon_final=cfg.epsilon_final,
            epsilon_decay=cfg.epsilon_decay,
            initial_exploration_steps=cfg.initial_exploration_steps,
            double=variant in ("ddqn", "dueling-ddqn", "rainbow"),
            dueling=variant in ("dueling", "dueling-ddqn", "rainbow"),
            prioritized=variant == "rainbow",
            n_step=3 if variant == "rainbow" else 1,
            seed=cfg.seed,
        )


@dataclass
class LearnInfo:
    """Diagnostics from one gradient step."""

    loss: float
    mean_q: float
    max_q: float
    mean_td_error: float


class DQNAgent:
    """Value-based agent with target network and experience replay.

    ``network`` overrides the default MLP (e.g. with a CNN from
    :func:`repro.nn.conv.build_cnn` for image states); it must accept
    flat ``config.state_dim`` inputs and emit ``config.n_actions``
    values.

    ``static_state`` enables compact-state mode: it is the constant
    leading block of every state (the docking receptor).  The replay
    then stores only dynamic tails (see :mod:`repro.rl.replay`), and
    ``act`` / ``predict_q`` / ``remember`` accept either full states or
    bare tails of ``state_dim - len(static_state)`` floats, which is
    what a compact :class:`~repro.env.docking_env.DockingEnv` emits.
    """

    def __init__(
        self,
        config: AgentConfig,
        *,
        network: MLP | None = None,
        static_state: np.ndarray | None = None,
    ):
        self.config = config
        rngs = RngFactory(config.seed)
        net_rng = rngs.get("network")
        if config.noisy and config.dueling:
            raise ValueError(
                "noisy + dueling is not supported; pick one head type"
            )
        # NoisyDense has no float32 path; keep noisy agents in float64.
        self.dtype = np.dtype(
            np.float64 if config.noisy else config.dtype
        )
        if network is not None:
            self.q_net = network
        elif config.noisy:
            from repro.nn.noisy import build_noisy_mlp

            self.q_net = build_noisy_mlp(
                config.state_dim,
                config.hidden_sizes,
                config.n_actions,
                rng=net_rng,
            )
        elif config.dueling:
            self.q_net: MLP = DuelingMLP(
                config.state_dim,
                config.hidden_sizes,
                config.n_actions,
                activation=config.activation,
                rng=net_rng,
                dtype=self.dtype,
            )
        else:
            self.q_net = build_mlp(
                config.state_dim,
                config.hidden_sizes,
                config.n_actions,
                activation=config.activation,
                rng=net_rng,
                dtype=self.dtype,
            )
        self.target_net = self.q_net.clone()
        self.optimizer = make_optimizer(
            config.update_rule,
            self.q_net.params(),
            self.q_net.grads(),
            config.learning_rate,
            max_grad_norm=config.max_grad_norm,
        )
        self.loss_fn = make_loss(config.loss)
        if static_state is not None:
            self._static = np.ascontiguousarray(
                static_state, dtype=self.dtype
            )
            self._static.flags.writeable = False
            if self._static.shape[0] >= config.state_dim:
                raise ValueError(
                    "static_state must be shorter than state_dim"
                )
            self._tail_dim = config.state_dim - self._static.shape[0]
            # Full-state reconstruction buffer for single-state acting;
            # batched buffers (vector trainer) allocate lazily per size.
            self._act_full = np.empty(config.state_dim, dtype=self.dtype)
            self._act_full[: self._static.shape[0]] = self._static
            self._full_bufs: dict[int, np.ndarray] = {}
        else:
            self._static = None
            self._tail_dim = config.state_dim
        if config.prioritized:
            self.replay: ReplayMemory = PrioritizedReplayMemory(
                config.replay_capacity,
                config.state_dim,
                seed=rngs.get("replay"),
                static_prefix=self._static,
            )
        else:
            self.replay = ReplayMemory(
                config.replay_capacity,
                config.state_dim,
                seed=rngs.get("replay"),
                static_prefix=self._static,
            )
        if config.noisy:
            # NoisyNet replaces epsilon-greedy: exploration comes from
            # the learned parameter noise, so epsilon stays at zero.
            from repro.rl.schedules import ConstantSchedule

            self.policy = EpsilonGreedy(
                ConstantSchedule(0.0),
                config.n_actions,
                exploration_steps=0,
                rng=rngs.get("policy"),
            )
        else:
            self.policy = EpsilonGreedy(
                LinearSchedule(
                    config.epsilon_start,
                    config.epsilon_final,
                    config.epsilon_decay,
                ),
                config.n_actions,
                exploration_steps=config.initial_exploration_steps,
                rng=rngs.get("policy"),
            )
        if config.n_step > 1:
            from repro.rl.nstep import NStepTransitionBuffer

            self._nstep: NStepTransitionBuffer | None = (
                NStepTransitionBuffer(config.n_step, config.gamma)
            )
        else:
            self._nstep = None
        self.learn_steps = 0
        self.target_syncs = 0
        # Reused across learn steps instead of np.zeros_like per step.
        self._grad_out = np.zeros(
            (config.minibatch_size, config.n_actions), dtype=self.dtype
        )
        self._arange = np.arange(config.minibatch_size)
        #: Optional :class:`repro.telemetry.spans.SpanTracer`; when set,
        #: the forward pass and the learn internals record spans
        #: ("q-forward", "replay-sample", "grad-step") under whatever
        #: span the caller has open.  None (default) costs one attribute
        #: check per call.
        self.tracer = None

    # -- acting ----------------------------------------------------------
    @property
    def static_state(self) -> np.ndarray | None:
        """Constant state prefix in compact mode (None otherwise)."""
        return self._static

    def _expand_states(self, x: np.ndarray) -> np.ndarray:
        """Reconstruct full states from dynamic tails (compact mode).

        Returns a reused buffer whose static prefix is pre-filled; it is
        overwritten by the next call with the same leading shape.
        """
        p = self._static.shape[0]
        if x.ndim == 1:
            self._act_full[p:] = x
            return self._act_full
        buf = self._full_bufs.get(x.shape[0])
        if buf is None:
            buf = np.empty(
                (x.shape[0], self.config.state_dim), dtype=self.dtype
            )
            buf[:, :p] = self._static
            self._full_bufs[x.shape[0]] = buf
        buf[:, p:] = x
        return buf

    def predict_q(self, state: np.ndarray) -> np.ndarray:
        """Q-values from the online network.

        Accepts a single state or a (n, dim) batch; in compact mode,
        bare dynamic tails are reconstructed against the static prefix
        before the forward pass.
        """
        x = np.asarray(state)
        if (
            self._static is not None
            and x.shape[-1] == self._tail_dim
            and self._tail_dim != self.config.state_dim
        ):
            x = self._expand_states(x)
        return self.q_net.predict(x)

    def act(self, state: np.ndarray, global_step: int) -> tuple[int, np.ndarray]:
        """Epsilon-greedy (or noisy) action; returns (action, q_values).

        Q-values are always computed (even on random actions) because the
        Figure 4 metric averages ``max_a Q(s_t, a)`` over *every*
        time-step.  With NoisyNet exploration, fresh noise is drawn per
        acting step, which is where the exploration comes from.
        """
        if self.config.noisy:
            from repro.nn.noisy import resample_network_noise

            resample_network_noise(self.q_net)
        if self.tracer is None:
            q = self.predict_q(state)
        else:
            with self.tracer.span("q-forward"):
                q = self.predict_q(state)
        return self.policy.select(q, global_step), q

    def greedy_action(self, state: np.ndarray) -> int:
        """Pure exploitation (evaluation rollouts; noise frozen at 0)."""
        if self.config.noisy:
            from repro.nn.noisy import zero_network_noise

            zero_network_noise(self.q_net)
        return int(np.argmax(self.predict_q(state)))

    # -- remembering -------------------------------------------------------
    def remember(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        terminal: bool,
    ) -> None:
        """Store a transition (accumulated to n steps when configured)."""
        if self._nstep is None:
            self.replay.push(
                state, action, reward, next_state, terminal,
                discount=self.config.gamma,
            )
            return
        if self._static is not None:
            # The n-step window holds states across several env steps; a
            # compact env reuses its tail buffers, so snapshot them.
            state = np.array(state, dtype=self.dtype)
            next_state = np.array(next_state, dtype=self.dtype)
        for t in self._nstep.push(state, action, reward, next_state, terminal):
            self.replay.push(
                t.state, t.action, t.reward, t.next_state, t.terminal,
                discount=t.discount,
            )

    def flush_episode(self) -> None:
        """Drain the n-step tail at an episode boundary (trainer hook)."""
        if self._nstep is None:
            return
        for t in self._nstep.flush():
            self.replay.push(
                t.state, t.action, t.reward, t.next_state, t.terminal,
                discount=t.discount,
            )

    # -- learning -------------------------------------------------------------
    def can_learn(self) -> bool:
        """True once the memory holds at least one minibatch."""
        return len(self.replay) >= self.config.minibatch_size

    def learn(self) -> LearnInfo:
        """One Algorithm 2 gradient step on a sampled minibatch."""
        cfg = self.config
        if cfg.noisy:
            # Independent noise draws for the online and target networks
            # per update (Fortunato et al., section 3).
            from repro.nn.noisy import resample_network_noise

            resample_network_noise(self.q_net)
            resample_network_noise(self.target_net)
        sp = self.tracer.span if self.tracer is not None else (
            lambda _name: nullcontext()
        )
        with sp("replay-sample"):
            batch = self.replay.sample(cfg.minibatch_size)
        b = len(batch)
        rows = self._arange if b == self._arange.shape[0] else np.arange(b)

        q_next_target = self.target_net.predict(batch.next_states)  # (b, k)
        if cfg.double:
            q_next_online = self.q_net.predict(batch.next_states)
            best_actions = np.argmax(q_next_online, axis=1)
            next_values = q_next_target[rows, best_actions]
        else:
            next_values = q_next_target.max(axis=1)
        # Per-transition bootstrap discount: gamma for 1-step pushes,
        # gamma^h for h-step accumulated transitions.
        targets = batch.rewards + batch.discounts * next_values * (
            ~batch.terminals
        )

        with sp("grad-step"):
            self.q_net.zero_grad()
            preds = self.q_net.forward(batch.states, train=True)  # (b, k)
            pred_chosen = preds[rows, batch.actions]
            td_errors = pred_chosen - targets
            loss_value, grad_chosen = self.loss_fn(
                pred_chosen, targets, weights=batch.weights
            )
            if b == self._grad_out.shape[0]:
                grad_out = self._grad_out
                grad_out.fill(0.0)
            else:
                grad_out = np.zeros((b, preds.shape[1]), dtype=self.dtype)
            grad_out[rows, batch.actions] = grad_chosen
            # Nothing sits below the network: skip the first layer's
            # input-grad matmul (at state_dim 16,599 it matches the
            # cost of the whole forward pass).
            self.q_net.backward(grad_out, need_input_grad=False)
            self.optimizer.step()
        self.learn_steps += 1

        if isinstance(self.replay, PrioritizedReplayMemory):
            self.replay.update_priorities(batch.indices, td_errors)

        if self.config.target_update_tau is not None:
            self._soft_update(self.config.target_update_tau)

        return LearnInfo(
            loss=float(loss_value),
            mean_q=float(preds.mean()),
            max_q=float(preds.max(axis=1).mean()),
            mean_td_error=float(np.abs(td_errors).mean()),
        )

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """Everything needed to continue training bit-for-bit.

        Covers both networks, the optimizer slots, the full replay ring,
        the policy RNG, the n-step window, and the learn/sync counters.
        Epsilon itself is a pure function of the global step, which the
        run loop persists alongside this dict.
        """
        from repro.nn.checkpoints import network_arrays
        from repro.utils.rng import generator_state

        state: dict = {
            "state_dim": self.config.state_dim,
            "n_actions": self.config.n_actions,
            "dtype": self.dtype.name,
            "q_net": network_arrays(self.q_net),
            "target_net": network_arrays(self.target_net),
            "optimizer": self.optimizer.state_dict(),
            "replay": self.replay.state_dict(),
            "policy_rng": generator_state(self.policy.rng),
            "learn_steps": self.learn_steps,
            "target_syncs": self.target_syncs,
        }
        if self._nstep is not None:
            state["nstep"] = self._nstep.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated, in place)."""
        from repro.nn.checkpoints import (
            CheckpointMismatchError,
            load_network_arrays,
        )
        from repro.utils.rng import restore_generator

        for field_name in ("state_dim", "n_actions"):
            if int(state.get(field_name, -1)) != getattr(
                self.config, field_name
            ):
                raise CheckpointMismatchError(
                    f"agent {field_name} mismatch: checkpoint "
                    f"{state.get(field_name)} vs config "
                    f"{getattr(self.config, field_name)}"
                )
        if state.get("dtype") != self.dtype.name:
            raise CheckpointMismatchError(
                f"agent dtype mismatch: checkpoint {state.get('dtype')!r} "
                f"vs agent {self.dtype.name!r}"
            )
        has_nstep = "nstep" in state
        if has_nstep != (self._nstep is not None):
            raise CheckpointMismatchError(
                "n-step configuration mismatch between checkpoint and "
                "agent"
            )
        load_network_arrays(self.q_net, state["q_net"], source="q_net")
        load_network_arrays(
            self.target_net, state["target_net"], source="target_net"
        )
        self.optimizer.load_state_dict(state["optimizer"])
        self.replay.load_state_dict(state["replay"])
        restore_generator(self.policy.rng, state["policy_rng"])
        if self._nstep is not None:
            self._nstep.load_state_dict(state["nstep"])
        self.learn_steps = int(state["learn_steps"])
        self.target_syncs = int(state["target_syncs"])

    def _soft_update(self, tau: float) -> None:
        """Polyak averaging: target <- tau * online + (1 - tau) * target."""
        for dst, src in zip(self.target_net.params(), self.q_net.params()):
            dst *= 1.0 - tau
            dst += tau * src

    def sync_target(self) -> None:
        """Copy online weights into the frozen target network (hard sync).

        With ``target_update_tau`` set, soft updates already run after
        every learn step; set the trainer's ``target_update_steps`` high
        so periodic hard syncs do not override the Polyak track.
        """
        self.target_net.copy_weights_from(self.q_net)
        self.target_syncs += 1
