"""N-step return accumulation (Rainbow component; paper reference [17]).

The paper's Section 5 points at "new versions of this algorithm ...
(Rainbow)"; multi-step targets are one of Rainbow's core components.
:class:`NStepTransitionBuffer` turns a stream of 1-step transitions into
n-step ones::

    (s_t, a_t, sum_{k<n} gamma^k r_{t+k}, s_{t+n}, terminal)

so the agent bootstraps with ``gamma^n``.  Truncated tails (episode ends
before n steps accumulate) are emitted with their actual horizon; the
agent must therefore receive the *effective* discount alongside each
transition -- the buffer returns it explicitly rather than assuming all
transitions span n steps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NStepTransition:
    """One accumulated transition with its effective bootstrap discount."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    terminal: bool
    #: gamma ** (actual horizon) -- multiply the bootstrap term by this.
    discount: float


class NStepTransitionBuffer:
    """Sliding-window n-step accumulator.

    ``push`` returns the transitions that became complete (possibly
    none); ``flush`` drains the remaining tail at an episode boundary --
    the trainer must call it on episode end or truncated windows would
    leak across episodes.
    """

    def __init__(self, n: int, gamma: float):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        self.n = int(n)
        self.gamma = float(gamma)
        self._window: deque = deque()

    def __len__(self) -> int:
        return len(self._window)

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        terminal: bool,
    ) -> list[NStepTransition]:
        """Add a 1-step transition; return completed n-step transitions."""
        self._window.append((state, action, reward, next_state, terminal))
        out: list[NStepTransition] = []
        if terminal:
            # Every suffix of the window terminates here: emit them all.
            out.extend(self._drain_all())
        elif len(self._window) >= self.n:
            out.append(self._emit(len(self._window)))
            self._window.popleft()
        return out

    def flush(self) -> list[NStepTransition]:
        """Drain the tail at a (possibly truncated) episode boundary."""
        return self._drain_all()

    def _drain_all(self) -> list[NStepTransition]:
        out = []
        while self._window:
            out.append(self._emit(len(self._window)))
            self._window.popleft()
        return out

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """Window contents as stacked arrays (empty-safe)."""
        k = len(self._window)
        entries = list(self._window)
        return {
            "n": self.n,
            "gamma": self.gamma,
            "length": k,
            "states": np.stack([e[0] for e in entries])
            if k
            else np.zeros((0,)),
            "actions": np.array([e[1] for e in entries], dtype=np.int64),
            "rewards": np.array([e[2] for e in entries], dtype=np.float64),
            "next_states": np.stack([e[3] for e in entries])
            if k
            else np.zeros((0,)),
            "terminals": np.array([e[4] for e in entries], dtype=bool),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated)."""
        from repro.nn.checkpoints import CheckpointMismatchError

        if int(state["n"]) != self.n:
            raise CheckpointMismatchError(
                f"n-step horizon mismatch: checkpoint {state['n']} vs "
                f"buffer {self.n}"
            )
        k = int(state["length"])
        self._window.clear()
        for i in range(k):
            self._window.append(
                (
                    np.asarray(state["states"][i]),
                    int(state["actions"][i]),
                    float(state["rewards"][i]),
                    np.asarray(state["next_states"][i]),
                    bool(state["terminals"][i]),
                )
            )

    def _emit(self, horizon: int) -> NStepTransition:
        """Accumulate the first ``horizon`` entries of the window."""
        horizon = min(horizon, self.n, len(self._window))
        reward = 0.0
        for k in range(horizon):
            reward += (self.gamma**k) * self._window[k][2]
        s0, a0 = self._window[0][0], self._window[0][1]
        s_last = self._window[horizon - 1][3]
        terminal = bool(self._window[horizon - 1][4])
        return NStepTransition(
            state=s0,
            action=a0,
            reward=reward,
            next_state=s_last,
            terminal=terminal,
            discount=self.gamma**horizon,
        )
