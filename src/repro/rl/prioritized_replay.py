"""Proportional prioritized experience replay (Schaul et al. 2016).

One of the "new versions ... with their own pros and cons" the paper's
Section 5 proposes exploring.  Transitions are sampled with probability
proportional to ``(|TD error| + eps)^alpha``; an importance weight
``(N * P(i))^-beta`` (normalized by the max) corrects the induced bias.
Priorities live in a binary-indexed :class:`SumTree` for O(log n)
sampling and updates.
"""

from __future__ import annotations

import numpy as np

from repro.rl.replay import Batch, ReplayMemory
from repro.utils.rng import SeedLike


class SumTree:
    """Complete binary tree whose internal nodes store subtree sums.

    Leaves hold priorities; ``find(prefix)`` locates the leaf containing a
    cumulative-sum offset, giving proportional sampling by drawing
    uniform offsets in ``[0, total)``.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._tree = np.zeros(2 * self.capacity, dtype=np.float64)

    def update(self, index: int, priority: float) -> None:
        """Set leaf ``index`` to ``priority`` and refresh ancestors."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"leaf {index} out of range")
        if priority < 0:
            raise ValueError("priority must be non-negative")
        node = index + self.capacity
        delta = priority - self._tree[node]
        while node >= 1:
            self._tree[node] += delta
            node //= 2

    def get(self, index: int) -> float:
        """Priority at leaf ``index``."""
        return float(self._tree[index + self.capacity])

    @property
    def total(self) -> float:
        """Sum of all priorities."""
        return float(self._tree[1])

    def find(self, prefix: float) -> int:
        """Leaf whose cumulative range contains ``prefix``."""
        node = 1
        while node < self.capacity:
            left = 2 * node
            if prefix < self._tree[left]:
                node = left
            else:
                prefix -= self._tree[left]
                node = left + 1
        return node - self.capacity

    def max_priority(self) -> float:
        """Largest leaf priority (0 when empty)."""
        return float(self._tree[self.capacity :].max())


class PrioritizedReplayMemory(ReplayMemory):
    """Replay memory with proportional prioritized sampling."""

    def __init__(
        self,
        capacity: int,
        state_dim: int,
        *,
        alpha: float = 0.6,
        beta: float = 0.4,
        beta_final: float = 1.0,
        beta_anneal_steps: int = 100000,
        priority_eps: float = 1e-3,
        seed: SeedLike = None,
        dtype=np.float32,
        static_prefix=None,
    ):
        super().__init__(
            capacity,
            state_dim,
            seed=seed,
            dtype=dtype,
            static_prefix=static_prefix,
        )
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        self.alpha = alpha
        self.beta0 = beta
        self.beta_final = beta_final
        self.beta_anneal_steps = max(1, int(beta_anneal_steps))
        self.priority_eps = priority_eps
        self._tree = SumTree(capacity)
        self._samples_drawn = 0

    def push(
        self, state, action, reward, next_state, terminal, discount: float = 1.0
    ) -> int:
        """Store a transition at maximal priority (sample-at-least-once)."""
        i = super().push(state, action, reward, next_state, terminal, discount)
        p_max = self._tree.max_priority()
        self._tree.update(i, p_max if p_max > 0 else 1.0)
        return i

    @property
    def beta(self) -> float:
        """Current importance exponent (annealed toward ``beta_final``)."""
        frac = min(1.0, self._samples_drawn / self.beta_anneal_steps)
        return self.beta0 + (self.beta_final - self.beta0) * frac

    def sample(self, batch_size: int) -> Batch:
        """Proportional sampling with importance weights."""
        if len(self) == 0:
            raise ValueError("cannot sample from an empty memory")
        total = self._tree.total
        if total <= 0:  # all priorities zero: degenerate to uniform
            return super().sample(batch_size)
        # Stratified offsets reduce sample variance.
        bounds = np.linspace(0.0, total, batch_size + 1)
        offsets = self._rng.uniform(bounds[:-1], bounds[1:])
        idx = np.array([self._tree.find(o) for o in offsets], dtype=np.int64)
        idx = np.minimum(idx, len(self) - 1)
        probs = np.array([self._tree.get(i) for i in idx]) / total
        beta = self.beta
        self._samples_drawn += batch_size
        weights = (len(self) * np.maximum(probs, 1e-12)) ** (-beta)
        weights /= weights.max()
        # Reconstruction into the shared preallocated batch buffers is
        # identical to the uniform path; only index choice and weights
        # differ.
        return self._gather(idx, weights=weights)

    def update_priorities(
        self, indices: np.ndarray, td_errors: np.ndarray
    ) -> None:
        """Refresh priorities from new TD errors after a learning step."""
        pris = (np.abs(td_errors) + self.priority_eps) ** self.alpha
        for i, p in zip(np.asarray(indices), pris):
            self._tree.update(int(i), float(p))

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """Uniform ring state plus the priority tree and beta counter."""
        state = super().state_dict()
        state["layout"] = "prioritized-" + state["layout"]
        state["tree"] = self._tree._tree.copy()
        state["samples_drawn"] = self._samples_drawn
        return state

    def load_state_dict(self, state: dict) -> None:
        from repro.nn.checkpoints import CheckpointMismatchError

        tree = np.asarray(state.get("tree"))
        if tree.shape != self._tree._tree.shape:
            raise CheckpointMismatchError(
                f"priority tree size mismatch: checkpoint {tree.shape} "
                f"vs memory {self._tree._tree.shape}"
            )
        inner = dict(state)
        inner["layout"] = state.get("layout", "").replace(
            "prioritized-", "", 1
        )
        super().load_state_dict(inner)
        self._tree._tree[...] = tree
        self._samples_drawn = int(state["samples_drawn"])
