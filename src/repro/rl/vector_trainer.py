"""Batched-acting trainer over any :class:`repro.env.protocol.VectorEnv`.

Algorithm 2 with the act step vectorized: one Q-network forward serves
all N environments per step.  Learning stays identical (one gradient
step per ``train_interval`` *environment* transitions, same replay
semantics), so results are comparable to the sequential trainer at equal
transition counts while the wall-clock amortizes the network cost.

The trainer is backend-agnostic: it only uses the ``VectorEnv``
protocol (``reset``/``step``/``n_envs``), so the serial
:class:`~repro.env.vectorized.SyncVectorEnv` and the process-parallel
:class:`~repro.env.async_vectorized.AsyncVectorEnv` are
interchangeable -- construct either via
:func:`repro.env.factory.make_vector_env`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.env.protocol import VectorEnv
from repro.rl.learner import LearnerCore
from repro.telemetry.spans import SpanTracer


@dataclass
class VectorRunStats:
    """Aggregate results of a vectorized collection run.

    ``best_score`` is NaN (never ``-inf``) when no environment ever
    reported a finite ``score`` info, so downstream stats/telemetry
    can test ``isfinite`` instead of special-casing the sentinel.
    ``timer_report`` renders the tracer the run actually used -- the
    externally supplied one when the trainer was given a tracer.
    """

    total_steps: int
    episodes_completed: int
    best_score: float
    mean_reward: float
    wall_seconds: float
    steps_per_second: float
    timer_report: str
    #: Worker respawns performed by the vector env during the run
    #: (always 0 for in-process backends).
    worker_restarts: int = 0


class VectorTrainer:
    """Collect transitions from N envs with batched action selection."""

    def __init__(
        self,
        venv: VectorEnv,
        agent,
        *,
        learning_start: int = 0,
        target_update_steps: int = 1000,
        train_interval: int = 1,
        tracer: SpanTracer | None = None,
    ):
        self.venv = venv
        self.agent = agent
        # Update cadence (learn / target-sync / epsilon) is shared with
        # every other trainer through the LearnerCore.
        self.core = LearnerCore(
            agent,
            learning_start=learning_start,
            target_update_steps=target_update_steps,
            train_interval=train_interval,
        )
        self.tracer = tracer

    @property
    def learning_start(self) -> int:
        return self.core.learning_start

    @property
    def target_update_steps(self) -> int:
        return self.core.target_update_steps

    @property
    def train_interval(self) -> int:
        return self.core.train_interval

    def _select_actions(
        self, states: np.ndarray, global_step: int
    ) -> np.ndarray:
        """Batched epsilon-greedy (delegates to the LearnerCore)."""
        return self.core.select_actions(states, global_step)

    def run(self, total_steps: int, *, start_step: int = 0) -> VectorRunStats:
        """Collect transitions until ``total_steps`` (summed across envs).

        ``start_step`` continues an interrupted run: the epsilon
        schedule, learn cadence, and target-sync cadence all key off the
        global step, so a resumed segment picks up exactly where the
        checkpointed one left off.  The venv is (re)reset at the start
        of every call -- checkpoint boundaries are therefore also
        episode boundaries for all N environments (see
        docs/CHECKPOINTS.md).  The returned stats cover only this call's
        segment, except ``total_steps`` which reports the global count.
        """
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not 0 <= start_step < total_steps:
            raise ValueError("start_step must lie in [0, total_steps)")
        tracer = self.tracer if self.tracer is not None else SpanTracer()
        restarts_before = getattr(self.venv, "worker_restarts", 0)
        t0 = time.perf_counter()
        states = self.venv.reset()
        global_step = start_step
        episodes = 0
        best_score = float("-inf")
        reward_sum = 0.0
        n = self.venv.n_envs
        while global_step < total_steps:
            with tracer.span("act"):
                actions = self._select_actions(states, global_step)
            with tracer.span("env-step"):
                next_states, rewards, dones, infos = self.venv.step(actions)
            with tracer.span("remember"):
                for i in range(n):
                    true_next = (
                        infos[i]["terminal_state"]
                        if dones[i]
                        else next_states[i]
                    )
                    self.agent.remember(
                        states[i],
                        int(actions[i]),
                        float(rewards[i]),
                        true_next,
                        bool(dones[i]),
                    )
                    score = infos[i].get("score", float("nan"))
                    if np.isfinite(score):
                        best_score = max(best_score, score)
            episodes += int(dones.sum())
            reward_sum += float(rewards.sum())
            states = next_states
            prev_step = global_step
            global_step += n
            # One learn per train_interval transitions, matching the
            # sequential trainer's update density.
            self.core.advance(prev_step, global_step, tracer)
        wall = time.perf_counter() - t0
        segment_steps = global_step - start_step
        return VectorRunStats(
            total_steps=global_step,
            episodes_completed=episodes,
            best_score=(
                best_score if np.isfinite(best_score) else float("nan")
            ),
            mean_reward=reward_sum / max(segment_steps, 1),
            wall_seconds=wall,
            steps_per_second=segment_steps / max(wall, 1e-9),
            timer_report=tracer.report(),
            worker_restarts=(
                getattr(self.venv, "worker_restarts", 0) - restarts_before
            ),
        )
