"""The learner process of the actor/learner training runtime.

:class:`ActorLearnerTrainer` spawns N actor processes (fork start
method: env thunks, transition rings, the weight block, and the sidecar
networks are inherited, not pickled), then consumes their transitions
into the agent's replay and drives gradient updates through the shared
:class:`~repro.rl.learner.LearnerCore` -- the exact update density of
the sequential and vector trainers at equal transition counts.

Determinism is the design center (docs/PARALLELISM.md has the full
argument):

- transitions enter the replay in **round-robin** order -- transition
  number ``g`` comes from actor ``g % N`` at its local step ``g // N``
  -- so replay contents, learn cadence, and RNG consumption are
  identical run-to-run regardless of OS scheduling;
- weights are broadcast on a fixed schedule: version ``k`` is published
  when the consumed count crosses ``k * N * sync_every`` and actor
  ``a`` blocking-fetches exactly version ``k`` before its local step
  ``k * sync_every`` (the schedule is deadlock-free: every transition
  an actor must produce before the learner can publish version ``k``
  only needs versions ``< k``);
- segments (one ``run`` call each) give every actor an exact quota of
  ``(total - start) / N`` transitions, so rings drain to empty at every
  boundary and a checkpoint needs only the actor RNG streams and
  counters -- never in-flight ring contents.

Prefetch: while blocked on the round-robin-next actor's ring, the
learner opportunistically drains *every* ring into per-actor pending
queues, freeing slots early (less backpressure) and keeping batches
ready; the time it still spends blocked is the ``learner-idle-fraction``
telemetry gauge.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.env.comm import TransitionRing
from repro.rl.distributed.actor import actor_worker
from repro.rl.distributed.weights import SharedWeightBlock
from repro.rl.learner import LearnerCore
from repro.rl.trainer import EpisodeStats, TrainingHistory
from repro.rl.vector_trainer import VectorRunStats
from repro.telemetry.spans import SpanTracer

#: Seconds to wait for an actor to come up / acknowledge a command.
_ACTOR_TIMEOUT = 120.0

#: Metric-name prefix for all actor/learner telemetry.
METRIC_PREFIX = "actor_learner"


class ActorDiedError(RuntimeError):
    """An actor process exited outside the shutdown protocol."""


class _EpisodeAccum:
    """Per-actor in-progress episode aggregates (learner-side)."""

    __slots__ = (
        "steps", "total_reward", "max_q_sum", "best_score",
        "final_score", "min_rmsd", "start_learn_steps",
    )

    def __init__(self, start_learn_steps: int):
        self.steps = 0
        self.total_reward = 0.0
        self.max_q_sum = 0.0
        self.best_score = float("-inf")
        self.final_score = float("nan")
        self.min_rmsd = float("nan")
        self.start_learn_steps = start_learn_steps


class ActorLearnerTrainer:
    """N actor processes feeding one learner through shared memory.

    Parameters
    ----------
    env_fns:
        One environment thunk per actor (each builds its *own* env +
        engine + scorer inside the child).
    agent:
        The learner-side :class:`~repro.rl.agent.DQNAgent` (owns replay,
        optimizer, and both networks).  Distributional and noisy agents
        are not supported -- the sidecar replicates plain Q-networks.
    state_dim / state_dtype:
        Shape/dtype of the states the envs *emit* (the tail dimension in
        compact mode); sizes the per-actor transition rings.
    sync_every:
        Actor-local steps between sidecar weight refreshes.
    ring_capacity:
        Slots per actor ring; a full ring backpressures its actor.
    max_steps_per_episode:
        Actor-local episode truncation (Table 1's T); the learner
        reconstructs the same boundaries from its own step counts.
    learning_start / target_update_steps / train_interval:
        The shared :class:`~repro.rl.learner.LearnerCore` cadence.
    observation_spec:
        Optional codec spec; exposed for checkpoint validation.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry` for
        the per-actor telemetry.
    """

    def __init__(
        self,
        env_fns: Sequence[Callable],
        agent,
        *,
        state_dim: int,
        state_dtype=np.float64,
        sync_every: int = 50,
        ring_capacity: int = 256,
        max_steps_per_episode: int,
        learning_start: int = 0,
        target_update_steps: int = 1000,
        train_interval: int = 1,
        observation_spec=None,
        tracer: SpanTracer | None = None,
        metrics=None,
        seed: int = 0,
        on_episode_end=None,
    ):
        if not env_fns:
            raise ValueError("need at least one env_fn")
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        if ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        if max_steps_per_episode < 1:
            raise ValueError("max_steps_per_episode must be >= 1")
        if type(agent).__name__ == "DistributionalDQNAgent":
            raise ValueError(
                "actor-learner training does not support the "
                "distributional agent"
            )
        if getattr(agent.config, "noisy", False):
            raise ValueError(
                "actor-learner training does not support NoisyNet "
                "exploration (sidecar noise state cannot be replicated)"
            )
        self.env_fns = list(env_fns)
        self.num_actors = len(self.env_fns)
        self.agent = agent
        self.core = LearnerCore(
            agent,
            learning_start=learning_start,
            target_update_steps=target_update_steps,
            train_interval=train_interval,
        )
        self.state_dim = int(state_dim)
        self.state_dtype = np.dtype(state_dtype)
        self.sync_every = int(sync_every)
        self.ring_capacity = int(ring_capacity)
        self.max_steps = int(max_steps_per_episode)
        self.observation_spec = observation_spec
        self.tracer = tracer
        self.metrics = metrics
        self.seed = int(seed)
        self.on_episode_end = on_episode_end
        #: Global transitions between weight broadcasts.
        self.publish_every = self.num_actors * self.sync_every
        self.history = TrainingHistory()
        self._episode_index = 0
        self._weight_version = -1  # latest published version
        self._actor_rng: list = [None] * self.num_actors
        self._procs: list | None = None
        self._conns: list = []
        self._rings: list[TransitionRing] = []
        self._weights: SharedWeightBlock | None = None
        self._closed = False

    # -- properties shared with the other trainers ------------------------
    @property
    def learning_start(self) -> int:
        return self.core.learning_start

    @property
    def target_update_steps(self) -> int:
        return self.core.target_update_steps

    @property
    def train_interval(self) -> int:
        return self.core.train_interval

    @property
    def worker_restarts(self) -> int:
        """Actor respawns (always 0: a dead actor fails the run)."""
        return 0

    # -- process management -----------------------------------------------
    def _ensure_spawned(self) -> None:
        if self._procs is not None:
            return
        if self._closed:
            raise RuntimeError("trainer already closed")
        ctx = mp.get_context("fork")
        params = self.agent.q_net.params()
        self._weights = SharedWeightBlock(
            [p.shape for p in params],
            self.num_actors,
            dtype=params[0].dtype,
        )
        self._rings = [
            TransitionRing(
                self.state_dim,
                self.ring_capacity,
                state_dtype=self.state_dtype,
            )
            for _ in range(self.num_actors)
        ]
        policy = self.agent.policy
        static = self.agent.static_state
        self._procs = []
        self._conns = []
        for i in range(self.num_actors):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=actor_worker,
                args=(
                    i,
                    self.num_actors,
                    self.env_fns[i],
                    self._rings[i],
                    self._weights,
                    child_conn,
                    # Sidecar: structure cloned pre-fork, weights
                    # overwritten by versioned fetches in the child.
                    self.agent.q_net.clone(),
                ),
                kwargs=dict(
                    schedule=policy.schedule,
                    exploration_steps=policy.exploration_steps,
                    n_actions=policy.n_actions,
                    sync_every=self.sync_every,
                    max_steps_per_episode=self.max_steps,
                    seed=self.seed,
                    static_state=static,
                    full_dim=self.agent.config.state_dim,
                ),
                daemon=True,
                name=f"repro-actor-{i}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for i, conn in enumerate(self._conns):
            self._expect(i, "ready", timeout=_ACTOR_TIMEOUT)

    def _expect(self, index: int, expected: str, *, timeout: float):
        conn = self._conns[index]
        deadline = time.monotonic() + timeout
        while not conn.poll(0.05):
            if not self._procs[index].is_alive():
                raise ActorDiedError(
                    f"actor {index} died before sending {expected!r} "
                    f"(exitcode {self._procs[index].exitcode})"
                )
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"actor {index}: no {expected!r} within {timeout}s"
                )
        tag, payload = conn.recv()
        if tag == "error":
            raise ActorDiedError(f"actor {index} failed:\n{payload}")
        if tag != expected:
            raise ActorDiedError(
                f"actor {index}: expected {expected!r}, got {tag!r}"
            )
        return payload

    def _raise_if_dead(self, index: int) -> None:
        proc = self._procs[index]
        if proc.is_alive():
            return
        detail = ""
        try:
            if self._conns[index].poll(0):
                tag, payload = self._conns[index].recv()
                if tag == "error":
                    detail = f":\n{payload}"
        except (EOFError, OSError):
            pass
        raise ActorDiedError(
            f"actor {index} died mid-segment "
            f"(exitcode {proc.exitcode}){detail}"
        )

    def close(self) -> None:
        """Tear the actor fleet down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._weights is not None:
            # Unblocks actors waiting in fetch() or a backpressured
            # push(); they exit through their shutdown path.
            self._weights.request_stop()
        if self._procs is not None:
            for conn in self._conns:
                try:
                    conn.send(("close", None))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=2.0)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    # Workers ignore SIGTERM by design; go straight to
                    # SIGKILL.
                    proc.kill()
                    proc.join(timeout=1.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._procs = None
        self._conns = []

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the segment loop -------------------------------------------------
    def run(self, total_steps: int, *, start_step: int = 0) -> VectorRunStats:
        """Consume one segment: transitions ``start_step .. total_steps``.

        Alignment contract (validated here, arranged by the drivers):
        the segment length divides evenly across actors, and
        ``start_step`` sits on a weight-broadcast boundary so resumed
        actors re-fetch exactly the version the checkpoint weights
        correspond to.
        """
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not 0 <= start_step < total_steps:
            raise ValueError("start_step must lie in [0, total_steps)")
        segment = total_steps - start_step
        if segment % self.num_actors != 0:
            raise ValueError(
                f"segment length {segment} must be a multiple of "
                f"num_actors={self.num_actors}"
            )
        if start_step % self.publish_every != 0:
            raise ValueError(
                f"start_step {start_step} must be a multiple of "
                f"num_actors * sync_every = {self.publish_every} "
                "(checkpoint boundaries align with weight broadcasts)"
            )
        tracer = self.tracer if self.tracer is not None else SpanTracer()
        self._ensure_spawned()
        n = self.num_actors
        quota = segment // n

        # Republish the weights actors must start this segment from.
        # Idempotent: at a fresh start this is version 0 = the initial
        # weights; at a resume it is the checkpoint-boundary version.
        v0 = start_step // self.publish_every
        self._weights.publish(v0, self.agent.q_net.params())
        self._weight_version = v0

        for i, conn in enumerate(self._conns):
            conn.send(
                (
                    "segment",
                    {
                        "quota": quota,
                        "start_local_step": start_step // n,
                        "rng_state": self._actor_rng[i],
                    },
                )
            )

        pending: list[deque] = [deque() for _ in range(n)]
        accums = [
            _EpisodeAccum(self.agent.learn_steps) for _ in range(n)
        ]
        consumed = start_step
        best_score = float("-inf")
        reward_sum = 0.0
        episodes = 0
        idle_seconds = 0.0
        t0 = time.perf_counter()
        seg_pushed = [0] * n

        with tracer.span("actor-learner-segment"):
            while consumed < total_steps:
                a = consumed % n
                if not pending[a]:
                    # Prefetch: drain every ring while we are here, so
                    # slots free up even for actors we are not blocked
                    # on.
                    with tracer.span("drain"):
                        for j, ring in enumerate(self._rings):
                            batch = ring.drain()
                            if batch:
                                pending[j].extend(batch)
                    if not pending[a]:
                        wait_start = time.perf_counter()
                        while not pending[a]:
                            batch = self._rings[a].drain()
                            if batch:
                                pending[a].extend(batch)
                                break
                            self._raise_if_dead(a)
                            time.sleep(1e-4)
                        idle_seconds += time.perf_counter() - wait_start
                rec = pending[a].popleft()
                seg_pushed[a] += 1
                with tracer.span("remember"):
                    self.agent.remember(
                        rec.state,
                        int(rec.action),
                        float(rec.reward),
                        rec.next_state,
                        bool(rec.done),
                    )
                reward_sum += rec.reward
                self._fold_episode_step(a, rec, accums, consumed)
                if np.isfinite(rec.score):
                    best_score = max(best_score, rec.score)
                prev = consumed
                consumed += 1
                self.core.advance(prev, consumed, tracer)
                if consumed % self.publish_every == 0:
                    k = consumed // self.publish_every
                    self._weights.publish(k, self.agent.q_net.params())
                    self._weight_version = k
                # Episode boundary reconstruction (same rule the actor
                # applies locally: env-terminal or the step cap).
                acc = accums[a]
                if rec.done or acc.steps >= self.max_steps:
                    self._close_episode(
                        a,
                        accums,
                        consumed,
                        "terminal" if rec.done else "time-limit",
                    )
                    episodes += 1

        # Segment complete: collect the authoritative RNG streams and
        # verify the deterministic drain-to-empty invariant.
        for i in range(n):
            payload = self._expect(i, "done", timeout=_ACTOR_TIMEOUT)
            self._actor_rng[i] = payload["rng_state"]
        for i, ring in enumerate(self._rings):
            if len(ring) != 0:  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"ring {i} holds {len(ring)} transitions after a "
                    "fully consumed segment"
                )
        # Partial episodes are closed at the boundary (the next segment
        # starts from env.reset(), mirroring RunLoop.run_steps).
        for a in range(n):
            if accums[a].steps > 0:
                self._close_episode(a, accums, consumed, "segment-boundary")

        wall = time.perf_counter() - t0
        self.history.total_steps = consumed
        self.history.wall_seconds += wall
        self.history.timer_report = tracer.report()
        self._record_metrics(seg_pushed, wall, idle_seconds, consumed)
        return VectorRunStats(
            total_steps=consumed,
            episodes_completed=episodes,
            best_score=(
                best_score if np.isfinite(best_score) else float("nan")
            ),
            mean_reward=reward_sum / max(segment, 1),
            wall_seconds=wall,
            steps_per_second=segment / max(wall, 1e-9),
            timer_report=tracer.report(),
            worker_restarts=0,
        )

    # -- episode reconstruction -------------------------------------------
    def _fold_episode_step(
        self, a: int, rec, accums: list, consumed: int
    ) -> None:
        acc = accums[a]
        acc.steps += 1
        acc.total_reward += rec.reward
        acc.max_q_sum += rec.max_q
        if np.isfinite(rec.score):
            acc.best_score = max(acc.best_score, rec.score)
            acc.final_score = rec.score
        if np.isfinite(rec.crystal_rmsd):
            acc.min_rmsd = (
                rec.crystal_rmsd
                if np.isnan(acc.min_rmsd)
                else min(acc.min_rmsd, rec.crystal_rmsd)
            )
        if self.metrics is not None:
            self.metrics.inc(f"{METRIC_PREFIX}/transitions-actor{a}")
            # Staleness of the weights the acting sidecar used for this
            # transition, in global transitions.
            version = (consumed // self.num_actors) // self.sync_every
            self.metrics.observe(
                f"{METRIC_PREFIX}/weight-staleness-steps",
                consumed - version * self.publish_every,
            )

    def _close_episode(
        self, a: int, accums: list, consumed: int, termination: str
    ) -> None:
        acc = accums[a]
        stats = EpisodeStats(
            episode=self._episode_index,
            steps=acc.steps,
            total_reward=acc.total_reward,
            avg_max_q=acc.max_q_sum / max(acc.steps, 1),
            best_score=acc.best_score,
            final_score=acc.final_score,
            epsilon=self.core.epsilon(consumed),
            mean_loss=float("nan"),
            learning_active=self.agent.learn_steps > acc.start_learn_steps,
            termination=termination,
            min_crystal_rmsd=acc.min_rmsd,
        )
        self._episode_index += 1
        self.history.episodes.append(stats)
        if self.on_episode_end is not None:
            self.on_episode_end(stats)
        accums[a] = _EpisodeAccum(self.agent.learn_steps)

    # -- telemetry ---------------------------------------------------------
    def _record_metrics(
        self,
        seg_pushed: list[int],
        wall: float,
        idle_seconds: float,
        consumed: int,
    ) -> None:
        if self.metrics is None:
            return
        m = self.metrics
        for i, ring in enumerate(self._rings):
            m.set(f"{METRIC_PREFIX}/ring-depth-actor{i}", len(ring))
            m.set(
                f"{METRIC_PREFIX}/transitions-per-second-actor{i}",
                seg_pushed[i] / max(wall, 1e-9),
            )
            m.set(
                f"{METRIC_PREFIX}/ring-full-waits-actor{i}",
                ring.full_waits,
            )
        m.set(
            f"{METRIC_PREFIX}/learner-idle-fraction",
            idle_seconds / max(wall, 1e-9),
        )
        m.set(f"{METRIC_PREFIX}/weight-version", self._weight_version)
        m.set(f"{METRIC_PREFIX}/num-actors", self.num_actors)
        m.set(f"{METRIC_PREFIX}/consumed-transitions", consumed)

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """Distributed-trainer state for full-run checkpoints.

        Rings are empty at every segment boundary by construction, so
        only the actor RNG streams, the broadcast version counter, and
        the reconstructed episode history need to persist (the agent's
        own state travels separately via ``agent.state_dict()``).
        """
        from repro.utils.serialization import _to_jsonable

        return {
            "num_actors": self.num_actors,
            "sync_every": self.sync_every,
            "weight_version": self._weight_version,
            "episode_index": self._episode_index,
            "actor_rng": _to_jsonable(list(self._actor_rng)),
            "history": _to_jsonable(self.history),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated)."""
        from repro.nn.checkpoints import CheckpointMismatchError
        from repro.runtime.loop import _history_from_meta
        from repro.utils.serialization import _from_jsonable

        for name in ("num_actors", "sync_every"):
            if int(state.get(name, -1)) != getattr(self, name):
                raise CheckpointMismatchError(
                    f"actor-learner {name} mismatch: checkpoint "
                    f"{state.get(name)} vs trainer {getattr(self, name)}"
                )
        self._weight_version = int(state["weight_version"])
        self._episode_index = int(state["episode_index"])
        self._actor_rng = list(_from_jsonable(state["actor_rng"]))
        self.history = _history_from_meta(state["history"])
