"""Versioned shared-memory Q-net weight broadcast (learner -> actors).

The learner publishes refreshed online-network weights as a
monotonically numbered *version*; each actor blocking-fetches the exact
version its deterministic schedule calls for (version ``k`` before
acting at local step ``k * sync_every``).  Because consumption is
round-robin and publishing happens when the learner's consumed count
crosses ``k * num_actors * sync_every``, two slots are provably enough:
by the time version ``k + 1`` overwrites the slot of version ``k - 1``,
every actor has already fetched version ``k`` (it could not have
produced the transitions that triggered the publish otherwise).

Writes use a seqlock-style protocol: the slot's version cell is set to
-1 (in progress) before the payload write and to the new version after,
and readers copy then re-check -- a torn read is detected and retried.
On CPython the aligned 64-bit version stores are single interpreter
operations, so no lock is needed.
"""

from __future__ import annotations

import time
from multiprocessing.sharedctypes import RawArray, RawValue
from typing import Sequence

import numpy as np

#: Slots kept live; see the module docstring for why 2 suffices.
SLOT_DEPTH = 2

_TYPECODES = {
    np.dtype(np.float64): "d",
    np.dtype(np.float32): "f",
}

#: Version cell value marking a slot write in progress.
_IN_PROGRESS = -1


class SharedWeightBlock:
    """Two-slot versioned parameter block in shared memory.

    ``param_shapes`` fixes the flat layout (layer order, as returned by
    ``MLP.params()``); publish and fetch then move whole parameter
    lists without any per-call shape negotiation.  Allocate before
    forking -- both sides share the memory under the ``fork`` start
    method.  The block also carries the run's cooperative stop flag so
    a blocked fetch (or a backpressured ring push) can exit cleanly at
    shutdown.
    """

    def __init__(
        self,
        param_shapes: Sequence[tuple[int, ...]],
        n_actors: int,
        *,
        dtype=np.float32,
    ):
        if n_actors < 1:
            raise ValueError("n_actors must be >= 1")
        self.dtype = np.dtype(dtype)
        if self.dtype not in _TYPECODES:
            raise TypeError(f"unsupported weight dtype {self.dtype}")
        self.param_shapes = [tuple(s) for s in param_shapes]
        sizes = [int(np.prod(s)) for s in self.param_shapes]
        self._offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.n_params = int(self._offsets[-1])
        self.n_actors = int(n_actors)
        code = _TYPECODES[self.dtype]
        self._slots = np.frombuffer(
            RawArray(code, SLOT_DEPTH * max(self.n_params, 1)),
            dtype=self.dtype,
        ).reshape(SLOT_DEPTH, max(self.n_params, 1))
        self._slot_version = np.frombuffer(
            RawArray("q", SLOT_DEPTH), dtype=np.int64
        )
        self._slot_version[:] = _IN_PROGRESS
        # Written by each actor after a successful fetch; read by the
        # learner for the weight-staleness telemetry.
        self._applied = np.frombuffer(
            RawArray("q", self.n_actors), dtype=np.int64
        )
        self._applied[:] = _IN_PROGRESS
        self._stop = RawValue("B", 0)

    # -- shutdown ---------------------------------------------------------
    def request_stop(self) -> None:
        """Unblock every waiting fetch/push; the run is shutting down."""
        self._stop.value = 1

    def stop_requested(self) -> bool:
        return bool(self._stop.value)

    # -- learner side -----------------------------------------------------
    def publish(self, version: int, params: Sequence[np.ndarray]) -> None:
        """Write ``params`` as ``version`` (learner only)."""
        if version < 0:
            raise ValueError("version must be >= 0")
        if len(params) != len(self.param_shapes):
            raise ValueError(
                f"expected {len(self.param_shapes)} parameter arrays, "
                f"got {len(params)}"
            )
        j = version % SLOT_DEPTH
        row = self._slots[j]
        self._slot_version[j] = _IN_PROGRESS
        for p, lo, hi in zip(
            params, self._offsets[:-1], self._offsets[1:]
        ):
            row[lo:hi] = np.asarray(p, dtype=self.dtype).ravel()
        self._slot_version[j] = version

    def applied_versions(self) -> np.ndarray:
        """Per-actor last-applied version (copy; -1 = never fetched)."""
        return self._applied.copy()

    # -- actor side -------------------------------------------------------
    def fetch(
        self,
        version: int,
        params_out: Sequence[np.ndarray],
        *,
        actor_index: int | None = None,
        poll_interval: float = 1e-4,
        timeout: float | None = None,
    ) -> bool:
        """Blocking-copy exactly ``version`` into ``params_out``.

        Returns False when the stop flag rises (or ``timeout`` elapses)
        before the version appears -- the shutdown path.  A concurrent
        overwrite during the copy is detected by the version re-check
        and the copy retried.
        """
        j = version % SLOT_DEPTH
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        row = self._slots[j]
        while True:
            current = int(self._slot_version[j])
            if current == version:
                for p, lo, hi in zip(
                    params_out, self._offsets[:-1], self._offsets[1:]
                ):
                    np.copyto(
                        p, row[lo:hi].reshape(p.shape), casting="same_kind"
                    )
                if self._slot_version[j] == version:
                    if actor_index is not None:
                        self._applied[actor_index] = version
                    return True
                continue  # torn read detected; re-resolve the slot
            if current > version:
                # The deterministic schedule guarantees this never
                # happens (see module docstring); a hit means the
                # caller broke the publish/fetch contract.
                raise RuntimeError(
                    f"weight version {version} overwritten before fetch "
                    f"(slot now holds {current})"
                )
            if self.stop_requested():
                return False
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(poll_interval)
