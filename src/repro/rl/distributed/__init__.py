"""Multi-process actor/learner training runtime (Ape-X-shaped).

N actor processes -- each owning its own environment, engine, scorer,
and an epsilon-greedy sidecar of the Q-network -- push transitions
through lock-free shared-memory rings
(:class:`~repro.env.comm.TransitionRing`) into the learner's replay,
while the learner broadcasts refreshed weights through a versioned
:class:`~repro.rl.distributed.weights.SharedWeightBlock`.  The whole
pipeline is deterministic by construction (round-robin consumption +
scheduled weight versions), so interrupt/resume stays bit-exact.  See
docs/PARALLELISM.md, "Actor/learner architecture".
"""

from repro.rl.distributed.trainer import ActorDiedError, ActorLearnerTrainer
from repro.rl.distributed.weights import SharedWeightBlock

__all__ = [
    "ActorDiedError",
    "ActorLearnerTrainer",
    "SharedWeightBlock",
]
