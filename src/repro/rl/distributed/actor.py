"""The actor worker process of the actor/learner runtime.

Each actor owns one environment (with its own engine and scorer), an
epsilon-greedy *sidecar* copy of the Q-network refreshed from the
:class:`~repro.rl.distributed.weights.SharedWeightBlock`, and one
:class:`~repro.env.comm.TransitionRing` it produces into.  The parent
commands it over a pipe in *segments* -- fixed per-actor transition
quotas whose boundaries the learner aligns with checkpoint boundaries
-- so the whole pipeline stays deterministic:

- actor ``a`` of ``N`` acts at global indices ``g = t * N + a`` (``t``
  its local step), and its epsilon is evaluated at exactly ``g``;
- before acting at local step ``t`` with ``t % sync_every == 0`` it
  blocking-fetches weight version ``t // sync_every`` -- never "the
  latest", which would make trajectories timing-dependent;
- the per-actor policy RNG stream (``actor-<i>-policy``) is reported
  back at every segment end and restored at segment start, so resumed
  runs replay bit-identically;
- each segment starts from a fresh ``env.reset()`` (segment boundaries
  are episode boundaries, mirroring ``RunLoop.run_steps``) and the
  actor enforces ``max_steps_per_episode`` locally.

Workers mask SIGINT/SIGTERM on entry (see
:func:`repro.runtime.signals.mask_worker_signals`): only the learner
coordinates shutdown, via the pipe and the weight block's stop flag.
"""

from __future__ import annotations

import traceback
from typing import Callable

import numpy as np

from repro.rl.schedules import EpsilonGreedy
from repro.runtime.signals import mask_worker_signals
from repro.utils.rng import RngFactory, generator_state, restore_generator


def policy_stream_name(index: int) -> str:
    """The :class:`~repro.utils.rng.RngFactory` stream of actor ``index``."""
    return f"actor-{index}-policy"


def _make_predict(q_net, static_state, full_dim: int) -> Callable:
    """Forward function for the sidecar, expanding compact tails.

    In compact mode the env emits bare dynamic tails; the sidecar
    reconstructs full states against the constant receptor prefix
    (mirroring ``DQNAgent._expand_states``) before the forward pass.
    """
    if static_state is None:
        return lambda s: q_net.predict(np.asarray(s))
    prefix = np.asarray(static_state)
    p = prefix.shape[0]
    buf = np.empty(full_dim, dtype=prefix.dtype)
    buf[:p] = prefix

    def predict(s):
        buf[p:] = s
        return q_net.predict(buf)

    return predict


def actor_worker(
    index: int,
    n_actors: int,
    env_fn: Callable,
    ring,
    weights,
    conn,
    q_net,
    *,
    schedule,
    exploration_steps: int,
    n_actions: int,
    sync_every: int,
    max_steps_per_episode: int,
    seed: int,
    static_state=None,
    full_dim: int = 0,
) -> None:
    """Worker main: answer ``segment``/``close`` commands from the pipe.

    ``q_net`` is the sidecar network (cloned pre-fork, so the child
    inherits the structure and overwrites the weights via fetches).
    Each ``segment`` command carries ``{"quota", "start_local_step",
    "rng_state"}``; the reply is ``("done", {"rng_state", "pushed"})``.
    """
    mask_worker_signals()
    env = None
    try:
        env = env_fn()
        policy = EpsilonGreedy(
            schedule,
            n_actions,
            exploration_steps=exploration_steps,
            rng=RngFactory(seed).get(policy_stream_name(index)),
        )
        predict = _make_predict(q_net, static_state, full_dim)
        params = q_net.params()
        conn.send(("ready", None))
        fetched_version = -1
        while True:
            cmd, data = conn.recv()
            if cmd == "close":
                conn.send(("closed", None))
                return
            if cmd != "segment":
                conn.send(("error", f"unknown command {cmd!r}"))
                return
            quota = int(data["quota"])
            t = int(data["start_local_step"])
            if data.get("rng_state") is not None:
                restore_generator(policy.rng, data["rng_state"])
            state = env.reset()
            ep_steps = 0
            pushed = 0
            while pushed < quota:
                if t % sync_every == 0:
                    k = t // sync_every
                    if k != fetched_version:
                        if not weights.fetch(
                            k, params, actor_index=index
                        ):
                            return  # stop flag: shutdown
                        fetched_version = k
                q = predict(state)
                action = policy.select(q, t * n_actors + index)
                next_state, reward, done, info = env.step(int(action))
                ep_steps += 1
                # Push before any reset: compact envs reuse their
                # emission buffers and a reset would clobber the
                # terminal next_state.
                if not ring.push(
                    state,
                    next_state,
                    action,
                    reward,
                    done,
                    score=float(info.get("score", float("nan"))),
                    max_q=float(np.max(q)),
                    crystal_rmsd=float(
                        info.get("crystal_rmsd", float("nan"))
                    ),
                    stop=weights.stop_requested,
                ):
                    return  # stop flag: shutdown
                t += 1
                pushed += 1
                if done or ep_steps >= max_steps_per_episode:
                    # Truncation stores the transition non-terminal
                    # (done as reported by the env), matching the
                    # sequential trainer's time-limit semantics; the
                    # learner reconstructs the same boundary from its
                    # own step count.
                    state = env.reset()
                    ep_steps = 0
                else:
                    state = next_state
            conn.send(
                (
                    "done",
                    {
                        "rng_state": generator_state(policy.rng),
                        "pushed": pushed,
                    },
                )
            )
    except (EOFError, BrokenPipeError):  # pragma: no cover - teardown race
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        if env is not None:
            close = getattr(env, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - best effort
                    pass
        conn.close()
