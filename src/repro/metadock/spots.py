"""Receptor surface-spot decomposition.

BINDSURF/METADOCK divide the whole protein surface into independent
regions ("spots") so pose search can run blind (no prior pocket knowledge)
and embarrassingly parallel -- one optimization per spot.  We reproduce
that: surface atoms are extracted by radial shell, their directions are
clustered with farthest-point sampling, and each cluster becomes a
:class:`Spot` (anchor point + radius) used to seed pose populations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule


@dataclass(frozen=True)
class Spot:
    """A surface region: anchor point just outside the surface + extent."""

    center: np.ndarray
    radius: float
    #: Indices of receptor surface atoms assigned to this spot.
    atom_indices: np.ndarray

    @property
    def n_atoms(self) -> int:
        """Number of surface atoms in the spot."""
        return int(self.atom_indices.size)


def surface_atoms(receptor: Molecule, shell: float = 2.5) -> np.ndarray:
    """Indices of atoms within ``shell`` of the outer radial surface.

    For globular receptors (ours and most proteins) the radial criterion
    is a good surface proxy; a solvent-accessible-surface computation
    would be overkill for pose seeding.
    """
    center = receptor.centroid()
    r = np.linalg.norm(receptor.coords - center, axis=1)
    return np.nonzero(r >= r.max() - shell)[0]


def surface_spots(
    receptor: Molecule,
    n_spots: int = 16,
    *,
    shell: float = 2.5,
    standoff: float = 3.0,
) -> list[Spot]:
    """Decompose the receptor surface into ``n_spots`` regions.

    Farthest-point sampling on the surface-atom directions picks well-
    spread spot centers; every surface atom joins its nearest center.
    Spot anchors stand ``standoff`` angstroms outside the local surface so
    a ligand seeded there starts clash-free.
    """
    if n_spots < 1:
        raise ValueError("n_spots must be >= 1")
    center = receptor.centroid()
    surf_idx = surface_atoms(receptor, shell)
    pts = receptor.coords[surf_idx]
    dirs = pts - center
    radii = np.linalg.norm(dirs, axis=1)
    dirs = dirs / np.maximum(radii, 1e-12)[:, None]

    n_spots = min(n_spots, len(surf_idx))
    # Farthest-point sampling (deterministic: start from the first atom).
    chosen = [0]
    min_d = np.linalg.norm(dirs - dirs[0], axis=1)
    for _ in range(1, n_spots):
        nxt = int(np.argmax(min_d))
        chosen.append(nxt)
        min_d = np.minimum(min_d, np.linalg.norm(dirs - dirs[nxt], axis=1))

    centers_dir = dirs[chosen]
    # Assign each surface atom to the nearest chosen direction.
    assign = np.argmin(
        np.linalg.norm(dirs[:, None, :] - centers_dir[None, :, :], axis=2),
        axis=1,
    )
    spots: list[Spot] = []
    for k in range(n_spots):
        members = np.nonzero(assign == k)[0]
        if members.size == 0:
            continue
        local_r = radii[members].mean()
        anchor = center + centers_dir[k] * (local_r + standoff)
        spread = (
            np.linalg.norm(pts[members] - pts[members].mean(axis=0), axis=1).max()
            if members.size > 1
            else 2.0
        )
        spots.append(
            Spot(
                center=anchor,
                radius=float(max(spread, 2.0)),
                atom_indices=surf_idx[members],
            )
        )
    return spots


def spot_containing(spots: list[Spot], point: np.ndarray) -> int | None:
    """Index of the first spot whose ball contains ``point`` (or None)."""
    p = np.asarray(point, dtype=float)
    for k, s in enumerate(spots):
        if np.linalg.norm(p - s.center) <= s.radius:
            return k
    return None
