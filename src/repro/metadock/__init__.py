"""METADOCK substrate: the docking engine the DQN agent lives in.

METADOCK (Imbernón et al. 2017) is a parallel *parameterized
metaheuristic schema* for virtual screening: poses of a ligand are
generated over the receptor surface, scored with Eq. 1, and evolved by a
configurable initialize/select/combine/improve loop.  The paper embeds it
as the RL environment: actions are translations/rotations, the engine
returns the next state and its score.

Modules:

- :mod:`repro.metadock.pose` -- pose parameterization (translation +
  quaternion + torsions) and pose-to-coordinates application;
- :mod:`repro.metadock.engine` -- :class:`MetadockEngine`, the stateful
  environment core (paper Figure 2's right-hand box);
- :mod:`repro.metadock.spots` -- receptor surface-spot decomposition;
- :mod:`repro.metadock.metaheuristic` -- the parameterized schema;
- :mod:`repro.metadock.strategies` -- GA / local-search / random-restart
  instantiations of the schema;
- :mod:`repro.metadock.montecarlo` -- Metropolis Monte Carlo baseline
  (the "traditional model" METADOCK is contrasted with);
- :mod:`repro.metadock.parallel` -- multiprocessing pose evaluation;
- :mod:`repro.metadock.library` / :mod:`repro.metadock.screening` --
  ZINC-like synthetic ligand libraries and the screening driver.
"""

from repro.metadock.pose import Pose, apply_pose
from repro.metadock.engine import MetadockEngine, EngineObservation
from repro.metadock.spots import surface_spots, Spot
from repro.metadock.metaheuristic import (
    MetaheuristicParams,
    MetaheuristicSchema,
    OptimizationResult,
)
from repro.metadock.strategies import (
    genetic_algorithm_params,
    local_search_params,
    random_search_params,
    scatter_search_params,
)
from repro.metadock.montecarlo import MonteCarloOptimizer, MonteCarloResult
from repro.metadock.library import generate_library
from repro.metadock.screening import screen_library, ScreeningHit
from repro.metadock.blind import blind_dock, BlindDockingResult, SpotResult
from repro.metadock.ensemble import (
    EnsembleHit,
    consensus_rank,
    screen_library_ensemble,
)
from repro.metadock.refinement import RefinementResult, refine_pose

__all__ = [
    "Pose",
    "apply_pose",
    "MetadockEngine",
    "EngineObservation",
    "surface_spots",
    "Spot",
    "MetaheuristicParams",
    "MetaheuristicSchema",
    "OptimizationResult",
    "genetic_algorithm_params",
    "local_search_params",
    "random_search_params",
    "scatter_search_params",
    "MonteCarloOptimizer",
    "MonteCarloResult",
    "generate_library",
    "ScreeningHit",
    "screen_library",
    "blind_dock",
    "BlindDockingResult",
    "SpotResult",
    "EnsembleHit",
    "consensus_rank",
    "screen_library_ensemble",
    "RefinementResult",
    "refine_pose",
]
