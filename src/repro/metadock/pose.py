"""Pose parameterization: rigid placement plus optional torsions.

A pose is the ligand's full configuration relative to the (fixed)
receptor frame:

- ``translation`` -- position of the ligand's reference centroid;
- ``orientation`` -- unit quaternion applied about that centroid;
- ``torsions`` -- dihedral offsets (radians) about each rotatable bond,
  applied to the template *before* the rigid move (the Section 5
  flexible-ligand extension).

Application order: torsions -> rotation -> translation, all relative to a
*template* ligand stored centered at the origin.  Poses are immutable;
the engine keeps the current pose and derives coordinates on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.topology import torsion_partition
from repro.chem.transforms import Quaternion, axis_angle_matrix


@dataclass(frozen=True)
class Pose:
    """Immutable ligand pose (see module docstring for semantics)."""

    translation: np.ndarray
    orientation: Quaternion
    torsions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        t = np.asarray(self.translation, dtype=float).reshape(3)
        object.__setattr__(self, "translation", t)
        object.__setattr__(self, "torsions", tuple(float(v) for v in self.torsions))

    @staticmethod
    def identity(n_torsions: int = 0) -> "Pose":
        """Pose at the origin with no rotation and zero torsions."""
        return Pose(np.zeros(3), Quaternion.identity(), (0.0,) * n_torsions)

    # -- incremental moves (the agent's actions) ---------------------------
    def translated(self, delta) -> "Pose":
        """Pose shifted by ``delta`` (world frame)."""
        return replace(self, translation=self.translation + np.asarray(delta, float))

    def rotated(self, axis, angle_rad: float) -> "Pose":
        """Pose rotated by ``angle_rad`` about ``axis`` through its centroid."""
        dq = Quaternion.from_axis_angle(axis, angle_rad)
        return replace(self, orientation=(dq * self.orientation).normalized())

    def twisted(self, torsion_index: int, delta_rad: float) -> "Pose":
        """Pose with one torsion angle incremented."""
        if not 0 <= torsion_index < len(self.torsions):
            raise IndexError(
                f"torsion {torsion_index} out of range "
                f"(pose has {len(self.torsions)})"
            )
        tors = list(self.torsions)
        tors[torsion_index] += float(delta_rad)
        return replace(self, torsions=tuple(tors))

    # -- flat-vector codec (metaheuristics operate on vectors) -------------
    def to_vector(self) -> np.ndarray:
        """[tx, ty, tz, qw, qx, qy, qz, torsions...]."""
        return np.concatenate(
            [
                self.translation,
                self.orientation.to_array(),
                np.asarray(self.torsions, dtype=float),
            ]
        )

    @staticmethod
    def from_vector(vec: np.ndarray, n_torsions: int = 0) -> "Pose":
        """Inverse of :meth:`to_vector`; the quaternion part is normalized."""
        v = np.asarray(vec, dtype=float)
        if v.size != 7 + n_torsions:
            raise ValueError(
                f"expected length {7 + n_torsions}, got {v.size}"
            )
        return Pose(
            v[:3].copy(),
            Quaternion.from_array(v[3:7]),
            tuple(v[7:]),
        )


class TorsionDriver:
    """Precomputed torsion machinery for one ligand template.

    For each rotatable bond (i, j) the moving side (partition) and the
    bond axis are cached; :meth:`apply` then rotates each partition about
    its bond axis by the pose's torsion angles.
    """

    def __init__(self, template: Molecule, bonds: Sequence[tuple[int, int]]):
        self.bonds = [(int(i), int(j)) for i, j in bonds]
        self._partitions = [
            torsion_partition(template.n_atoms, template.bonds, b)
            for b in self.bonds
        ]

    @property
    def n_torsions(self) -> int:
        """Number of driven torsions."""
        return len(self.bonds)

    def apply(self, coords: np.ndarray, torsions: Sequence[float]) -> np.ndarray:
        """Return template coordinates with torsion angles applied."""
        if len(torsions) != len(self.bonds):
            raise ValueError(
                f"expected {len(self.bonds)} torsions, got {len(torsions)}"
            )
        out = np.array(coords, dtype=float, copy=True)
        for (i, j), part, angle in zip(
            self.bonds, self._partitions, torsions
        ):
            if angle == 0.0:
                continue
            axis = out[j] - out[i]
            norm = np.linalg.norm(axis)
            if norm < 1e-9:  # degenerate bond; skip rather than blow up
                continue
            rot = axis_angle_matrix(axis / norm, float(angle))
            pivot = out[i]
            out[part] = (out[part] - pivot) @ rot.T + pivot
        return out


def apply_pose(
    template: Molecule,
    pose: Pose,
    torsion_driver: TorsionDriver | None = None,
) -> np.ndarray:
    """Coordinates of ``template`` under ``pose``.

    ``template`` must be stored centered (the builders guarantee
    ``centroid == 0`` for ligand templates); rotation is about that
    centroid, then the translation places it.
    """
    coords = template.coords
    if pose.torsions and torsion_driver is None:
        raise ValueError("pose has torsions but no TorsionDriver given")
    if torsion_driver is not None and torsion_driver.n_torsions:
        coords = torsion_driver.apply(coords, pose.torsions or (0.0,) * torsion_driver.n_torsions)
        coords = coords - coords.mean(axis=0)  # re-center after twisting
    rot = pose.orientation.to_matrix()
    return coords @ rot.T + pose.translation


def random_pose(
    rng: np.random.Generator,
    center: np.ndarray,
    radius: float,
    n_torsions: int = 0,
) -> Pose:
    """Uniform random pose within a ball around ``center``."""
    # Uniform in the ball via radius^(1/3) scaling.
    direction = rng.normal(size=3)
    direction /= max(np.linalg.norm(direction), 1e-12)
    r = radius * rng.uniform() ** (1.0 / 3.0)
    torsions = tuple(rng.uniform(-np.pi, np.pi, size=n_torsions))
    return Pose(
        np.asarray(center, float) + direction * r,
        Quaternion.random(rng),
        torsions,
    )
