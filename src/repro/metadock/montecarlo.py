"""Metropolis Monte Carlo pose optimization -- the traditional baseline.

The paper positions METADOCK against "traditional models applied to
perform virtual screening processes, such as the Monte Carlo algorithm",
and states DQN-Docking's goal as reaching "positions with similar scores
as those obtained with state-of-the-art Monte Carlo optimization
methods".  This module provides that comparator: simulated-annealing
Metropolis MC over pose space with adaptive step sizes and random
restarts.

Acceptance uses score differences (higher = better), i.e. standard
Metropolis on the *energy* ``-score``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose, random_pose
from repro.utils.rng import SeedLike, as_generator


@dataclass
class MonteCarloResult:
    """Best pose found plus acceptance statistics."""

    best_pose: Pose
    best_score: float
    evaluations: int
    accepted: int
    #: Best-so-far score after each step (for convergence plots).
    history: list[float] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted."""
        return self.accepted / self.evaluations if self.evaluations else 0.0

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"best score {self.best_score:.2f} after "
            f"{self.evaluations} evaluations "
            f"(acceptance {self.acceptance_rate:.2%})"
        )


@dataclass(frozen=True)
class MonteCarloConfig:
    """Annealed-Metropolis knobs."""

    steps: int = 2000
    restarts: int = 4
    #: Initial/final sampling temperatures (score units).
    temperature_start: float = 50.0
    temperature_final: float = 0.5
    #: Initial proposal widths; adapted toward 40% acceptance.
    translation_sigma: float = 1.5
    rotation_sigma: float = 0.3
    torsion_sigma: float = 0.3
    #: Proposal adaptation interval (steps); 0 disables adaptation.
    adapt_interval: int = 50
    target_acceptance: float = 0.4

    def __post_init__(self) -> None:
        if self.steps < 1 or self.restarts < 1:
            raise ValueError("steps and restarts must be >= 1")
        if self.temperature_final <= 0 or self.temperature_start <= 0:
            raise ValueError("temperatures must be positive")


class MonteCarloOptimizer:
    """Runs annealed Metropolis MC against a :class:`MetadockEngine`."""

    def __init__(
        self,
        engine: MetadockEngine,
        config: MonteCarloConfig | None = None,
        *,
        seed: SeedLike = None,
        search_center: np.ndarray | None = None,
        search_radius: float | None = None,
    ):
        self.engine = engine
        self.config = config or MonteCarloConfig()
        self.rng = as_generator(seed)
        built = engine.built
        self.center = (
            np.asarray(search_center, dtype=float)
            if search_center is not None
            else built.receptor.centroid()
        )
        self.radius = (
            float(search_radius)
            if search_radius is not None
            else built.config.receptor_radius + built.config.initial_offset
        )

    def _propose(
        self, pose: Pose, t_sigma: float, r_sigma: float
    ) -> Pose:
        cand = pose.translated(self.rng.normal(scale=t_sigma, size=3))
        axis = self.rng.normal(size=3)
        cand = cand.rotated(axis, self.rng.normal(scale=r_sigma))
        if self.engine.n_torsions and self.rng.uniform() < 0.5:
            cand = cand.twisted(
                int(self.rng.integers(self.engine.n_torsions)),
                self.rng.normal(scale=self.config.torsion_sigma),
            )
        return cand

    def run(self) -> MonteCarloResult:
        """Execute all restarts; returns the overall best."""
        cfg = self.config
        steps_per = max(1, cfg.steps // cfg.restarts)
        log_t0 = math.log(cfg.temperature_start)
        log_t1 = math.log(cfg.temperature_final)

        best_pose: Pose | None = None
        best_score = -math.inf
        evaluations = 0
        accepted = 0
        history: list[float] = []

        for _restart in range(cfg.restarts):
            pose = random_pose(
                self.rng, self.center, self.radius, self.engine.n_torsions
            )
            score = self.engine.score_pose(pose)
            evaluations += 1
            if score > best_score:
                best_pose, best_score = pose, score
            t_sigma = cfg.translation_sigma
            r_sigma = cfg.rotation_sigma
            window_accepted = 0
            for step in range(steps_per):
                frac = step / max(1, steps_per - 1)
                temp = math.exp(log_t0 + (log_t1 - log_t0) * frac)
                cand = self._propose(pose, t_sigma, r_sigma)
                cand_score = self.engine.score_pose(cand)
                evaluations += 1
                delta = cand_score - score
                if delta >= 0 or self.rng.uniform() < math.exp(
                    max(-700.0, delta / temp)
                ):
                    pose, score = cand, cand_score
                    accepted += 1
                    window_accepted += 1
                    if score > best_score:
                        best_pose, best_score = pose, score
                history.append(best_score)
                if cfg.adapt_interval and (step + 1) % cfg.adapt_interval == 0:
                    rate = window_accepted / cfg.adapt_interval
                    scale = 1.15 if rate > cfg.target_acceptance else 0.85
                    t_sigma = float(np.clip(t_sigma * scale, 0.05, 6.0))
                    r_sigma = float(np.clip(r_sigma * scale, 0.02, 1.5))
                    window_accepted = 0

        assert best_pose is not None
        return MonteCarloResult(
            best_pose=best_pose,
            best_score=best_score,
            evaluations=evaluations,
            accepted=accepted,
            history=history,
        )
