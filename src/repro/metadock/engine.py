""":class:`MetadockEngine` -- the environment core the DQN interacts with.

The engine owns a rigid receptor, a centered ligand template, and the
current :class:`~repro.metadock.pose.Pose`.  Per paper Section 3 it
exposes exactly what the RL layer needs:

- ``apply_action`` maps the discrete action set (±shift per axis,
  ±rotation per axis, and -- in the flexible extension -- ±twist per
  rotatable bond) onto pose updates;
- ``score`` evaluates Eq. 1 for the current pose (optionally via the
  cutoff cell-list path);
- ``state_vector`` flattens receptor coordinates, ligand coordinates and
  ligand bond vectors into the raw MDP state ("the internal state of
  METADOCK depicting the exact positions of ligand and receptor").

The engine knows nothing about rewards or termination: those are the RL
environment's business (:mod:`repro.env.docking_env`), mirroring how the
paper bolts game rules onto METADOCK from outside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.chem.builders import BuiltComplex
from repro.chem.molecule import Molecule
from repro.chem.topology import bond_vector_state, rotatable_bonds
from repro.metadock.pose import Pose, TorsionDriver, apply_pose


@dataclass(frozen=True)
class EngineObservation:
    """One engine snapshot: the raw state vector plus its score."""

    state: np.ndarray
    score: float
    ligand_coords: np.ndarray
    pose: Pose


class MetadockEngine:
    """Stateful docking engine over one receptor-ligand pair.

    Parameters
    ----------
    built:
        The complex (receptor + reference poses) from the builders.
    shift_length:
        Translation per shift action, angstrom (Table 1: the paper quotes
        1 "nanometer" per step, which at 2BSM scale is read as the unit
        step of the engine grid; configurable).
    rotation_angle_deg:
        Rotation per rotate action, degrees (Table 1: 0.5).
    n_torsions:
        Number of driven rotatable bonds (0 = rigid paper setting; 6 for
        the 2BSM flexible extension -> 18 actions).
    torsion_angle_deg:
        Twist per torsion action, degrees.
    include_receptor_in_state:
        Whether the state vector carries the (static) receptor block, as
        in the paper.  Disabling it shrinks the NN input without changing
        the MDP (the block is constant).
    scoring_method / scoring_kwargs:
        Pose-scorer selection ("exact" default, "cutoff", "grid",
        "incremental"; see :mod:`repro.scoring.scorers`) -- the engine's
        speed/accuracy dial.
    """

    def __init__(
        self,
        built: BuiltComplex,
        *,
        shift_length: float = 1.0,
        rotation_angle_deg: float = 0.5,
        n_torsions: int = 0,
        torsion_angle_deg: float = 5.0,
        include_receptor_in_state: bool = True,
        scoring_method: str = "exact",
        scoring_kwargs: dict | None = None,
    ):
        self.built = built
        self.receptor: Molecule = built.receptor
        # Center the template so pose translation == ligand centroid.
        lig = built.ligand_initial
        self.template: Molecule = lig.with_coords(
            lig.coords - lig.centroid()
        )
        self.shift_length = float(shift_length)
        self.rotation_angle = math.radians(rotation_angle_deg)
        self.torsion_angle = math.radians(torsion_angle_deg)
        self.include_receptor_in_state = bool(include_receptor_in_state)

        if n_torsions:
            rb = rotatable_bonds(
                self.template.symbols, self.template.coords, self.template.bonds
            )
            if len(rb) < n_torsions:
                raise ValueError(
                    f"ligand has {len(rb)} rotatable bonds, "
                    f"need {n_torsions}"
                )
            self.torsion_driver: TorsionDriver | None = TorsionDriver(
                self.template, rb[:n_torsions]
            )
        else:
            self.torsion_driver = None
        self.n_torsions = int(n_torsions)

        self._initial_pose = Pose(
            built.ligand_initial.centroid(),
            # identity orientation: the template *is* the initial pose.
            Pose.identity().orientation,
            (0.0,) * self.n_torsions,
        )
        from repro.scoring.scorers import make_scorer

        self.scoring_method = scoring_method
        self.scorer = make_scorer(
            scoring_method,
            self.receptor,
            self.template,
            **(scoring_kwargs or {}),
        )
        self._receptor_flat = np.ascontiguousarray(
            self.receptor.coords.reshape(-1)
        )
        # Compact-state support: the receptor block is constant for the
        # whole run, so it is exposed once (float32, read-only) while
        # per-step emission only writes the dynamic ligand tail into one
        # of two reusable buffers.  Two buffers, flipped per call, keep
        # state(t) and next_state(t) simultaneously valid for the
        # trainer's remember() -- callers holding tails longer than one
        # step must copy them.
        if self.include_receptor_in_state:
            self._static_f32 = np.ascontiguousarray(
                self._receptor_flat, dtype=np.float32
            )
        else:
            self._static_f32 = np.zeros(0, dtype=np.float32)
        self._static_f32.flags.writeable = False
        dyn = 3 * self.template.n_atoms + 3 * self.template.n_bonds
        self._dyn_bufs = (
            np.empty(dyn, dtype=np.float32),
            np.empty(dyn, dtype=np.float32),
        )
        self._dyn_flip = 0
        self.pose: Pose = self._initial_pose
        self._coords_cache: np.ndarray | None = None
        self._score_cache: float | None = None
        self.score_evaluations = 0
        self._tracer = None
        self._metrics = None

    # -- telemetry ----------------------------------------------------------
    @property
    def tracer(self):
        """Optional :class:`repro.telemetry.spans.SpanTracer`.

        When set, fresh scorer evaluations record a "score" span (cache
        hits stay untimed, so the span count equals real evaluations).
        Scorers that time internal phases (the incremental scorer's
        "neighborlist-rebuild") receive the same tracer.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        if hasattr(self.scorer, "tracer"):
            self.scorer.tracer = value

    @property
    def metrics(self):
        """Optional :class:`repro.telemetry.metrics.MetricsRegistry`.

        Forwarded to scorers that publish counters/gauges (the
        incremental scorer's ``scoring/neighborlist_rebuilds`` and
        ``scoring/active_pairs``).
        """
        return self._metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self._metrics = value
        if hasattr(self.scorer, "metrics"):
            self.scorer.metrics = value

    # -- action space -------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """12 rigid actions plus 2 per driven torsion."""
        return 12 + 2 * self.n_torsions

    def action_labels(self) -> list[str]:
        """Human-readable action names, index-aligned with apply_action."""
        labels = [
            "+shift-x", "-shift-x", "+shift-y", "-shift-y",
            "+shift-z", "-shift-z",
            "+rot-x", "-rot-x", "+rot-y", "-rot-y", "+rot-z", "-rot-z",
        ]
        for k in range(self.n_torsions):
            labels += [f"+twist-{k}", f"-twist-{k}"]
        return labels

    def apply_action(self, action: int) -> None:
        """Mutate the current pose by discrete action ``action``."""
        a = int(action)
        if not 0 <= a < self.n_actions:
            raise IndexError(
                f"action {a} out of range 0..{self.n_actions - 1}"
            )
        if a < 6:
            axis = a // 2
            sign = 1.0 if a % 2 == 0 else -1.0
            delta = np.zeros(3)
            delta[axis] = sign * self.shift_length
            self.pose = self.pose.translated(delta)
        elif a < 12:
            idx = a - 6
            axis = "xyz"[idx // 2]
            sign = 1.0 if idx % 2 == 0 else -1.0
            self.pose = self.pose.rotated(axis, sign * self.rotation_angle)
        else:
            idx = a - 12
            sign = 1.0 if idx % 2 == 0 else -1.0
            self.pose = self.pose.twisted(idx // 2, sign * self.torsion_angle)
        self._invalidate()

    # -- state & scoring -----------------------------------------------------
    def reset(
        self, pose: Pose | None = None, *, observe: bool = True
    ) -> EngineObservation | None:
        """Reset to the initial (or a given) pose.

        Returns the full :class:`EngineObservation` snapshot, or None
        with ``observe=False`` (the compact hot path, which skips
        building the paper-shaped state vector).
        """
        self.pose = self._initial_pose if pose is None else pose
        self._invalidate()
        return self.observe() if observe else None

    def set_pose(self, pose: Pose) -> None:
        """Replace the current pose (used by optimizers)."""
        self.pose = pose
        self._invalidate()

    def _invalidate(self) -> None:
        self._coords_cache = None
        self._score_cache = None

    def ligand_coords(self) -> np.ndarray:
        """Current ligand coordinates under the pose (cached)."""
        if self._coords_cache is None:
            self._coords_cache = apply_pose(
                self.template, self.pose, self.torsion_driver
            )
        return self._coords_cache

    def score(self) -> float:
        """Score of the current pose under the configured scorer (cached)."""
        if self._score_cache is None:
            if self.tracer is None:
                self._score_cache = self.scorer.score(self.ligand_coords())
            else:
                with self.tracer.span("score"):
                    self._score_cache = self.scorer.score(
                        self.ligand_coords()
                    )
            self.score_evaluations += 1
        return self._score_cache

    def set_external_score(self, value: float) -> None:
        """Install a score computed outside the engine for the current pose.

        Batched rollout paths evaluate many engines' poses through one
        ``score_batch`` call and hand each engine its entry here; the
        cache and ``score_evaluations`` bookkeeping then match what a
        plain :meth:`score` call would have produced.
        """
        self._score_cache = float(value)
        self.score_evaluations += 1

    def score_pose(self, pose: Pose) -> float:
        """Score an arbitrary pose without disturbing engine state."""
        coords = apply_pose(self.template, pose, self.torsion_driver)
        self.score_evaluations += 1
        return self.scorer.score(coords)

    def score_poses(self, poses: Sequence[Pose]) -> np.ndarray:
        """Batched scoring of many poses."""
        if not poses:
            return np.empty(0)
        coords = np.stack(
            [apply_pose(self.template, p, self.torsion_driver) for p in poses]
        )
        self.score_evaluations += len(poses)
        return self.scorer.score_batch(coords)

    def state_dim(self) -> int:
        """Length of the state vector."""
        n = self.dynamic_dim()
        if self.include_receptor_in_state:
            n += self._receptor_flat.size
        return n

    def dynamic_dim(self) -> int:
        """Length of the dynamic (ligand) tail of the state vector."""
        return 3 * self.template.n_atoms + 3 * self.template.n_bonds

    def static_state(self) -> np.ndarray:
        """The constant state prefix (receptor block), float32 read-only.

        Empty when ``include_receptor_in_state`` is off -- the whole
        state is dynamic then.
        """
        return self._static_f32

    def dynamic_state(self) -> np.ndarray:
        """The dynamic state tail written into a reusable float32 buffer.

        Alternates between two internal buffers so the previous call's
        result stays valid for exactly one more call (state vs
        next_state in the trainer loop); copy to hold longer.
        """
        lig = self.ligand_coords()
        buf = self._dyn_bufs[self._dyn_flip]
        self._dyn_flip ^= 1
        n = lig.size
        buf[:n] = lig.reshape(-1)
        buf[n:] = bond_vector_state(lig, self.template.bonds)
        return buf

    def state_vector(self) -> np.ndarray:
        """The paper's raw state: positions of receptor and ligand atoms
        plus the ligand's bond vectors, flattened (fresh float64 array,
        safe to hold -- checkpoints and external consumers use this)."""
        lig = self.ligand_coords()
        out = np.empty(self.state_dim(), dtype=np.float64)
        off = 0
        if self.include_receptor_in_state:
            off = self._receptor_flat.size
            out[:off] = self._receptor_flat
        n = lig.size
        out[off : off + n] = lig.reshape(-1)
        out[off + n :] = bond_vector_state(lig, self.template.bonds)
        return out

    def state_into(self, out: np.ndarray) -> None:
        """Write the raw state vector into ``out[:state_dim()]`` in place.

        Same layout (and, entry for entry, the same casts) as assigning
        :meth:`state_vector` into ``out`` -- without materializing the
        intermediate float64 array.  ``out`` may be any float dtype and
        may be longer than ``state_dim()``; the tail is left untouched.
        """
        lig = self.ligand_coords()
        off = 0
        if self.include_receptor_in_state:
            off = self._receptor_flat.size
            out[:off] = self._receptor_flat
        n = lig.size
        out[off : off + n] = lig.reshape(-1)
        out[off + n : off + n + 3 * self.template.n_bonds] = (
            bond_vector_state(lig, self.template.bonds)
        )

    def observe(self) -> EngineObservation:
        """Snapshot of the current state/score/coordinates/pose."""
        return EngineObservation(
            state=self.state_vector(),
            score=self.score(),
            ligand_coords=self.ligand_coords().copy(),
            pose=self.pose,
        )

    # -- geometry helpers used by the termination rules ----------------------
    def com_distance(self) -> float:
        """Distance between ligand and receptor centers of mass."""
        lig = self.template.with_coords(self.ligand_coords())
        return float(
            np.linalg.norm(
                lig.center_of_mass() - self.receptor.center_of_mass()
            )
        )

    def initial_com_distance(self) -> float:
        """COM distance at the canonical initial pose."""
        return self.built.initial_com_distance

    def crystal_rmsd(self) -> float:
        """Plain RMSD between current ligand and the crystallographic pose."""
        diff = self.ligand_coords() - self.built.ligand_crystal.coords
        return float(np.sqrt((diff**2).sum(axis=-1).mean()))
