"""Ensemble docking and consensus scoring.

Two standard virtual-screening refinements on top of the base drivers:

- **Ensemble docking** -- dock several pre-sampled conformers of each
  compound rigidly and keep the best (the cheap route to ligand
  flexibility the paper's Section 5 asks for, complementary to the
  torsion-action environment);
- **Consensus ranking** -- merge rankings produced by different search
  strategies (Borda count), which suppresses single-strategy artifacts;
  widely used when scoring functions disagree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.chem.builders import BuiltComplex
from repro.chem.conformers import generate_conformers
from repro.chem.molecule import Molecule
from repro.metadock.engine import MetadockEngine
from repro.metadock.library import LibraryEntry
from repro.metadock.metaheuristic import MetaheuristicSchema
from repro.metadock.screening import ScreeningHit, _engine_for
from repro.metadock.strategies import STRATEGY_PRESETS
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class EnsembleHit(ScreeningHit):
    """Screening hit annotated with the winning conformer."""

    best_conformer: int = 0
    n_conformers: int = 1


def screen_ligand_ensemble(
    built: BuiltComplex,
    entry: LibraryEntry,
    *,
    n_conformers: int = 4,
    strategy: str = "local",
    budget: int = 300,
    seed: int = 0,
) -> EnsembleHit:
    """Dock every conformer of one compound rigidly; keep the best.

    The per-conformer budget is ``budget // n_conformers`` so ensemble
    and rigid screening are evaluation-comparable.
    """
    conformers = generate_conformers(
        entry.ligand, n_conformers, rng=seed + 17
    )
    per_budget = max(20, budget // max(1, len(conformers)))
    best_score = -np.inf
    best_k = 0
    total_evals = 0
    for k, conf in enumerate(conformers):
        lig = entry.ligand.with_coords(conf.coords)
        engine = _engine_for(built, lig)
        params = STRATEGY_PRESETS[strategy](per_budget)
        result = MetaheuristicSchema(
            engine, params, seed=seed + 31 * k
        ).run()
        total_evals += result.evaluations
        if result.best_score > best_score:
            best_score = result.best_score
            best_k = k
    return EnsembleHit(
        compound_id=entry.compound_id,
        best_score=float(best_score),
        evaluations=total_evals,
        n_atoms=entry.n_atoms,
        best_conformer=best_k,
        n_conformers=len(conformers),
    )


def screen_library_ensemble(
    built: BuiltComplex,
    library: list[LibraryEntry],
    *,
    n_conformers: int = 4,
    strategy: str = "local",
    budget: int = 300,
    seed: int = 0,
) -> list[EnsembleHit]:
    """Ensemble-dock the whole library; ranked best-first."""
    seeds = RngFactory(seed).seeds("ensemble-screening", len(library))
    hits = [
        screen_ligand_ensemble(
            built,
            entry,
            n_conformers=n_conformers,
            strategy=strategy,
            budget=budget,
            seed=s,
        )
        for entry, s in zip(library, seeds)
    ]
    hits.sort(key=lambda h: h.best_score, reverse=True)
    return hits


def consensus_rank(
    rankings: dict[str, list[ScreeningHit]],
) -> list[tuple[str, float]]:
    """Borda-count consensus over per-strategy rankings.

    Each strategy contributes ``n - position`` points per compound; the
    output is ``(compound_id, mean points)`` sorted best-first.  Raises
    on empty input or inconsistent compound sets, which would silently
    bias the count otherwise.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    ids_per = [
        tuple(sorted(h.compound_id for h in hits))
        for hits in rankings.values()
    ]
    if len(set(ids_per)) != 1:
        raise ValueError("rankings cover different compound sets")
    scores: dict[str, float] = {}
    for hits in rankings.values():
        n = len(hits)
        for pos, h in enumerate(hits):
            scores[h.compound_id] = scores.get(h.compound_id, 0.0) + (
                n - pos
            )
    k = len(rankings)
    out = [(cid, pts / k) for cid, pts in scores.items()]
    out.sort(key=lambda t: (-t[1], t[0]))
    return out
