"""Virtual-screening primitives: rank a ligand library against one receptor.

This is the end-to-end METADOCK use case the paper motivates: for each
compound, optimize its pose with a chosen metaheuristic strategy and rank
compounds by best score.  Per-ligand searches are independent, and
:func:`screen_library` routes them through the sharded driver in
:mod:`repro.screening.driver` -- ``workers>=2`` fans shards out over a
process pool, ``workers=1`` (the default) runs in-process with a ranking
bitwise identical to either mode.  The service layer (streaming hits,
telemetry, resume) lives in :mod:`repro.screening`; this module keeps the
per-ligand building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.builders import BuiltComplex
from repro.chem.molecule import Molecule
from repro.metadock.engine import MetadockEngine
from repro.metadock.library import LibraryEntry
from repro.metadock.metaheuristic import MetaheuristicSchema
from repro.metadock.montecarlo import MonteCarloConfig, MonteCarloOptimizer
from repro.metadock.strategies import STRATEGY_PRESETS


@dataclass(frozen=True)
class ScreeningHit:
    """One ranked screening result."""

    compound_id: str
    best_score: float
    evaluations: int
    n_atoms: int


def _engine_for(
    built: BuiltComplex,
    ligand: Molecule,
    *,
    scoring_method: str = "exact",
    scoring_kwargs: dict | None = None,
) -> MetadockEngine:
    """Engine over ``built``'s receptor with a substituted ligand."""
    import dataclasses

    centered = ligand.with_coords(ligand.coords - ligand.centroid())
    initial = centered.translated(
        built.pocket_axis
        * (built.config.receptor_radius + built.config.initial_offset)
    )
    initial.name = f"{ligand.name}-initial"
    sub = dataclasses.replace(
        built,
        ligand_crystal=centered.translated(built.pocket_center),
        ligand_initial=initial,
    )
    return MetadockEngine(
        sub,
        scoring_method=scoring_method,
        scoring_kwargs=scoring_kwargs,
    )


def screen_ligand(
    built: BuiltComplex,
    entry: LibraryEntry,
    *,
    strategy: str = "scatter",
    budget: int = 400,
    seed: int = 0,
    scoring_method: str = "exact",
    scoring_kwargs: dict | None = None,
) -> ScreeningHit:
    """Optimize one compound's pose; return its best score."""
    engine = _engine_for(
        built,
        entry.ligand,
        scoring_method=scoring_method,
        scoring_kwargs=scoring_kwargs,
    )
    if strategy == "montecarlo":
        opt = MonteCarloOptimizer(
            engine,
            MonteCarloConfig(steps=budget, restarts=2),
            seed=seed,
        )
        result = opt.run()
    else:
        try:
            params = STRATEGY_PRESETS[strategy](budget)
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; options: "
                f"{sorted(STRATEGY_PRESETS) + ['montecarlo']}"
            ) from None
        result = MetaheuristicSchema(engine, params, seed=seed).run()
    return ScreeningHit(
        compound_id=entry.compound_id,
        best_score=float(result.best_score),
        evaluations=int(result.evaluations),
        n_atoms=entry.n_atoms,
    )


def screen_library(
    built: BuiltComplex,
    library: list[LibraryEntry],
    *,
    strategy: str = "scatter",
    budget: int = 400,
    seed: int = 0,
    top_k: int | None = None,
    workers: int = 1,
    shard_size: int | None = None,
    scoring_method: str = "exact",
    scoring_kwargs: dict | None = None,
) -> list[ScreeningHit]:
    """Screen every compound and return hits ranked by score (descending).

    Deterministic: each compound gets an independent seed stream derived
    from ``seed`` (a pure function of the library index), so the ranking
    is bitwise identical under any ``workers`` / ``shard_size`` choice
    and any execution order.  ``workers>=2`` fans shards over a process
    pool via :func:`repro.screening.driver.run_screening`.
    """
    # Lazy import: the driver layers on top of this module.
    from repro.screening.driver import (
        DEFAULT_SHARD_SIZE,
        ScreeningConfig,
        run_screening,
    )

    config = ScreeningConfig(
        strategy=strategy,
        budget=budget,
        seed=seed,
        workers=workers,
        shard_size=shard_size if shard_size is not None else DEFAULT_SHARD_SIZE,
        top_k=top_k,
        scoring_method=scoring_method,
        scoring_kwargs=dict(scoring_kwargs or {}),
    )
    return run_screening(built, library, config).hits


def enrichment_factor(
    hits: list[ScreeningHit],
    actives: set[str],
    top_fraction: float = 0.1,
) -> float:
    """Standard VS enrichment: actives density in the top vs overall.

    ``actives`` are compound ids known (by construction) to bind well;
    EF = (actives in top f) / (f * total actives).  EF of 1 means random
    ranking; higher means the screen concentrates actives at the top.
    """
    if not hits or not actives:
        return 0.0
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must lie in (0, 1]")
    n_top = max(1, int(round(top_fraction * len(hits))))
    top_ids = {h.compound_id for h in hits[:n_top]}
    found = len(top_ids & actives)
    expected = top_fraction * len(actives)
    return found / expected if expected else 0.0
