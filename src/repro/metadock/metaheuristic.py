"""The parameterized metaheuristic schema of METADOCK.

METADOCK's central idea (Imbernón et al. 2017) is a *single* population
loop whose numeric parameters instantiate different classical
metaheuristics::

    Initialize(INEIni, ...)
    while not End():
        Select(NBESel, NWOSel)
        Combine(NBECom, NWOCom)
        Improve(IIEImp, step)
        Include()

Large combine counts with no improvement -> genetic algorithm; a
population of one with heavy improvement -> local search; everything in
between is reachable by turning the dials.  :mod:`repro.metadock.
strategies` provides the named presets the screening driver and benches
use.

Fitness here is the METADOCK score (higher = better).  Individuals are
pose vectors (see :meth:`repro.metadock.pose.Pose.to_vector`), so the
same schema optimizes rigid and flexible ligands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose, random_pose
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class MetaheuristicParams:
    """The schema's numeric dials (METADOCK Table 1 analogues)."""

    #: Population size after initialization (INEIni).
    population_size: int = 24
    #: Candidates generated per individual at initialization, keeping the
    #: best (initialization intensification, IIEIni).
    init_candidates: int = 1
    #: Number of best individuals selected as parents (NBESel).
    n_best_select: int = 8
    #: Number of worst individuals also kept for diversity (NWOSel).
    n_worst_select: int = 2
    #: Offspring pairs combined per generation (NBECom+NWOCom analogue).
    n_combine: int = 8
    #: Local-improvement iterations applied per surviving individual
    #: (IIEImp); 0 disables the improve phase.
    improve_iterations: int = 2
    #: Gaussian step for improvement moves: translation sigma (angstrom).
    improve_translation_sigma: float = 0.6
    #: Gaussian step for improvement moves: rotation sigma (radians).
    improve_rotation_sigma: float = 0.15
    #: Mutation probability per offspring gene block.
    mutation_rate: float = 0.15
    #: Generations before stopping (End condition).
    generations: int = 12
    #: Optional cap on score evaluations; the loop exits once exceeded.
    max_evaluations: int | None = None

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValueError("population_size must be >= 1")
        if self.n_best_select + self.n_worst_select > self.population_size:
            raise ValueError("selection exceeds population size")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must lie in [0, 1]")
        if self.generations < 0:
            raise ValueError("generations must be non-negative")


@dataclass
class OptimizationResult:
    """Best pose found plus the search trace."""

    best_pose: Pose
    best_score: float
    evaluations: int
    #: Best score after each generation (monotone non-decreasing).
    history: list[float] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"best score {self.best_score:.2f} after "
            f"{self.evaluations} evaluations "
            f"({len(self.history)} generations)"
        )


class MetaheuristicSchema:
    """Runs the parameterized loop against a :class:`MetadockEngine`.

    The engine is used purely as a (batched) pose-scoring oracle; the
    engine's own current pose is left untouched.
    """

    def __init__(
        self,
        engine: MetadockEngine,
        params: MetaheuristicParams,
        *,
        seed: SeedLike = None,
        search_center: np.ndarray | None = None,
        search_radius: float | None = None,
    ):
        self.engine = engine
        self.params = params
        self.rng = as_generator(seed)
        built = engine.built
        self.center = (
            np.asarray(search_center, dtype=float)
            if search_center is not None
            else built.receptor.centroid()
        )
        self.radius = (
            float(search_radius)
            if search_radius is not None
            else built.config.receptor_radius
            + built.config.initial_offset
        )
        self.n_torsions = engine.n_torsions
        self._evals = 0

    # -- schema phases ------------------------------------------------------
    def _initialize(self) -> tuple[list[Pose], np.ndarray]:
        """Initialize(): spread candidates, keep the per-slot best.

        All ``population_size x init_candidates`` candidates are drawn
        slot-major (the exact RNG stream of per-slot generation) and
        scored through **one** batched engine call; each slot then keeps
        its best candidate.  Scores are bit-identical to the per-slot
        batches -- ``score_batch`` entries do not depend on batch
        composition.
        """
        p = self.params
        c = max(1, p.init_candidates)
        cands = [
            random_pose(self.rng, self.center, self.radius, self.n_torsions)
            for _ in range(p.population_size * c)
        ]
        s = self._score_batch(cands)
        poses: list[Pose] = []
        scores = np.empty(p.population_size)
        for k in range(p.population_size):
            slot = s[k * c : (k + 1) * c]
            best = int(np.argmax(slot))
            poses.append(cands[k * c + best])
            scores[k] = slot[best]
        return poses, scores

    def _select(self, poses: list[Pose], scores: np.ndarray) -> list[int]:
        """Select(): indices of the elite plus a diversity tail."""
        p = self.params
        order = np.argsort(scores)[::-1]
        chosen = list(order[: p.n_best_select])
        if p.n_worst_select:
            chosen += list(order[-p.n_worst_select :])
        return chosen

    def _combine(self, parents: list[Pose]) -> list[Pose]:
        """Combine(): blend-crossover of random parent pairs + mutation."""
        p = self.params
        children: list[Pose] = []
        if len(parents) < 2:
            return children
        vecs = np.stack([q.to_vector() for q in parents])
        for _ in range(p.n_combine):
            i, j = self.rng.choice(len(parents), size=2, replace=False)
            alpha = self.rng.uniform(-0.25, 1.25, size=vecs.shape[1])
            child = alpha * vecs[i] + (1.0 - alpha) * vecs[j]
            if self.rng.uniform() < p.mutation_rate:
                child[:3] += self.rng.normal(
                    scale=2.0 * p.improve_translation_sigma, size=3
                )
                child[3:7] += self.rng.normal(scale=0.2, size=4)
                if self.n_torsions:
                    child[7:] += self.rng.normal(
                        scale=0.5, size=self.n_torsions
                    )
            children.append(Pose.from_vector(child, self.n_torsions))
        return children

    def _improve(self, pose: Pose, score: float) -> tuple[Pose, float]:
        """Improve(): greedy Gaussian hill-climb around one individual."""
        p = self.params
        best_pose, best_score = pose, score
        for _ in range(p.improve_iterations):
            cand = best_pose.translated(
                self.rng.normal(scale=p.improve_translation_sigma, size=3)
            )
            axis = self.rng.normal(size=3)
            cand = cand.rotated(
                axis, self.rng.normal(scale=p.improve_rotation_sigma)
            )
            if self.n_torsions and self.rng.uniform() < 0.5:
                cand = cand.twisted(
                    int(self.rng.integers(self.n_torsions)),
                    self.rng.normal(scale=0.3),
                )
            s = self._score_batch([cand])[0]
            if s > best_score:
                best_pose, best_score = cand, s
        return best_pose, best_score

    def _score_batch(self, poses: list[Pose]) -> np.ndarray:
        self._evals += len(poses)
        return self.engine.score_poses(poses)

    def _budget_left(self) -> bool:
        cap = self.params.max_evaluations
        return cap is None or self._evals < cap

    # -- driver ---------------------------------------------------------------
    def run(self) -> OptimizationResult:
        """Execute the schema and return the best pose found."""
        p = self.params
        poses, scores = self._initialize()
        history: list[float] = [float(scores.max())]
        for _gen in range(p.generations):
            if not self._budget_left():
                break
            elite_idx = self._select(poses, scores)
            parents = [poses[i] for i in elite_idx]
            children = self._combine(parents)
            if children:
                child_scores = self._score_batch(children)
            else:
                child_scores = np.empty(0)
            # Improve phase on the elite (intensification).
            improved: list[Pose] = []
            improved_scores: list[float] = []
            if p.improve_iterations and self._budget_left():
                for i in elite_idx[: p.n_best_select]:
                    np_pose, np_score = self._improve(poses[i], scores[i])
                    improved.append(np_pose)
                    improved_scores.append(np_score)
            # Include(): pool everything, keep the best population_size.
            pool_poses = poses + children + improved
            pool_scores = np.concatenate(
                [scores, child_scores, np.asarray(improved_scores)]
            )
            order = np.argsort(pool_scores)[::-1][: p.population_size]
            poses = [pool_poses[i] for i in order]
            scores = pool_scores[order]
            history.append(float(scores.max()))
        best = int(np.argmax(scores))
        return OptimizationResult(
            best_pose=poses[best],
            best_score=float(scores[best]),
            evaluations=self._evals,
            history=history,
        )
