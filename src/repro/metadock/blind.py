"""Blind docking: independent pose searches over every surface spot.

BINDSURF/METADOCK's headline mode assumes *no* prior knowledge of the
binding site: the protein surface is decomposed into spots
(:mod:`repro.metadock.spots`) and an independent optimization runs at
each -- embarrassingly parallel, which is exactly why the paper's group
built it on GPUs.  Here each spot search is a process-pool task; results
are merged into a ranked list of candidate sites.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.chem.builders import BuiltComplex
from repro.metadock.engine import MetadockEngine
from repro.metadock.metaheuristic import (
    MetaheuristicParams,
    MetaheuristicSchema,
)
from repro.metadock.parallel import default_workers
from repro.metadock.pose import Pose
from repro.metadock.spots import Spot, surface_spots
from repro.metadock.strategies import STRATEGY_PRESETS
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class SpotResult:
    """Best pose found at one surface spot."""

    spot_index: int
    best_score: float
    best_pose: Pose
    evaluations: int
    #: Distance from the found pose to the true pocket center (known for
    #: synthetic complexes; lets benches verify blind docking finds it).
    pocket_distance: float


@dataclass
class BlindDockingResult:
    """All spot results, ranked by score (best first)."""

    spots: list[SpotResult]
    total_evaluations: int

    @property
    def best(self) -> SpotResult:
        """The overall winner."""
        return self.spots[0]

    def summary(self) -> str:
        """Ranked table of candidate binding sites."""
        from repro.utils.tables import render_table

        rows = [
            (
                r.spot_index,
                f"{r.best_score:.2f}",
                f"{r.pocket_distance:.1f}",
                r.evaluations,
            )
            for r in self.spots
        ]
        return render_table(
            ["spot", "best score", "dist to pocket (A)", "evals"],
            rows,
            title=(
                f"Blind docking ({len(self.spots)} spots, "
                f"{self.total_evaluations} evaluations)"
            ),
            align=["r", "r", "r", "r"],
        )


def _search_spot(task) -> tuple[int, float, np.ndarray, int]:
    """Pool worker: one spot's metaheuristic search (module-level for
    pickling).  Returns primitives to keep the IPC payload small."""
    built, spot_index, center, radius, params, seed = task
    engine = MetadockEngine(built)
    schema = MetaheuristicSchema(
        engine,
        params,
        seed=seed,
        search_center=center,
        search_radius=radius,
    )
    result = schema.run()
    return (
        spot_index,
        result.best_score,
        result.best_pose.to_vector(),
        result.evaluations,
    )


def blind_dock(
    built: BuiltComplex,
    *,
    n_spots: int = 12,
    strategy: str = "local",
    budget_per_spot: int = 200,
    seed: int = 0,
    n_workers: int | None = None,
) -> BlindDockingResult:
    """Run an independent search at every surface spot; rank the sites.

    Deterministic in ``seed`` regardless of worker count or scheduling
    (each spot gets its own derived seed).
    """
    spots: list[Spot] = surface_spots(built.receptor, n_spots)
    try:
        params: MetaheuristicParams = STRATEGY_PRESETS[strategy](
            budget_per_spot
        )
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; options "
            f"{sorted(STRATEGY_PRESETS)}"
        ) from None
    seeds = RngFactory(seed).seeds("blind-docking", len(spots))
    lig_radius = built.ligand_crystal.bounding_radius()
    tasks = [
        (
            built,
            k,
            s.center,
            s.radius + lig_radius,
            params,
            seeds[k],
        )
        for k, s in enumerate(spots)
    ]
    workers = default_workers() if n_workers is None else int(n_workers)
    if workers <= 1 or len(tasks) <= 1:
        raw = [_search_spot(t) for t in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(_search_spot, tasks))

    n_torsions = 0  # blind docking runs the rigid engine
    pocket = built.pocket_center
    results = []
    for spot_index, score, pose_vec, evals in raw:
        pose = Pose.from_vector(pose_vec, n_torsions)
        results.append(
            SpotResult(
                spot_index=spot_index,
                best_score=float(score),
                best_pose=pose,
                evaluations=int(evals),
                pocket_distance=float(
                    np.linalg.norm(pose.translation - pocket)
                ),
            )
        )
    results.sort(key=lambda r: r.best_score, reverse=True)
    return BlindDockingResult(
        spots=results,
        total_evaluations=sum(r.evaluations for r in results),
    )
