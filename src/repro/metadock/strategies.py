"""Named instantiations of the METADOCK metaheuristic schema.

Each preset is one point in the schema's parameter space; together they
cover the classical strategies the METADOCK paper reports ("several
heuristic strategies can be applied").  All take a ``budget`` in score
evaluations so comparisons across strategies are evaluation-fair.
"""

from __future__ import annotations

from repro.metadock.metaheuristic import MetaheuristicParams


def genetic_algorithm_params(budget: int | None = None) -> MetaheuristicParams:
    """Combine-heavy preset: large population, crossover, no local search."""
    return MetaheuristicParams(
        population_size=32,
        init_candidates=1,
        n_best_select=12,
        n_worst_select=4,
        n_combine=24,
        improve_iterations=0,
        mutation_rate=0.25,
        generations=20,
        max_evaluations=budget,
    )


def local_search_params(budget: int | None = None) -> MetaheuristicParams:
    """Improvement-only preset: tiny population, heavy hill-climbing."""
    return MetaheuristicParams(
        population_size=4,
        init_candidates=4,
        n_best_select=4,
        n_worst_select=0,
        n_combine=0,
        improve_iterations=12,
        improve_translation_sigma=0.8,
        improve_rotation_sigma=0.25,
        mutation_rate=0.0,
        generations=20,
        max_evaluations=budget,
    )


def random_search_params(budget: int | None = None) -> MetaheuristicParams:
    """Pure diversification: resample every generation, no memory pressure.

    Implemented as a population that only survives through Include(); with
    no combine/improve the schema degenerates to best-of-N sampling, the
    weakest sensible baseline.
    """
    return MetaheuristicParams(
        population_size=48,
        init_candidates=1,
        n_best_select=1,
        n_worst_select=0,
        n_combine=0,
        improve_iterations=0,
        mutation_rate=0.0,
        generations=0,  # initialization is the whole search
        max_evaluations=budget,
    )


def scatter_search_params(budget: int | None = None) -> MetaheuristicParams:
    """Balanced preset: moderate combine + improve (scatter-search-like)."""
    return MetaheuristicParams(
        population_size=16,
        init_candidates=2,
        n_best_select=6,
        n_worst_select=2,
        n_combine=8,
        improve_iterations=4,
        improve_translation_sigma=0.5,
        improve_rotation_sigma=0.12,
        mutation_rate=0.1,
        generations=16,
        max_evaluations=budget,
    )


#: Registry used by the screening driver and the benches.
STRATEGY_PRESETS = {
    "ga": genetic_algorithm_params,
    "local": local_search_params,
    "random": random_search_params,
    "scatter": scatter_search_params,
}
