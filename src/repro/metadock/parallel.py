"""Parallel pose evaluation: the "parallel" in parallel metaheuristic.

METADOCK evaluates "millions of positions" by fanning pose batches across
GPU threads; the CPU analogue here is two-level:

1. **Vectorized batching** -- :func:`repro.scoring.composite.
   score_pose_batch` already amortizes one receptor against a pose chunk
   inside BLAS.  This is the default and is what the engine uses.
2. **Process pools** -- for many independent searches (one per surface
   spot, or one per library ligand) this module forks workers that each
   hold the receptor once (copy-on-write under fork; re-pickled under
   spawn) and stream pose chunks.

Workers receive the molecules via a pool initializer rather than per
task, so a 3k-atom receptor is serialized once per worker, not once per
chunk -- the mpi4py guide's "communicate buffers, not objects, and do it
rarely" rule applied to multiprocessing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from repro.chem.molecule import Molecule
from repro.scoring.composite import score_pose_batch

# Module-level worker state, installed by the pool initializer.
_WORKER_RECEPTOR: Molecule | None = None
_WORKER_LIGAND: Molecule | None = None


def _init_worker(receptor: Molecule, ligand: Molecule) -> None:
    global _WORKER_RECEPTOR, _WORKER_LIGAND
    _WORKER_RECEPTOR = receptor
    _WORKER_LIGAND = ligand


def _score_chunk(coords_chunk: np.ndarray) -> np.ndarray:
    if _WORKER_RECEPTOR is None or _WORKER_LIGAND is None:
        raise RuntimeError("worker not initialized")
    return score_pose_batch(_WORKER_RECEPTOR, _WORKER_LIGAND, coords_chunk)


def default_workers() -> int:
    """Worker count: physical-ish core count, capped for test machines."""
    return max(1, min(8, (os.cpu_count() or 2)))


def score_coords_parallel(
    receptor: Molecule,
    ligand: Molecule,
    coords_batch: np.ndarray,
    *,
    n_workers: int | None = None,
    chunk: int = 256,
) -> np.ndarray:
    """Score (k, m, 3) pose coordinates across a process pool.

    Falls back to the in-process vectorized path when the batch is small
    or one worker is requested (pool startup would dominate).
    Result order matches the input order.
    """
    cb = np.ascontiguousarray(coords_batch, dtype=float)
    if cb.ndim != 3:
        raise ValueError("coords_batch must have shape (k, m, 3)")
    k = cb.shape[0]
    workers = default_workers() if n_workers is None else int(n_workers)
    if workers <= 1 or k <= chunk:
        return score_pose_batch(receptor, ligand, cb)
    chunks = [cb[i : i + chunk] for i in range(0, k, chunk)]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(receptor, ligand),
    ) as pool:
        results = list(pool.map(_score_chunk, chunks))
    return np.concatenate(results)


def map_over_seeds(
    fn,
    seeds: Sequence[int],
    *,
    n_workers: int | None = None,
):
    """Run ``fn(seed)`` for every seed, in parallel when it pays off.

    ``fn`` must be a module-level callable (picklable).  Used to fan
    independent optimizations (per spot / per ligand) across cores; the
    caller supplies deterministic per-task seeds from
    :meth:`repro.utils.rng.RngFactory.seeds` so results are reproducible
    regardless of scheduling order.
    """
    workers = default_workers() if n_workers is None else int(n_workers)
    seeds = list(seeds)
    if workers <= 1 or len(seeds) <= 1:
        return [fn(s) for s in seeds]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, seeds))
