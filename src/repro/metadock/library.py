"""Synthetic ligand libraries (the ZINC stand-in).

Virtual screening filters "large libraries of small molecules with less
than 200 atoms" (paper Section 2.1, citing ZINC).  Offline we generate a
deterministic library of chemically varied ligands from the same growth
process as the primary ligand, varying seed, size and charge pattern.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.chem.builders import build_ligand
from repro.chem.molecule import Molecule
from repro.config import ComplexConfig
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class LibraryEntry:
    """One library compound with its generation metadata."""

    ligand: Molecule
    compound_id: str
    n_atoms: int
    net_charge: float


def generate_library(
    base: ComplexConfig,
    n_ligands: int,
    *,
    seed: int = 0,
    min_atoms: int | None = None,
    max_atoms: int | None = None,
) -> list[LibraryEntry]:
    """Generate ``n_ligands`` diverse compounds around the base config.

    Sizes are drawn uniformly in [min_atoms, max_atoms] (defaults: 60% to
    140% of the base ligand, clamped to the VS convention of < 200
    atoms).  Entirely deterministic in ``seed``.
    """
    if n_ligands < 0:
        raise ValueError("n_ligands must be non-negative")
    if min_atoms is not None and min_atoms < 1:
        raise ValueError(
            f"min_atoms must be positive, got {min_atoms}"
        )
    if max_atoms is not None and max_atoms < 1:
        raise ValueError(
            f"max_atoms must be positive, got {max_atoms}"
        )
    if (
        min_atoms is not None
        and max_atoms is not None
        and max_atoms < min_atoms
    ):
        raise ValueError(
            f"max_atoms ({max_atoms}) must be >= min_atoms ({min_atoms})"
        )
    rng = as_generator(seed)
    lo = (
        min_atoms
        if min_atoms is not None
        else max(6, int(base.ligand_atoms * 0.6))
    )
    hi = (
        max_atoms
        if max_atoms is not None
        else min(199, max(lo + 1, int(base.ligand_atoms * 1.4)))
    )
    if hi < lo:
        raise ValueError(
            f"resolved atom bounds are empty: [{lo}, {hi}] "
            "(explicit bound conflicts with the derived default)"
        )
    entries: list[LibraryEntry] = []
    for k in range(n_ligands):
        n_atoms = int(rng.integers(lo, hi + 1))
        cfg = dataclasses.replace(
            base,
            ligand_atoms=n_atoms,
            rotatable_bonds=min(base.rotatable_bonds, max(0, n_atoms // 6)),
            seed=base.seed + 104729 * (k + 1) + seed,
        )
        lig = build_ligand(cfg)
        lig.name = f"LIG{k:05d}"
        entries.append(
            LibraryEntry(
                ligand=lig,
                compound_id=lig.name,
                n_atoms=lig.n_atoms,
                net_charge=float(lig.charges.sum()),
            )
        )
    return entries
