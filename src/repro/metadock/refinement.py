"""Pose refinement: deterministic local polishing of a found pose.

Search strategies (metaheuristics, MC, the RL agent) stop near optima;
production docking pipelines finish with a deterministic local
minimization.  :func:`refine_pose` runs adaptive pattern search
(coordinate descent with shrinking steps) over the pose's rigid degrees
of freedom -- gradient-free, monotone, and terminating at a tolerance,
so the refined score is never worse than the input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose


@dataclass(frozen=True)
class RefinementResult:
    """Refined pose with bookkeeping."""

    pose: Pose
    score: float
    initial_score: float
    evaluations: int
    iterations: int

    @property
    def improvement(self) -> float:
        """Score gain over the input pose (>= 0 by construction)."""
        return self.score - self.initial_score


def refine_pose(
    engine: MetadockEngine,
    pose: Pose,
    *,
    translation_step: float = 0.5,
    rotation_step: float = 0.1,
    torsion_step: float = 0.2,
    shrink: float = 0.5,
    tolerance: float = 0.01,
    max_iterations: int = 40,
) -> RefinementResult:
    """Adaptive pattern search around ``pose`` (higher score = better).

    Each iteration probes +-step moves along every translation axis,
    rotation axis and driven torsion, greedily accepting improvements;
    when a full sweep improves nothing, all steps shrink by ``shrink``.
    Terminates when the translation step drops below ``tolerance``
    angstrom or ``max_iterations`` sweeps elapse.
    """
    if not 0.0 < shrink < 1.0:
        raise ValueError("shrink must lie in (0, 1)")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    best = pose
    best_score = engine.score_pose(pose)
    initial = best_score
    evals = 1
    t_step, r_step, d_step = (
        float(translation_step),
        float(rotation_step),
        float(torsion_step),
    )
    iterations = 0
    n_torsions = len(pose.torsions)
    while t_step >= tolerance and iterations < max_iterations:
        iterations += 1
        improved = False
        # Translations.
        for axis in range(3):
            for sign in (1.0, -1.0):
                delta = np.zeros(3)
                delta[axis] = sign * t_step
                cand = best.translated(delta)
                s = engine.score_pose(cand)
                evals += 1
                if s > best_score:
                    best, best_score = cand, s
                    improved = True
        # Rotations.
        for axis in ("x", "y", "z"):
            for sign in (1.0, -1.0):
                cand = best.rotated(axis, sign * r_step)
                s = engine.score_pose(cand)
                evals += 1
                if s > best_score:
                    best, best_score = cand, s
                    improved = True
        # Torsions.
        for k in range(n_torsions):
            for sign in (1.0, -1.0):
                cand = best.twisted(k, sign * d_step)
                s = engine.score_pose(cand)
                evals += 1
                if s > best_score:
                    best, best_score = cand, s
                    improved = True
        if not improved:
            t_step *= shrink
            r_step *= shrink
            d_step *= shrink
    return RefinementResult(
        pose=best,
        score=best_score,
        initial_score=initial,
        evaluations=evals,
        iterations=iterations,
    )
