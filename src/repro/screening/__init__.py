"""Sharded, resumable, policy-capable virtual-screening service.

The service layer the ROADMAP's "virtual screening at scale" item asks
for: deterministic shard planning (:mod:`repro.screening.plan`), a
process-pool driver with per-worker receptor state and RuntimeContext
memoization (:mod:`repro.screening.driver`), and a trained-policy
scorer with batched Q-network inference
(:mod:`repro.screening.policy`).
"""

from repro.screening.driver import (
    DEFAULT_SHARD_SIZE,
    HITS_NAME,
    RANKING_NAME,
    ScreeningConfig,
    ScreeningResult,
    run_screening,
)
from repro.screening.plan import Shard, ShardPlan, plan_shards, ranking_key
from repro.screening.policy import (
    BatchedRolloutState,
    PolicyBundle,
    PolicyLoadError,
    RolloutResult,
    RolloutStats,
    greedy_rollout,
    load_policy,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "HITS_NAME",
    "RANKING_NAME",
    "BatchedRolloutState",
    "PolicyBundle",
    "PolicyLoadError",
    "RolloutResult",
    "RolloutStats",
    "Shard",
    "ShardPlan",
    "ScreeningConfig",
    "ScreeningResult",
    "greedy_rollout",
    "load_policy",
    "plan_shards",
    "ranking_key",
    "run_screening",
]
