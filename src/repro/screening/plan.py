"""Deterministic shard planning for the virtual-screening service.

A screening run is partitioned into contiguous shards of library
entries.  The per-ligand seeds are derived exactly as the serial
:func:`repro.metadock.screening.screen_library` derives them -- one
``RngFactory(seed).seeds("screening", n_ligands)`` draw over the *whole*
library, then sliced per shard -- so the work a ligand receives is a
pure function of ``(master seed, library index)``, independent of the
shard size, the worker count, and the completion order.  That is the
invariant that makes the sharded ranking bitwise identical to the
serial one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import RngFactory

#: Stream name used by the serial screener for per-ligand seeds; the
#: shard planner must draw from the identical stream.
SEED_STREAM = "screening"


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the library with its per-ligand seeds."""

    shard_id: int
    indices: tuple[int, ...]
    seeds: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardPlan:
    """The full, deterministic decomposition of one screening run."""

    n_ligands: int
    shard_size: int
    seed: int
    shards: tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)


def plan_shards(n_ligands: int, shard_size: int, seed: int = 0) -> ShardPlan:
    """Partition ``n_ligands`` into contiguous shards of ``shard_size``.

    Seeds come from the same stream (and the same single draw) the
    serial screener uses, so shard boundaries never change what any
    individual ligand computes.
    """
    if n_ligands < 0:
        raise ValueError("n_ligands must be non-negative")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    seeds = RngFactory(seed).seeds(SEED_STREAM, n_ligands)
    shards = tuple(
        Shard(
            shard_id=k,
            indices=tuple(range(start, min(start + shard_size, n_ligands))),
            seeds=tuple(seeds[start : start + shard_size]),
        )
        for k, start in enumerate(range(0, n_ligands, shard_size))
    )
    return ShardPlan(
        n_ligands=n_ligands,
        shard_size=shard_size,
        seed=seed,
        shards=shards,
    )


def ranking_key(hit_record: dict) -> tuple:
    """Sort key reproducing the serial ranking exactly.

    The serial screener stable-sorts library-ordered hits by score
    descending, so ties keep library order; sorting arbitrary-order
    records by ``(-best_score, library_index)`` yields the identical
    sequence.
    """
    return (-hit_record["best_score"], hit_record["library_index"])
