"""Trained-policy screening: checkpoint loading + batched greedy rollout.

The paper's deployment story is "reduce the computational cost once the
NN is already trained": a trained Q-network replaces the metaheuristic
search and docks by greedy rollout.  At screening scale the win comes
from *batching* -- one forward pass per step over the states of every
ligand in a shard, instead of one tiny matmul per ligand -- so the
Q-network inference amortizes exactly like
:func:`repro.scoring.composite.score_pose_batch` amortizes scoring.

Checkpoint flavours accepted by :func:`load_policy`:

- a run directory written via ``--log-dir`` (the newest
  ``checkpoints/*.npz`` runtime checkpoint is used and the manifest's
  recorded activation is honoured);
- a runtime :class:`~repro.runtime.checkpoint.Checkpoint` ``.npz``
  (``agent/q_net`` subtree);
- a bare :func:`repro.nn.checkpoints.save_network` ``.npz``
  (``p0``, ``p1``, ... keys).

The MLP architecture is reconstructed from the weight shapes alone
(:func:`repro.nn.checkpoints.mlp_from_arrays`), so no config object has
to travel with the weights.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union
from zipfile import BadZipFile

import numpy as np

from repro.nn.checkpoints import mlp_from_arrays
from repro.nn.network import MLP

PathLike = Union[str, Path]


class PolicyLoadError(ValueError):
    """``load_policy`` could not produce a usable Q-network."""


@dataclass(frozen=True)
class PolicyBundle:
    """A loaded Q-network as plain arrays (picklable across workers).

    Workers receive the bundle once via the pool initializer and build
    the actual :class:`~repro.nn.network.MLP` locally, so network
    objects never cross process boundaries.
    """

    arrays: Dict[str, np.ndarray]
    activation: str = "relu"
    source: str = ""
    #: Observation codec the network was trained under ("raw",
    #: "compact", or "descriptor"); drives how rollout states are
    #: assembled.  Compact-trained nets are full-width (the agent
    #: reconstructs full states before the forward pass), so "compact"
    #: batches exactly like "raw".
    observation_mode: str = "raw"

    @property
    def input_dim(self) -> int:
        """Expected state-vector length (first weight's fan-in)."""
        return int(self.arrays["p0"].shape[0])

    @property
    def n_actions(self) -> int:
        """Q-head width (last bias length)."""
        last = max(
            (int(k[1:]) for k in self.arrays if k[1:].isdigit()),
            default=0,
        )
        return int(self.arrays[f"p{last}"].shape[0])

    def build_network(self) -> MLP:
        """Materialize the MLP (validated shapes/dtypes)."""
        return mlp_from_arrays(
            self.arrays,
            activation=self.activation,
            source=self.source or "policy bundle",
        )


def _manifest_config(run_dir: Path) -> dict:
    """The recorded run config of a run dir's manifest, if any."""
    manifest = run_dir / "manifest.json"
    if not manifest.exists():
        return {}
    try:
        config = json.loads(manifest.read_text()).get("config") or {}
    except (OSError, ValueError):
        return {}
    return config if isinstance(config, dict) else {}


def _manifest_activation(run_dir: Path) -> str | None:
    """The recorded hidden-unit activation of a run dir, if any."""
    value = _manifest_config(run_dir).get("activation")
    return str(value) if value else None


def _manifest_observation_mode(run_dir: Path) -> str | None:
    """The recorded observation codec of a run dir, if any.

    Pre-PR-7 manifests carry no ``observation_mode``; their legacy
    ``compact_states`` flag maps to "compact".
    """
    config = _manifest_config(run_dir)
    value = config.get("observation_mode")
    if value:
        return str(value)
    if config.get("compact_states"):
        return "compact"
    return None


def _q_net_arrays(path: Path) -> Dict[str, np.ndarray]:
    """Extract ``p*`` weight arrays from either ``.npz`` flavour."""
    try:
        with np.load(path) as data:
            files = list(data.files)
            if "__meta__" in files:
                # Runtime checkpoint: arrays live at slash-joined tree
                # paths; the Q-network is the agent/q_net subtree.
                prefix = "agent/q_net/"
                arrays = {
                    k[len(prefix):]: np.array(data[k])
                    for k in files
                    if k.startswith(prefix)
                }
                if not arrays:
                    raise PolicyLoadError(
                        f"{path}: runtime checkpoint has no "
                        "agent/q_net arrays (not a DQN training "
                        "checkpoint?)"
                    )
                return arrays
            arrays = {
                k: np.array(data[k])
                for k in files
                if k.startswith("p") and k[1:].isdigit()
            }
            if not arrays:
                raise PolicyLoadError(
                    f"{path}: no p0/p1/... parameter arrays "
                    "(not a save_network archive?)"
                )
            return arrays
    except PolicyLoadError:
        raise
    except (OSError, ValueError, BadZipFile) as exc:
        raise PolicyLoadError(f"{path}: unreadable npz archive: {exc}")


def load_policy(
    path: PathLike,
    *,
    activation: str | None = None,
    observation_mode: str | None = None,
) -> PolicyBundle:
    """Load a trained Q-network from any supported checkpoint flavour.

    ``activation`` and ``observation_mode`` override auto-detection
    (run-dir manifests record both; bare weight archives default to the
    Table 1 ReLU over raw states).
    """
    target = Path(path)
    if target.is_dir():
        from repro.runtime.checkpoint import latest_checkpoint

        ckpt = latest_checkpoint(target / "checkpoints") or (
            latest_checkpoint(target)
        )
        if ckpt is None:
            raise PolicyLoadError(
                f"{target}: no .npz checkpoint found (looked in "
                f"{target / 'checkpoints'} and {target})"
            )
        if activation is None:
            activation = _manifest_activation(target)
        if observation_mode is None:
            observation_mode = _manifest_observation_mode(target)
        target = ckpt
    if not target.exists():
        raise PolicyLoadError(f"{target}: no such checkpoint")
    arrays = _q_net_arrays(target)
    return PolicyBundle(
        arrays=arrays,
        activation=activation or "relu",
        source=str(target),
        observation_mode=observation_mode or "raw",
    )


@dataclass(frozen=True)
class RolloutResult:
    """Outcome of one ligand's greedy rollout."""

    best_score: float
    evaluations: int
    steps: int
    termination: str


@dataclass(frozen=True)
class RolloutStats:
    """Batch-level counters of one :func:`greedy_rollout` call."""

    #: Batched Q-network forward passes executed.
    forward_passes: int
    #: Batched pose-scoring group calls executed (one per step with any
    #: active ligand, plus the initial-pose scoring pass).
    score_batch_calls: int


@dataclass
class BatchedRolloutState:
    """Structure-of-arrays working set of one lockstep rollout batch.

    One row / entry per ligand, index-aligned with the ``engines``
    sequence.  Keeping the per-ligand bookkeeping columnar lets the hot
    loop slice active rows (``batch[idx]`` for the forward pass) and
    update counters without touching Python-object state per ligand.
    """

    #: (n, input_dim) state rows in the network's parameter dtype;
    #: rows are re-encoded in place each step.
    batch: np.ndarray
    #: (n,) emitted state length per ligand (rows are right-padded).
    dims: np.ndarray
    #: (n,) best score seen so far.
    best: np.ndarray
    #: (n,) scorer evaluations consumed.
    evaluations: np.ndarray
    #: (n,) consecutive below-threshold score count.
    streak: np.ndarray
    #: (n,) bool: still stepping.
    active: np.ndarray
    #: (n,) actions applied so far.
    steps_taken: np.ndarray
    #: (n,) COM-distance escape radius.
    escape_radius: np.ndarray
    #: Per-ligand termination reason (mutated when a ligand stops).
    termination: List[str]
    #: Descriptor codecs (None for raw/compact state rows).
    codecs: list | None

    def results(self) -> List[RolloutResult]:
        """Freeze the per-ligand columns into :class:`RolloutResult`."""
        return [
            RolloutResult(
                best_score=float(self.best[i]),
                evaluations=int(self.evaluations[i]),
                steps=int(self.steps_taken[i]),
                termination=self.termination[i],
            )
            for i in range(self.batch.shape[0])
        ]


def _validated_dims(
    engines: Sequence, codecs, input_dim: int, n_actions: int
) -> list[int]:
    """Per-engine emitted state lengths, validated against the policy."""
    dims = []
    for i, eng in enumerate(engines):
        d = codecs[i].spec.dim if codecs is not None else eng.state_dim()
        if d > input_dim:
            raise PolicyLoadError(
                f"ligand state dim {d} exceeds the policy's input "
                f"dim {input_dim}; the checkpoint was trained on a "
                "smaller complex than this screen targets"
            )
        if eng.n_actions != n_actions:
            raise PolicyLoadError(
                f"engine exposes {eng.n_actions} actions but the "
                f"policy head is {n_actions}-wide"
            )
        dims.append(d)
    return dims


def _encode_row(state: BatchedRolloutState, engines: Sequence, i: int):
    """Re-encode ligand ``i``'s state row in place (no staging array)."""
    if state.codecs is not None:
        state.codecs[i].encode_into(state.batch[i])
    else:
        engines[i].state_into(state.batch[i])


def _score_active(engines: Sequence, idx: np.ndarray) -> np.ndarray:
    """Current-pose scores of ``engines[idx]`` via one grouped call.

    Engines whose scorers share receptor-side state (field scorers over
    one :class:`~repro.scoring.field.FieldMaps`) are fused into one
    batched kernel invocation by
    :func:`repro.scoring.scorers.score_pose_group`; every other scorer
    is evaluated through its own single-pose path, so each entry is
    bitwise what ``engines[i].score()`` would have produced.
    """
    from repro.scoring.scorers import score_pose_group

    return score_pose_group(
        [(engines[i].scorer, engines[i].ligand_coords()) for i in idx]
    )


def greedy_rollout(
    network: MLP,
    engines: Sequence,
    *,
    max_steps: int = 120,
    escape_factor: float = 4.0 / 3.0,
    low_score_patience: int = 20,
    low_score_threshold: float = -100000.0,
    observation_mode: str = "raw",
) -> tuple[List[RolloutResult], RolloutStats]:
    """Greedy-dock many ligands in lockstep with batched Q inference.

    Every step assembles one ``(n_active, input_dim)`` state batch and
    runs **one** forward pass; each row's argmax action is applied to
    its engine, and the resulting poses of every active ligand are then
    scored through **one** grouped scoring call (:func:`_score_active`)
    rather than one ``scorer.score`` per ligand.  Ligands whose state
    vector is shorter than the network's input (smaller library
    compounds) are zero-padded on the right -- the padded tail is
    constant, so the rollout stays a deterministic function of
    (weights, engine).  Per-ligand termination mirrors
    :class:`repro.env.docking_env.DockingEnv`: escape beyond
    ``escape_factor`` x the initial COM distance, or
    ``low_score_patience`` consecutive scores below
    ``low_score_threshold``.

    ``observation_mode`` must match the codec the policy was trained
    under: "descriptor" assembles pocket-relative feature rows via
    :func:`repro.env.observation.make_codec`; "raw" and "compact" both
    use full paper-shaped state rows (compact-trained nets reconstruct
    full states during training, so their input layer is full-width).

    Results are bit-identical to the sequential per-ligand reference
    loop (kept as ``_greedy_rollout_loop`` and pinned by tests): state
    rows, scores, and termination decisions all reproduce the same
    floats.  Returns the per-ligand results (input order) and the
    batch-level :class:`RolloutStats`.
    """
    params = network.params()
    input_dim = int(params[0].shape[0])
    n_actions = int(params[-1].shape[0])
    dtype = params[0].dtype
    n = len(engines)
    if n == 0:
        return [], RolloutStats(forward_passes=0, score_batch_calls=0)
    codecs = None
    if observation_mode == "descriptor":
        from repro.env.observation import make_codec

        codecs = [make_codec("descriptor", eng) for eng in engines]
    dims = _validated_dims(engines, codecs, input_dim, n_actions)
    state = BatchedRolloutState(
        batch=np.zeros((n, input_dim), dtype=dtype),
        dims=np.asarray(dims, dtype=np.int64),
        best=np.empty(n),
        evaluations=np.zeros(n, dtype=np.int64),
        streak=np.zeros(n, dtype=np.int64),
        active=np.ones(n, dtype=bool),
        steps_taken=np.zeros(n, dtype=np.int64),
        escape_radius=np.empty(n),
        termination=["max_steps"] * n,
        codecs=codecs,
    )
    for i, eng in enumerate(engines):
        eng.reset(observe=False)
        state.escape_radius[i] = escape_factor * eng.initial_com_distance()
        _encode_row(state, engines, i)
    idx = np.arange(n)
    scores = _score_active(engines, idx)
    score_batch_calls = 1
    for i, eng in enumerate(engines):
        eng.set_external_score(scores[i])
        state.best[i] = scores[i]
        state.evaluations[i] += 1
    forward_passes = 0
    for _step in range(max_steps):
        idx = np.flatnonzero(state.active)
        if idx.size == 0:
            break
        q = network.predict(state.batch[idx])
        forward_passes += 1
        # Row-wise argmax: ties resolve to the lowest action index,
        # matching DQNAgent.greedy_action.
        actions = np.argmax(q, axis=1)
        for row, i in enumerate(idx):
            engines[i].apply_action(int(actions[row]))
        scores = _score_active(engines, idx)
        score_batch_calls += 1
        for row, i in enumerate(idx):
            eng = engines[i]
            score = float(scores[row])
            eng.set_external_score(score)
            state.evaluations[i] += 1
            state.steps_taken[i] += 1
            if score > state.best[i]:
                state.best[i] = score
            if score < low_score_threshold:
                state.streak[i] += 1
            else:
                state.streak[i] = 0
            if eng.com_distance() > state.escape_radius[i]:
                state.active[i] = False
                state.termination[i] = "escape"
            elif state.streak[i] >= low_score_patience:
                state.active[i] = False
                state.termination[i] = "deep_penetration"
            else:
                _encode_row(state, engines, i)
    return state.results(), RolloutStats(
        forward_passes=forward_passes,
        score_batch_calls=score_batch_calls,
    )


def _greedy_rollout_loop(
    network: MLP,
    engines: Sequence,
    *,
    max_steps: int = 120,
    escape_factor: float = 4.0 / 3.0,
    low_score_patience: int = 20,
    low_score_threshold: float = -100000.0,
    observation_mode: str = "raw",
) -> tuple[List[RolloutResult], int]:
    """The pre-batching per-ligand rollout loop, kept verbatim.

    Reference implementation for the bit-equality pins on
    :func:`greedy_rollout` (tests and the screening bench): scores each
    ligand through its engine's single-pose ``score()`` and re-encodes
    rows via the staging-array codec path.  Returns the per-ligand
    results and the number of forward passes.
    """
    params = network.params()
    input_dim = int(params[0].shape[0])
    n_actions = int(params[-1].shape[0])
    dtype = params[0].dtype
    n = len(engines)
    if n == 0:
        return [], 0
    codecs = None
    if observation_mode == "descriptor":
        from repro.env.observation import make_codec

        codecs = [make_codec("descriptor", eng) for eng in engines]
    dims = _validated_dims(engines, codecs, input_dim, n_actions)
    batch = np.zeros((n, input_dim), dtype=dtype)
    best = np.empty(n)
    evaluations = np.zeros(n, dtype=np.int64)
    streak = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    steps_taken = np.zeros(n, dtype=np.int64)
    termination = ["max_steps"] * n
    escape_radius = np.empty(n)
    for i, eng in enumerate(engines):
        eng.reset(observe=False)
        escape_radius[i] = escape_factor * eng.initial_com_distance()
        batch[i, : dims[i]] = (
            codecs[i].encode() if codecs is not None else eng.state_vector()
        )
        best[i] = eng.score()
        evaluations[i] += 1
    forward_passes = 0
    for _step in range(max_steps):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        q = network.predict(batch[idx])
        forward_passes += 1
        # Row-wise argmax: ties resolve to the lowest action index,
        # matching DQNAgent.greedy_action.
        actions = np.argmax(q, axis=1)
        for row, i in enumerate(idx):
            eng = engines[i]
            eng.apply_action(int(actions[row]))
            score = eng.score()
            evaluations[i] += 1
            steps_taken[i] += 1
            if score > best[i]:
                best[i] = score
            if score < low_score_threshold:
                streak[i] += 1
            else:
                streak[i] = 0
            if eng.com_distance() > escape_radius[i]:
                active[i] = False
                termination[i] = "escape"
            elif streak[i] >= low_score_patience:
                active[i] = False
                termination[i] = "deep_penetration"
            else:
                batch[i, : dims[i]] = (
                    codecs[i].encode()
                    if codecs is not None
                    else eng.state_vector()
                )
    return (
        [
            RolloutResult(
                best_score=float(best[i]),
                evaluations=int(evaluations[i]),
                steps=int(steps_taken[i]),
                termination=termination[i],
            )
            for i in range(n)
        ],
        forward_passes,
    )
