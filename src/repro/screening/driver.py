"""Sharded, resumable virtual-screening driver.

The service layer over :mod:`repro.metadock.screening`: a ligand
library is planned into deterministic shards (:mod:`repro.screening.
plan`), shards fan out across worker processes that each receive the
receptor complex **once** via the pool initializer (the
:mod:`repro.metadock.parallel` pattern), and per-shard results stream
into the run directory as they land:

- ``hits.jsonl`` -- one fsynced JSON line per screened ligand;
- ``screen_ranking.json`` -- the final atomic ranking artefact;
- telemetry events (``screen_start`` / ``shard`` / ``screen_end``),
  counters (``screening/ligands``, ``screening/shards_done``) and the
  ``screening/ligands_per_min`` gauge.

Receptor-side scorer state is built once per worker and shared across
every ligand that worker screens: the receptor
:class:`~repro.scoring.neighborlist.CellList` feeds all cutoff /
incremental scorers through their ``cells=`` parameter, so a
3k-atom-receptor screen bins the receptor ``workers`` times, not
``n_ligands`` times.  "grid" shares one
:class:`~repro.scoring.grid.PotentialGrid` and "field" one
:class:`~repro.scoring.field.FieldMaps` bundle the same way (field
maps additionally grow lazily across ligands with new atom types).

Resumability: with a :class:`~repro.runtime.loop.RuntimeContext`
attached, every completed shard is memoized in ``results.json`` under a
key that fingerprints the screening parameters.  ``repro resume`` on an
interrupted screen therefore skips finished shards and -- because
per-ligand seeds are a pure function of (master seed, library index)
and JSON round-trips floats exactly -- reproduces the uninterrupted
ranking bit-for-bit.

Determinism contract: metaheuristic / montecarlo rankings are bitwise
invariant to ``workers`` *and* ``shard_size`` (ligands are independent
searches).  Policy-mode rankings are bitwise invariant to ``workers``
and to interruption, but pinned per ``shard_size`` (the shard is the
inference batch; see docs/SCREENING.md).
"""

from __future__ import annotations

import dataclasses
import json
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.chem.builders import BuiltComplex
from repro.constants import DEFAULT_CUTOFF
from repro.metadock.library import LibraryEntry
from repro.metadock.screening import ScreeningHit, _engine_for, screen_ligand
from repro.metadock.strategies import STRATEGY_PRESETS
from repro.runtime.loop import RunInterrupted, RuntimeContext
from repro.screening.plan import ShardPlan, plan_shards, ranking_key
from repro.screening.policy import PolicyBundle, greedy_rollout, load_policy
from repro.scoring.neighborlist import CellList
from repro.telemetry.sinks import JsonlEventSink
from repro.utils.serialization import atomic_write
from repro.utils.tables import render_table

#: Runtime phase name (checkpoint memo namespace + interrupt label).
PHASE = "screen"

#: Default ligands per shard (the policy-inference batch size).
DEFAULT_SHARD_SIZE = 8

#: Streamed per-ligand results, one fsynced JSON line each.
HITS_NAME = "hits.jsonl"

#: Final atomic ranking artefact (what CI compares for bit-equality).
RANKING_NAME = "screen_ranking.json"


def _valid_strategies() -> list[str]:
    return sorted(STRATEGY_PRESETS) + ["montecarlo", "policy"]


@dataclass(frozen=True)
class ScreeningConfig:
    """Everything that defines one screening run.

    Picklable: workers receive the whole config once via the pool
    initializer.
    """

    strategy: str = "scatter"
    budget: int = 400
    seed: int = 0
    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    top_k: Optional[int] = None
    scoring_method: str = "exact"
    scoring_kwargs: dict = field(default_factory=dict)
    policy_path: Optional[str] = None
    policy_max_steps: int = 120

    def __post_init__(self) -> None:
        if self.strategy not in _valid_strategies():
            raise ValueError(
                f"unknown strategy {self.strategy!r}; options: "
                f"{_valid_strategies()}"
            )
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.policy_max_steps < 1:
            raise ValueError("policy_max_steps must be >= 1")
        if self.strategy == "policy" and not self.policy_path:
            raise ValueError(
                "strategy 'policy' requires policy_path "
                "(a trained checkpoint; see docs/SCREENING.md)"
            )
        from repro.scoring.scorers import validate_scoring_kwargs

        validate_scoring_kwargs(self.scoring_method, self.scoring_kwargs)

    def fingerprint(self, n_ligands: int) -> str:
        """Short stable hash of every ranking-relevant parameter.

        Memo keys embed it so a results.json written under different
        screening parameters can never satisfy this run's shards.
        """
        blob = json.dumps(
            {
                "strategy": self.strategy,
                "budget": self.budget,
                "seed": self.seed,
                "shard_size": self.shard_size,
                "scoring_method": self.scoring_method,
                "scoring_kwargs": self.scoring_kwargs,
                "policy_path": self.policy_path,
                "policy_max_steps": self.policy_max_steps,
                "n_ligands": n_ligands,
            },
            sort_keys=True,
        )
        return f"{zlib.crc32(blob.encode()):08x}"


@dataclass
class ScreeningResult:
    """Ranked screening outcome plus run statistics."""

    hits: List[ScreeningHit]
    ranking: List[dict]
    n_ligands: int
    n_shards: int
    shards_cached: int
    workers: int
    shard_size: int
    strategy: str
    wall_seconds: float
    ligands_per_min: float
    #: Batched Q-network forward passes across all policy-mode shards
    #: (0 for search strategies and for pre-batching cached payloads).
    policy_forward_passes: int = 0
    #: Batched pose-scoring group calls across all policy-mode shards.
    score_batch_calls: int = 0

    def summary(self) -> str:
        rows = [
            (k + 1, h.compound_id, h.n_atoms, f"{h.best_score:.2f}")
            for k, h in enumerate(self.hits)
        ]
        table = render_table(
            ["rank", "compound", "atoms", "best score"],
            rows,
            title=f"Virtual screening ({self.strategy})",
            align=["r", "l", "r", "r"],
        )
        return table + (
            f"\n\n{self.n_ligands} ligands in {self.n_shards} shards "
            f"({self.shards_cached} from cache), "
            f"workers={self.workers}, shard_size={self.shard_size}: "
            f"{self.ligands_per_min:.1f} ligands/min "
            f"({self.wall_seconds:.2f}s wall)"
        )


# -- worker side -----------------------------------------------------------
# Module-level state installed once per worker by the pool initializer
# (also used in-process for workers=1): the complex and library are
# serialized per *worker*, never per shard, and receptor-side scorer
# structures (cell list, policy network) are built lazily once and
# reused across every shard the worker screens.
_WORKER: dict | None = None


def _init_worker(
    built: BuiltComplex,
    entries: List[LibraryEntry],
    config: ScreeningConfig,
    policy: Optional[PolicyBundle],
) -> None:
    global _WORKER
    _WORKER = {
        "built": built,
        "entries": entries,
        "config": config,
        "policy": policy,
        "cells": None,
        "cells_built": False,
        "network": None,
    }


def _receptor_cells(config: ScreeningConfig, receptor):
    """The shared receptor-side cache for cell/grid scoring methods.

    A :class:`CellList` for "cutoff"/"incremental" (bin sizes match
    what each scorer would build for itself, so sharing changes nothing
    about pair membership or ordering), a prebuilt
    :class:`~repro.scoring.grid.PotentialGrid` for "grid" (the grid
    depends only on the receptor, so one build serves every ligand the
    worker screens), or a :class:`~repro.scoring.field.FieldMaps` bundle
    for "field" (maps grow lazily per distinct ligand atom type; library
    ligands share the element palette, so most builds are no-ops after
    the first ligand) -- results stay bit-identical to per-ligand
    construction either way.
    """
    kwargs = config.scoring_kwargs or {}
    if config.scoring_method == "cutoff":
        cutoff = float(kwargs.get("cutoff", DEFAULT_CUTOFF))
        size = kwargs.get("cell_size") or cutoff / 2.0
    elif config.scoring_method == "incremental":
        from repro.scoring.incremental import DEFAULT_SKIN

        cutoff = float(kwargs.get("cutoff", DEFAULT_CUTOFF))
        skin = float(kwargs.get("skin", DEFAULT_SKIN))
        size = kwargs.get("cell_size") or (cutoff + skin) / 2.0
    elif config.scoring_method == "grid":
        from repro.scoring.grid import PotentialGrid

        return PotentialGrid(
            receptor,
            spacing=float(kwargs.get("spacing", 1.0)),
            padding=float(kwargs.get("padding", 6.0)),
        )
    elif config.scoring_method == "field":
        from repro.scoring.field import (
            DEFAULT_CLASH_RADIUS,
            DEFAULT_DTYPE,
            DEFAULT_PADDING,
            DEFAULT_SPACING,
            FieldMaps,
        )

        return FieldMaps(
            receptor,
            spacing=float(kwargs.get("spacing", DEFAULT_SPACING)),
            padding=float(kwargs.get("padding", DEFAULT_PADDING)),
            clash_radius=float(
                kwargs.get("clash_radius", DEFAULT_CLASH_RADIUS)
            ),
            dtype=str(kwargs.get("dtype", DEFAULT_DTYPE)),
        )
    else:
        return None
    return CellList(receptor.coords, cell_size=float(size))


def _worker_scoring_kwargs(worker: dict) -> dict:
    """Per-engine scoring kwargs with the worker's shared cell list."""
    config: ScreeningConfig = worker["config"]
    if not worker["cells_built"]:
        worker["cells"] = _receptor_cells(
            config, worker["built"].receptor
        )
        worker["cells_built"] = True
    kwargs = dict(config.scoring_kwargs)
    if worker["cells"] is not None:
        kwargs["cells"] = worker["cells"]
    return kwargs


def _run_shard(task: tuple) -> dict:
    """Screen one shard inside the (or this) process; returns a JSON-
    safe payload so results memoize into ``results.json`` directly."""
    if _WORKER is None:
        raise RuntimeError("screening worker not initialized")
    shard_id, indices, seeds = task
    worker = _WORKER
    config: ScreeningConfig = worker["config"]
    built: BuiltComplex = worker["built"]
    entries: List[LibraryEntry] = worker["entries"]
    t0 = time.perf_counter()
    scoring_kwargs = _worker_scoring_kwargs(worker)
    hits: list[dict] = []
    forward_passes = 0
    score_batch_calls = 0
    if config.strategy == "policy":
        if worker["network"] is None:
            worker["network"] = worker["policy"].build_network()
        engines = [
            _engine_for(
                built,
                entries[i].ligand,
                scoring_method=config.scoring_method,
                scoring_kwargs=scoring_kwargs,
            )
            for i in indices
        ]
        results, stats = greedy_rollout(
            worker["network"],
            engines,
            max_steps=config.policy_max_steps,
            observation_mode=getattr(
                worker["policy"], "observation_mode", "raw"
            ),
        )
        forward_passes = stats.forward_passes
        score_batch_calls = stats.score_batch_calls
        for i, res in zip(indices, results):
            hits.append(
                {
                    "library_index": int(i),
                    "compound_id": entries[i].compound_id,
                    "best_score": res.best_score,
                    "evaluations": res.evaluations,
                    "n_atoms": entries[i].n_atoms,
                }
            )
    else:
        for i, seed in zip(indices, seeds):
            hit = screen_ligand(
                built,
                entries[i],
                strategy=config.strategy,
                budget=config.budget,
                seed=seed,
                scoring_method=config.scoring_method,
                scoring_kwargs=scoring_kwargs,
            )
            hits.append(
                {"library_index": int(i), **dataclasses.asdict(hit)}
            )
    return {
        "shard_id": int(shard_id),
        "hits": hits,
        "seconds": time.perf_counter() - t0,
        "forward_passes": int(forward_passes),
        "score_batch_calls": int(score_batch_calls),
    }


# -- driver side -----------------------------------------------------------
def run_screening(
    built: BuiltComplex,
    library: List[LibraryEntry],
    config: ScreeningConfig,
    *,
    telemetry=None,
    runtime: Optional[RuntimeContext] = None,
) -> ScreeningResult:
    """Screen ``library`` against ``built`` per ``config``.

    ``workers=1`` runs every shard in-process (semantics and ranking
    bitwise identical to the legacy serial ``screen_library``);
    ``workers>=2`` fans pending shards over a process pool.  With a
    ``runtime``, completed shards memoize and an interrupt surfaces as
    :class:`~repro.runtime.loop.RunInterrupted` at a shard boundary.
    """
    plan = plan_shards(len(library), config.shard_size, config.seed)
    fingerprint = config.fingerprint(len(library))
    policy = (
        load_policy(config.policy_path)
        if config.strategy == "policy"
        else None
    )
    run_dir: Optional[Path] = None
    if runtime is not None:
        run_dir = Path(runtime.dir)
    elif telemetry is not None:
        run_dir = Path(telemetry.dir)

    def memo_key(shard_id: int) -> str:
        return f"screen/{fingerprint}/shard-{shard_id:05d}"

    cached_ids = (
        {
            shard.shard_id
            for shard in plan
            if runtime.has_result(memo_key(shard.shard_id))
        }
        if runtime is not None
        else set()
    )
    registry = telemetry.registry if telemetry is not None else None
    tracer = telemetry.tracer if telemetry is not None else None
    if telemetry is not None:
        telemetry.emit(
            "screen_start",
            ligands=plan.n_ligands,
            shards=len(plan),
            cached_shards=len(cached_ids),
            workers=config.workers,
            shard_size=config.shard_size,
            strategy=config.strategy,
            scoring_method=config.scoring_method,
        )
        telemetry.flush()
    if registry is not None:
        registry.set("screening/shards_total", float(len(plan)))

    hits_sink = (
        JsonlEventSink(run_dir / HITS_NAME, buffer_size=1)
        if run_dir is not None
        else None
    )
    payloads: dict[int, dict] = {}
    t0 = time.perf_counter()

    def note_shard(payload: dict, *, cached: bool) -> None:
        payloads[payload["shard_id"]] = payload
        if not cached and hits_sink is not None:
            for hit in payload["hits"]:
                hits_sink.emit(
                    {"shard": payload["shard_id"], **hit}
                )
        done = sum(len(p["hits"]) for p in payloads.values())
        elapsed = max(time.perf_counter() - t0, 1e-9)
        per_min = done / elapsed * 60.0
        if registry is not None:
            registry.inc("screening/shards_done")
            if not cached:
                registry.inc(
                    "screening/ligands", len(payload["hits"])
                )
            registry.set("screening/ligands_per_min", per_min)
        if telemetry is not None:
            telemetry.emit(
                "shard",
                shard=payload["shard_id"],
                ligands=len(payload["hits"]),
                seconds=round(float(payload["seconds"]), 6),
                cached=cached,
                ligands_per_min=round(per_min, 3),
            )
            telemetry.flush()

    def span(name: str):
        return tracer.span(name) if tracer is not None else nullcontext()

    try:
        with span("screen"):
            for shard in plan:
                if shard.shard_id in cached_ids:
                    payload = runtime.cached(
                        memo_key(shard.shard_id), lambda: None
                    )
                    note_shard(payload, cached=True)
            pending = [
                shard
                for shard in plan
                if shard.shard_id not in cached_ids
            ]
            if pending and config.workers <= 1:
                _init_worker(built, library, config, policy)
                for shard in pending:
                    if runtime is not None:
                        runtime.check_interrupt(PHASE)
                    with span("shard"):
                        payload = _run_shard(
                            (shard.shard_id, shard.indices, shard.seeds)
                        )
                    if runtime is not None:
                        runtime.cached(
                            memo_key(shard.shard_id),
                            lambda p=payload: p,
                        )
                    note_shard(payload, cached=False)
            elif pending:
                if runtime is not None:
                    runtime.check_interrupt(PHASE)
                with ProcessPoolExecutor(
                    max_workers=min(config.workers, len(pending)),
                    initializer=_init_worker,
                    initargs=(built, library, config, policy),
                ) as pool:
                    futures = [
                        (
                            shard,
                            pool.submit(
                                _run_shard,
                                (
                                    shard.shard_id,
                                    shard.indices,
                                    shard.seeds,
                                ),
                            ),
                        )
                        for shard in pending
                    ]
                    try:
                        for shard, future in futures:
                            if (
                                runtime is not None
                                and runtime.stop_requested
                            ):
                                raise RunInterrupted(PHASE)
                            with span("shard"):
                                payload = future.result()
                            if runtime is not None:
                                runtime.cached(
                                    memo_key(shard.shard_id),
                                    lambda p=payload: p,
                                )
                            note_shard(payload, cached=False)
                    except BaseException:
                        for _, future in futures:
                            future.cancel()
                        raise
    finally:
        if hits_sink is not None:
            hits_sink.close()

    all_hits = [
        hit
        for shard_id in sorted(payloads)
        for hit in payloads[shard_id]["hits"]
    ]
    ranked = sorted(all_hits, key=ranking_key)
    ranking = [
        {"rank": position + 1, **hit}
        for position, hit in enumerate(ranked)
    ]
    wall = time.perf_counter() - t0
    per_min = plan.n_ligands / max(wall, 1e-9) * 60.0
    # .get(): payloads memoized by pre-batching runs lack the counters.
    total_forward = sum(
        int(p.get("forward_passes", 0)) for p in payloads.values()
    )
    total_score_batches = sum(
        int(p.get("score_batch_calls", 0)) for p in payloads.values()
    )
    if run_dir is not None:
        document = {
            "strategy": config.strategy,
            "scoring_method": config.scoring_method,
            "seed": config.seed,
            "budget": config.budget,
            "shard_size": config.shard_size,
            "workers": config.workers,
            "n_ligands": plan.n_ligands,
            "fingerprint": fingerprint,
            "hits": ranking,
        }
        atomic_write(
            run_dir / RANKING_NAME,
            json.dumps(document, indent=2) + "\n",
        )
    if telemetry is not None:
        telemetry.emit(
            "screen_end",
            ligands=plan.n_ligands,
            shards=len(plan),
            cached_shards=len(cached_ids),
            wall_seconds=round(wall, 6),
            ligands_per_min=round(per_min, 3),
            policy_forward_passes=total_forward,
            score_batch_calls=total_score_batches,
        )
        telemetry.flush()
    hit_objects = [
        ScreeningHit(
            compound_id=str(hit["compound_id"]),
            best_score=float(hit["best_score"]),
            evaluations=int(hit["evaluations"]),
            n_atoms=int(hit["n_atoms"]),
        )
        for hit in ranked
    ]
    if config.top_k is not None:
        hit_objects = hit_objects[: config.top_k]
    return ScreeningResult(
        hits=hit_objects,
        ranking=ranking,
        n_ligands=plan.n_ligands,
        n_shards=len(plan),
        shards_cached=len(cached_ids),
        workers=config.workers,
        shard_size=config.shard_size,
        strategy=config.strategy,
        wall_seconds=wall,
        ligands_per_min=per_min,
        policy_forward_passes=total_forward,
        score_batch_calls=total_score_batches,
    )
