"""The run-lifecycle layer: checkpointed training loops for every driver.

:class:`RuntimeContext` owns one run directory's durable state -- the
``checkpoints/`` folder (one rolling ``.npz`` per training phase), the
``results.json`` memo of non-RL work (metaheuristic baselines, policy
evaluations), and the optional :class:`~repro.runtime.signals.ShutdownGuard`
/ :class:`~repro.telemetry.run.TelemetryRun` wiring.

:class:`RunLoop` hosts both trainer flavours under that context:

- :meth:`RunLoop.run_episodes` drives a
  :class:`~repro.rl.trainer.Trainer`, checkpointing at episode
  boundaries.  ``env.reset()`` is deterministic, so a restored run
  replays the exact trajectory an uninterrupted one would have -- the
  resume is bit-for-bit.
- :meth:`RunLoop.run_steps` drives a
  :class:`~repro.rl.vector_trainer.VectorTrainer` in fixed segments of
  ``checkpoint_every`` environment steps.  The venv resets and n-step
  windows flush at every segment boundary *whether or not* a checkpoint
  interrupts there, so segmented-and-resumed equals segmented-and-not.

Experiment drivers pass ``runtime=None`` to keep the classic
zero-overhead path: the loop then simply calls ``trainer.run()``.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.runtime.checkpoint import Checkpoint
from repro.runtime.signals import ShutdownGuard
from repro.utils.serialization import (
    _from_jsonable,
    _to_jsonable,
    dump_json,
    load_json,
)

PathLike = Union[str, Path]

#: Subdirectory of a run dir holding per-phase checkpoints.
CHECKPOINT_DIR_NAME = "checkpoints"

#: File memoizing completed non-RL work units (JSON, atomic writes).
RESULTS_NAME = "results.json"


class RunInterrupted(RuntimeError):
    """A shutdown signal stopped the run at a safe boundary.

    The checkpoint named by ``checkpoint_path`` holds the full state at
    the boundary; ``repro resume <run-dir>`` continues from it.
    """

    def __init__(self, phase: str, checkpoint_path: Optional[Path] = None):
        self.phase = phase
        self.checkpoint_path = checkpoint_path
        where = f" (checkpoint: {checkpoint_path})" if checkpoint_path else ""
        super().__init__(f"run interrupted during phase {phase!r}{where}")


def _phase_slug(phase: str) -> str:
    """File-system-safe checkpoint stem for a phase name."""
    safe = "".join(
        c if (c.isalnum() or c in "-_.") else "-" for c in str(phase)
    )
    return safe.strip("-.") or "phase"


class RuntimeContext:
    """Durable run state: checkpoints, result memos, shutdown, telemetry.

    Parameters
    ----------
    run_dir:
        Directory owning the run's artefacts (usually the telemetry
        ``--log-dir``); created on first checkpoint write.
    checkpoint_every:
        Cadence of mid-run snapshots -- episodes for
        :meth:`RunLoop.run_episodes`, environment steps for
        :meth:`RunLoop.run_steps`.  0 disables cadence snapshots;
        phase-completion and shutdown snapshots are always written.
    guard:
        A :class:`~repro.runtime.signals.ShutdownGuard`; the loops poll
        it at safe boundaries.
    telemetry:
        A :class:`~repro.telemetry.run.TelemetryRun`; checkpoint events
        land in its event log and its counters/gauges ride along in
        every snapshot.
    """

    def __init__(
        self,
        run_dir: PathLike,
        *,
        checkpoint_every: int = 0,
        guard: Optional[ShutdownGuard] = None,
        telemetry=None,
    ):
        self.dir = Path(run_dir)
        self.checkpoint_dir = self.dir / CHECKPOINT_DIR_NAME
        self.checkpoint_every = max(0, int(checkpoint_every))
        self.guard = guard
        self.telemetry = telemetry
        self._results_path = self.dir / RESULTS_NAME
        self._results: dict = (
            load_json(self._results_path)
            if self._results_path.exists()
            else {}
        )

    # -- shutdown ----------------------------------------------------------
    @property
    def stop_requested(self) -> bool:
        """True once the guard latched a termination signal."""
        return self.guard is not None and self.guard.stop_requested

    def check_interrupt(self, phase: str) -> None:
        """Raise :class:`RunInterrupted` if a stop is pending.

        Drivers call this between non-RL work units so a signal during
        e.g. a metaheuristic baseline still exits at a resumable point.
        """
        if self.stop_requested:
            raise RunInterrupted(phase)

    # -- checkpoints -------------------------------------------------------
    def checkpoint_path(self, phase: str) -> Path:
        """Where ``phase``'s rolling checkpoint lives."""
        return self.checkpoint_dir / f"{_phase_slug(phase)}.npz"

    def load_checkpoint(self, phase: str) -> Optional[Checkpoint]:
        """The existing snapshot of ``phase``, or None."""
        path = self.checkpoint_path(phase)
        if not path.exists():
            return None
        return Checkpoint.load(path)

    def save_checkpoint(
        self, phase: str, state: dict, meta: dict
    ) -> Path:
        """Atomically (over)write ``phase``'s snapshot."""
        path = self.checkpoint_path(phase)
        meta = {"phase": phase, **meta}
        Checkpoint(state=state, meta=meta).write(path)
        if self.telemetry is not None:
            self.telemetry.emit(
                "checkpoint",
                phase=phase,
                path=path.name,
                complete=bool(meta.get("complete", False)),
                global_step=meta.get("global_step"),
            )
            self.telemetry.flush()
        return path

    # -- result memos ------------------------------------------------------
    def has_result(self, key: str) -> bool:
        """True if ``key`` is already memoized in ``results.json``.

        Lets drivers (e.g. the sharded screener) partition work into
        cached and pending units up front without triggering computes.
        """
        return key in self._results

    def cached(
        self,
        key: str,
        compute: Callable[[], Any],
        *,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> Any:
        """Return the memoized result for ``key`` or compute and store it.

        Results persist in ``results.json`` (atomic writes), so a
        resumed run skips every already-finished unit.  Cache hits come
        back as plain JSON trees; pass ``decode`` to rebuild the
        original dataclass.
        """
        if key in self._results:
            value = self._results[key]
            return decode(value) if decode is not None else value
        value = compute()
        self._results[key] = _to_jsonable(value)
        dump_json(self._results, self._results_path)
        return value


def memoized(
    runtime: Optional[RuntimeContext],
    key: str,
    compute: Callable[[], Any],
    *,
    decode: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """``runtime.cached`` when a runtime is attached, else just compute."""
    if runtime is None:
        return compute()
    return runtime.cached(key, compute, decode=decode)


def _history_to_meta(history) -> Any:
    return _to_jsonable(history)


def _history_from_meta(data):
    from repro.rl.trainer import EpisodeStats, TrainingHistory

    raw = _from_jsonable(data)
    return TrainingHistory(
        episodes=[EpisodeStats(**ep) for ep in raw["episodes"]],
        total_steps=raw["total_steps"],
        wall_seconds=raw["wall_seconds"],
        timer_report=raw.get("timer_report", ""),
    )


def _merge_vector_stats(agg: Optional[dict], seg) -> dict:
    """Fold one segment's :class:`VectorRunStats` into the aggregate."""
    s = dataclasses.asdict(seg)
    if agg is None:
        return s
    seg_best = s["best_score"]
    agg_best = agg["best_score"]
    best = (
        seg_best
        if not _isfinite(agg_best)
        else (agg_best if not _isfinite(seg_best) else max(agg_best, seg_best))
    )
    prev_steps = agg["total_steps"]
    seg_steps = s["total_steps"] - prev_steps
    total = s["total_steps"]
    wall = agg["wall_seconds"] + s["wall_seconds"]
    mean_reward = (
        agg["mean_reward"] * prev_steps + s["mean_reward"] * seg_steps
    ) / max(total, 1)
    return {
        "total_steps": total,
        "episodes_completed": agg["episodes_completed"]
        + s["episodes_completed"],
        "best_score": best,
        "mean_reward": mean_reward,
        "wall_seconds": wall,
        "steps_per_second": total / max(wall, 1e-9),
        "timer_report": s["timer_report"],
        "worker_restarts": agg["worker_restarts"] + s["worker_restarts"],
    }


def _isfinite(x) -> bool:
    return isinstance(x, (int, float)) and math.isfinite(x)


def _check_observation(meta: dict, spec) -> None:
    """Refuse to restore a checkpoint written under a different codec.

    A raw-trained Q-network cannot consume descriptor states (and vice
    versa), so codec identity is validated *before* ``_restore``
    mutates the agent.  Pre-PR-7 checkpoints carry no "observation"
    key and spec-less custom envs advertise none -- both skip the
    check for backward compatibility.
    """
    recorded = meta.get("observation")
    if recorded is None or spec is None:
        return
    current = spec.as_dict()
    if recorded != current:
        from repro.nn.checkpoints import CheckpointMismatchError

        raise CheckpointMismatchError(
            "checkpoint was written under observation spec "
            f"{recorded}, but the current environment emits {current}; "
            "resume with the original observation_mode/config"
        )


class RunLoop:
    """Host a trainer under a (possibly absent) runtime context.

    One loop per training phase; multi-phase drivers construct one per
    phase with distinct ``phase`` names so each gets its own rolling
    checkpoint and completed phases short-circuit on resume.
    """

    def __init__(
        self, runtime: Optional[RuntimeContext], *, phase: str = "train"
    ):
        self.runtime = runtime
        self.phase = str(phase)

    # -- shared state capture ---------------------------------------------
    def _capture(self, agent, trainer=None) -> dict:
        state = {"agent": agent.state_dict()}
        # Trainers with distributed state of their own (actor RNG
        # streams, weight-version counters -- see
        # repro.rl.distributed.ActorLearnerTrainer) ride along under a
        # "trainer" subtree; classic trainers contribute nothing.
        if trainer is not None and hasattr(trainer, "state_dict"):
            state["trainer"] = trainer.state_dict()
        rt = self.runtime
        if rt is not None and rt.telemetry is not None:
            state["telemetry"] = rt.telemetry.registry.state_dict()
        return state

    def _restore(self, agent, state: dict, trainer=None) -> None:
        agent.load_state_dict(state["agent"])
        if (
            trainer is not None
            and "trainer" in state
            and hasattr(trainer, "load_state_dict")
        ):
            trainer.load_state_dict(state["trainer"])
        rt = self.runtime
        if rt is not None and rt.telemetry is not None:
            if "telemetry" in state:
                rt.telemetry.registry.load_state_dict(state["telemetry"])

    # -- episode-mode (sequential Trainer) --------------------------------
    def run_episodes(self, trainer):
        """Run a :class:`~repro.rl.trainer.Trainer` to completion.

        Without a runtime this is exactly ``trainer.run()``.  With one,
        the loop restores any existing checkpoint of this phase first
        (returning immediately when the phase already completed), then
        checkpoints every ``checkpoint_every`` episodes and at shutdown,
        raising :class:`RunInterrupted` after the shutdown snapshot.
        """
        rt = self.runtime
        if rt is None:
            return trainer.run()
        from repro.rl.trainer import TrainingHistory

        agent = trainer.agent
        spec = getattr(getattr(trainer, "env", None), "observation_spec", None)
        ckpt = rt.load_checkpoint(self.phase)
        start_episode = 0
        global_step = 0
        history = TrainingHistory()
        if ckpt is not None:
            meta = ckpt.meta
            _check_observation(meta, spec)
            history = _history_from_meta(meta["history"])
            self._restore(agent, ckpt.state)
            if meta.get("complete"):
                return history
            start_episode = int(meta["next_episode"])
            global_step = int(meta["global_step"])
        every = rt.checkpoint_every

        def snapshot(next_episode: int, gstep: int, complete: bool) -> Path:
            return rt.save_checkpoint(
                self.phase,
                self._capture(agent),
                {
                    "mode": "episodes",
                    "next_episode": next_episode,
                    "episodes_target": trainer.episodes,
                    "global_step": gstep,
                    "complete": complete,
                    "observation": spec.as_dict() if spec else None,
                    "history": _history_to_meta(history),
                },
            )

        def stop(ep: int, gstep: int) -> bool:
            stopping = rt.stop_requested
            due = every > 0 and (ep + 1 - start_episode) % every == 0
            if (due or stopping) and ep + 1 < trainer.episodes:
                snapshot(ep + 1, gstep, complete=False)
            return stopping

        history = trainer.run(
            start_episode=start_episode,
            global_step=global_step,
            history=history,
            stop=stop,
        )
        if rt.stop_requested and len(history.episodes) < trainer.episodes:
            raise RunInterrupted(
                self.phase, rt.checkpoint_path(self.phase)
            )
        snapshot(trainer.episodes, history.total_steps, complete=True)
        return history

    # -- step-mode (VectorTrainer / ActorLearnerTrainer) ------------------
    def run_steps(self, vtrainer, total_steps: int, *, segment_steps=None):
        """Run a step-driven trainer (vector or actor/learner).

        With a runtime, collection happens in fixed segments of
        ``checkpoint_every`` environment steps (one big segment when 0);
        every segment boundary resets the envs, flushes n-step windows,
        and writes a checkpoint -- making the segmentation part of the
        run's definition, so interrupted-and-resumed runs equal
        uninterrupted ones exactly.  ``segment_steps`` overrides the
        segment length -- the actor/learner driver uses it to align
        checkpoint boundaries with weight-broadcast boundaries (see
        docs/PARALLELISM.md).  Trainers exposing ``state_dict`` /
        ``load_state_dict`` (the actor/learner trainer's RNG streams and
        version counter) have that state checkpointed and restored
        alongside the agent.
        """
        rt = self.runtime
        if rt is None:
            return vtrainer.run(total_steps)
        from repro.rl.vector_trainer import VectorRunStats

        agent = vtrainer.agent
        spec = getattr(vtrainer, "observation_spec", None)
        if spec is None:
            spec = getattr(
                getattr(vtrainer, "venv", None), "observation_spec", None
            )
        ckpt = rt.load_checkpoint(self.phase)
        current = 0
        agg: Optional[dict] = None
        if ckpt is not None:
            meta = ckpt.meta
            _check_observation(meta, spec)
            agg = _from_jsonable(meta.get("stats"))
            self._restore(agent, ckpt.state, vtrainer)
            if meta.get("complete"):
                return VectorRunStats(**agg)
            current = int(meta["next_step"])
        segment = segment_steps or rt.checkpoint_every or total_steps
        flush = getattr(agent, "flush_episode", None)

        while current < total_steps:
            rt.check_interrupt(self.phase)
            target = min(current + segment, total_steps)
            seg_stats = vtrainer.run(target, start_step=current)
            if flush is not None:
                # Segment boundaries are episode boundaries for all N
                # envs: drain partial n-step windows deterministically.
                flush()
            current = seg_stats.total_steps
            agg = _merge_vector_stats(agg, seg_stats)
            complete = current >= total_steps
            rt.save_checkpoint(
                self.phase,
                self._capture(agent, vtrainer),
                {
                    "mode": "steps",
                    "next_step": current,
                    "global_step": current,
                    "steps_target": total_steps,
                    "complete": complete,
                    "observation": spec.as_dict() if spec else None,
                    "stats": _to_jsonable(agg),
                },
            )
            if rt.stop_requested and not complete:
                raise RunInterrupted(
                    self.phase, rt.checkpoint_path(self.phase)
                )
        assert agg is not None
        return VectorRunStats(**agg)
