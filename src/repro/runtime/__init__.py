"""repro.runtime -- resumable run lifecycle.

Full-state checkpointing (:mod:`~repro.runtime.checkpoint`), graceful
shutdown (:mod:`~repro.runtime.signals`), and the checkpointing run
loops every experiment driver trains through
(:mod:`~repro.runtime.loop`).  See docs/CHECKPOINTS.md.
"""

from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointReadError,
    checkpoint_info,
    latest_checkpoint,
    read_meta,
)
from repro.runtime.loop import (
    CHECKPOINT_DIR_NAME,
    RESULTS_NAME,
    RunInterrupted,
    RunLoop,
    RuntimeContext,
    memoized,
)
from repro.runtime.signals import INTERRUPT_EXIT_CODE, ShutdownGuard

__all__ = [
    "CHECKPOINT_DIR_NAME",
    "Checkpoint",
    "CheckpointReadError",
    "INTERRUPT_EXIT_CODE",
    "RESULTS_NAME",
    "RunInterrupted",
    "RunLoop",
    "RuntimeContext",
    "ShutdownGuard",
    "checkpoint_info",
    "latest_checkpoint",
    "memoized",
    "read_meta",
]
