"""Graceful-shutdown plumbing for long training runs.

:class:`ShutdownGuard` converts SIGINT/SIGTERM into a cooperative stop
flag that the run loop checks at episode/segment boundaries -- the run
writes a final checkpoint, seals its manifest with status
``interrupted``, and exits with code 130 instead of dying mid-write.  A
second signal escalates to an immediate :class:`KeyboardInterrupt` for
the impatient.
"""

from __future__ import annotations

import signal
from types import FrameType
from typing import Optional

#: Conventional exit code for an interrupted run (128 + SIGINT).
INTERRUPT_EXIT_CODE = 130


def mask_worker_signals() -> None:
    """Make a child worker immune to SIGINT/SIGTERM.

    Forked workers (AsyncVectorEnv env workers, actor/learner actor
    processes) inherit the parent's signal disposition -- including any
    installed :class:`ShutdownGuard` handler, whose *second-signal*
    escalation would raise ``KeyboardInterrupt`` mid shared-memory
    write and race the parent's shutdown snapshot.  Workers call this
    first thing: shutdown is then coordinated exclusively by the parent
    through the command pipe (with ``terminate``/``kill`` as the
    parent's last-resort path).  Off the main thread this degrades to a
    no-op, matching :class:`ShutdownGuard`.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


class ShutdownGuard:
    """Latches termination signals into a pollable stop flag.

    Usable as a context manager::

        with ShutdownGuard() as guard:
            ...  # check guard.stop_requested at safe points

    The previous handlers are restored on exit, so nesting guards or
    embedding runs inside larger applications stays safe.  Outside a
    main thread (where ``signal.signal`` raises), the guard degrades to
    an inert flag that only :meth:`request_stop` can set.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = tuple(signals)
        self._stop = False
        self._received: Optional[int] = None
        self._previous: dict = {}
        self._installed = False

    @property
    def stop_requested(self) -> bool:
        """True once a signal has been received (or stop was forced)."""
        return self._stop

    @property
    def signal_number(self) -> Optional[int]:
        """The first signal received, if any."""
        return self._received

    def request_stop(self) -> None:
        """Set the flag programmatically (tests, embedding hosts)."""
        self._stop = True

    def _handle(self, signum: int, _frame: Optional[FrameType]) -> None:
        if self._stop:
            # Second signal: the user really means it.
            raise KeyboardInterrupt(f"second signal {signum}")
        self._stop = True
        self._received = signum

    def install(self) -> "ShutdownGuard":
        """Install handlers (idempotent; no-op off the main thread)."""
        if self._installed:
            return self
        try:
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._handle)
            self._installed = True
        except ValueError:  # pragma: no cover - non-main thread
            self._previous.clear()
        return self

    def restore(self) -> None:
        """Put the previous handlers back (idempotent)."""
        if not self._installed:
            return
        for sig, handler in self._previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "ShutdownGuard":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.restore()
