"""Full-state run checkpoints: one atomic ``.npz`` per training phase.

A checkpoint is a nested state tree (the ``state_dict()`` output of an
agent plus run-level counters) split into two parts:

- every :class:`numpy.ndarray` leaf goes into the npz archive under its
  ``/``-joined tree path (weights, optimizer slots, the replay ring);
- every other leaf (counters, RNG states, flags, the training history)
  goes into one JSON document stored as the ``__meta__`` member.

The whole archive is serialized to memory and then written with
:func:`repro.utils.serialization.atomic_write`, so a reader never sees
a torn checkpoint: after a kill at any instant the file on disk is
either the previous complete snapshot or the new one.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.utils.serialization import atomic_write

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: npz member holding the JSON scalar tree.
_META_KEY = "__meta__"

#: Marker dict standing in for an array leaf inside the JSON tree.
_ARRAY_TAG = "__array__"


class CheckpointReadError(RuntimeError):
    """The file is not a readable checkpoint of a known schema."""


def _split_arrays(state: Dict[str, Any]) -> tuple[dict, dict]:
    """Separate array leaves from the JSON-safe scalar tree."""
    arrays: dict[str, np.ndarray] = {}

    def walk(node: dict, path: str) -> dict:
        tree: dict = {}
        for key, value in node.items():
            key = str(key)
            full = f"{path}/{key}" if path else key
            if isinstance(value, np.ndarray):
                arrays[full] = value
                tree[key] = {_ARRAY_TAG: full}
            elif isinstance(value, dict):
                tree[key] = walk(value, full)
            elif isinstance(value, (np.integer,)):
                tree[key] = int(value)
            elif isinstance(value, (np.floating,)):
                tree[key] = float(value)
            elif isinstance(value, (np.bool_,)):
                tree[key] = bool(value)
            elif isinstance(value, tuple):
                tree[key] = list(value)
            else:
                tree[key] = value
        return tree

    return arrays, walk(state, "")


def _merge_arrays(tree: dict, arrays: Dict[str, np.ndarray]) -> dict:
    """Re-inline array leaves into the scalar tree."""
    out: dict = {}
    for key, value in tree.items():
        if isinstance(value, dict):
            if set(value) == {_ARRAY_TAG}:
                out[key] = arrays[value[_ARRAY_TAG]]
            else:
                out[key] = _merge_arrays(value, arrays)
        else:
            out[key] = value
    return out


@dataclass
class Checkpoint:
    """One full-state snapshot: the state tree plus run-level metadata.

    ``state`` is the nested ``state_dict()`` tree (arrays welcome at any
    depth).  ``meta`` carries everything the run loop needs to continue
    -- phase name, mode, next episode/step, completion flag, serialized
    training history -- and is what ``repro inspect`` renders without
    touching the arrays.
    """

    state: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def write(self, path: PathLike) -> None:
        """Serialize to ``path`` atomically (see module docstring)."""
        arrays, tree = _split_arrays(self.state)
        payload = {
            "schema": SCHEMA_VERSION,
            "meta": self.meta,
            "state": tree,
        }
        blob = json.dumps(payload).encode("utf-8")
        members = {
            _META_KEY: np.frombuffer(blob, dtype=np.uint8),
            **arrays,
        }
        buf = io.BytesIO()
        np.savez(buf, **members)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(target, buf.getvalue())

    @classmethod
    def load(cls, path: PathLike) -> "Checkpoint":
        """Read a checkpoint written by :meth:`write`."""
        payload, arrays = _read_members(path, load_arrays=True)
        return cls(
            state=_merge_arrays(payload.get("state", {}), arrays),
            meta=payload.get("meta", {}),
        )


def _read_members(
    path: PathLike, *, load_arrays: bool
) -> tuple[dict, Dict[str, np.ndarray]]:
    try:
        with np.load(path) as data:
            if _META_KEY not in data.files:
                raise CheckpointReadError(
                    f"{path}: not a repro checkpoint (no {_META_KEY})"
                )
            payload = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
            arrays = (
                {k: data[k] for k in data.files if k != _META_KEY}
                if load_arrays
                else {}
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        if isinstance(exc, CheckpointReadError):
            raise
        raise CheckpointReadError(f"{path}: unreadable checkpoint: {exc}")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointReadError(
            f"{path}: checkpoint schema {schema} is not supported "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload, arrays


def read_meta(path: PathLike) -> Dict[str, Any]:
    """Only the metadata of a checkpoint (arrays untouched)."""
    payload, _ = _read_members(path, load_arrays=False)
    return payload.get("meta", {})


def checkpoint_info(path: PathLike) -> Dict[str, Any]:
    """Inspection record: metadata plus file/array sizes.

    Powers the checkpoint section of ``repro inspect``; cheap enough to
    call on every checkpoint in a run directory.
    """
    target = Path(path)
    payload, _ = _read_members(target, load_arrays=False)
    with np.load(target) as data:
        n_arrays = len([k for k in data.files if k != _META_KEY])
    return {
        "path": str(target),
        "file_bytes": target.stat().st_size,
        "n_arrays": n_arrays,
        "meta": payload.get("meta", {}),
    }


def latest_checkpoint(directory: PathLike) -> Path | None:
    """The most recently modified ``.npz`` checkpoint under ``directory``.

    ``repro resume`` uses this to report the step a run restarts from;
    returns None when the directory is missing or holds no checkpoints.
    """
    d = Path(directory)
    if not d.is_dir():
        return None
    candidates = sorted(
        d.glob("*.npz"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    return candidates[-1] if candidates else None
