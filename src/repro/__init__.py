"""DQN-Docking: deep reinforcement learning for protein-ligand docking.

Reproduction of Serrano et al., *Accelerating Drugs Discovery with Deep
Reinforcement Learning: An Early Approach* (ICPP 2018 Companion).

The package is organized bottom-up:

- :mod:`repro.utils` -- RNG plumbing, timers, ASCII plotting, tables.
- :mod:`repro.chem` -- molecules, force-field parameters, transforms, I/O,
  synthetic complex builders (the 2BSM stand-in).
- :mod:`repro.scoring` -- the METADOCK scoring function (paper Eq. 1):
  electrostatics + Lennard-Jones + hydrogen bonds, plus the sequential
  Algorithm-1 reference, neighbor lists and potential grids.
- :mod:`repro.metadock` -- the docking engine (poses, metaheuristic schema,
  Monte Carlo baseline, parallel evaluation, virtual screening).
- :mod:`repro.nn` -- from-scratch NumPy neural-network stack (MLP, backprop,
  RMSprop/Adam, dueling heads, checkpoints).
- :mod:`repro.rl` -- replay memories, schedules, DQN agent + DDQN /
  dueling / distributional variants, the training loop of Algorithm 2.
- :mod:`repro.env` -- the DQN-Docking environment: 12 discrete actions,
  the paper's reward transformation and termination rules.
- :mod:`repro.experiments` -- drivers that regenerate every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import quick_training_run
    result = quick_training_run(episodes=20, seed=0)
    print(result.summary())
"""

from repro.config import (
    ComplexConfig,
    DQNDockingConfig,
    PAPER_CONFIG,
    ci_scale_config,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "ComplexConfig",
    "DQNDockingConfig",
    "PAPER_CONFIG",
    "ci_scale_config",
    "quick_training_run",
]


def quick_training_run(episodes: int = 20, seed: int = 0):
    """Train a small DQN-Docking agent end to end and return its history.

    This is the one-call smoke entry point used by the quickstart example:
    it builds a reduced synthetic receptor-ligand complex, wraps it in the
    paper's environment, and runs ``episodes`` episodes of Algorithm 2.
    """
    from repro.experiments.figure4 import run_figure4_experiment

    cfg = ci_scale_config(episodes=episodes, seed=seed)
    return run_figure4_experiment(cfg)
