"""Terminal line plots for figure reproduction (no matplotlib offline).

Figure 4 of the paper is a single training curve; :func:`ascii_line_plot`
renders the measured curve into the experiment report so the rise-and-
decline shape is visible directly in CI logs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of ``values`` (empty input -> '')."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    finite = np.isfinite(arr)
    if not finite.any():
        return " " * arr.size
    lo = float(arr[finite].min())
    hi = float(arr[finite].max())
    span = hi - lo
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        out.append(_BLOCKS[min(len(_BLOCKS) - 1, int(frac * len(_BLOCKS)))])
    return "".join(out)


def ascii_line_plot(
    values: Sequence[float],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    ylabel_fmt: str = "{:>10.1f}",
) -> str:
    """Render ``values`` as a character-grid line plot.

    Values are bucketed to ``width`` columns (mean per bucket) and scaled
    to ``height`` rows.  Returns a multi-line string; degenerate inputs
    (empty, all-NaN, constant) are handled without raising.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (title + "\n" if title else "") + "(no data)"
    # Bucket into `width` columns.
    ncols = min(width, arr.size)
    edges = np.linspace(0, arr.size, ncols + 1).astype(int)
    def bucket_mean(a: int, b: int) -> float:
        chunk = arr[a:b]
        finite_chunk = chunk[np.isfinite(chunk)]
        return float(finite_chunk.mean()) if finite_chunk.size else np.nan

    cols = np.array(
        [bucket_mean(a, b) for a, b in zip(edges[:-1], edges[1:])]
    )
    finite = np.isfinite(cols)
    if not finite.any():
        return (title + "\n" if title else "") + "(no finite data)"
    lo, hi = float(cols[finite].min()), float(cols[finite].max())
    span = hi - lo or 1.0
    rows = np.full(ncols, -1, dtype=int)
    rows[finite] = np.clip(
        ((cols[finite] - lo) / span * (height - 1)).round().astype(int),
        0,
        height - 1,
    )
    grid = [[" "] * ncols for _ in range(height)]
    for c, r in enumerate(rows):
        if r >= 0:
            grid[height - 1 - r][c] = "*"
    lines: list[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y = hi - span * i / (height - 1) if height > 1 else hi
        label = ylabel_fmt.format(y) if i in (0, height // 2, height - 1) \
            else " " * len(ylabel_fmt.format(0.0))
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * len(ylabel_fmt.format(0.0)) + " +" + "-" * ncols)
    lines.append(
        " " * len(ylabel_fmt.format(0.0))
        + f"  0{'episode'.center(max(0, ncols - 6))}{arr.size - 1}"
    )
    return "\n".join(lines)
