"""Plain-text table rendering for experiment reports.

Every experiment driver prints its results as a fixed-width table that can
be diffed against EXPERIMENTS.md; this module is the single formatter so
the layout stays consistent across Table 1, the bench summaries and the
baseline comparisons.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an ASCII table.

    ``align`` is a per-column sequence of ``"l"`` / ``"r"`` (default left).
    Cells are stringified with ``str``; numeric formatting is the caller's
    concern so scientific notation etc. stays under experiment control.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(
                f"row has {len(r)} cells, expected {ncols}: {r!r}"
            )
    if align is None:
        align = ["l"] * ncols
    if len(align) != ncols:
        raise ValueError("align length must match header count")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, w, a in zip(cells, widths, align):
            parts.append(cell.rjust(w) if a == "r" else cell.ljust(w))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(fmt_row(list(headers)))
    out.append(sep)
    for r in str_rows:
        out.append(fmt_row(r))
    out.append(sep)
    return "\n".join(out)
