"""Lightweight wall-clock instrumentation (compatibility layer).

The one timing implementation lives in :mod:`repro.telemetry.spans`;
:class:`Timer` is kept as a thin shim over a
:class:`~repro.telemetry.spans.SpanTracer` so existing call sites and
saved reports keep working, while new code should use the tracer (and
its nested spans) directly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.telemetry.spans import SpanTracer


class Timer:
    """Accumulating named timer usable as a context manager.

    A flat view over a :class:`SpanTracer`: sections become spans, and
    the totals/counts aggregate across whatever nesting the underlying
    tracer saw.  Pass a shared ``tracer`` to merge these sections into
    a run-wide span tree.

    >>> t = Timer()
    >>> with t.section("scoring"):
    ...     pass
    >>> t.total("scoring") >= 0.0
    True
    """

    def __init__(self, tracer: SpanTracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one named section (re-entrant, accumulating)."""
        with self.tracer.span(name):
            yield

    @property
    def totals(self) -> Dict[str, float]:
        """Name -> accumulated seconds (flat, across span parents)."""
        return self.tracer.totals_by_name()

    @property
    def counts(self) -> Dict[str, int]:
        """Name -> entry count (flat, across span parents)."""
        return self.tracer.counts_by_name()

    def total(self, name: str) -> float:
        """Accumulated seconds spent in ``name`` (0.0 if never entered)."""
        return self.tracer.total(name)

    def mean(self, name: str) -> float:
        """Mean seconds per entry of ``name``."""
        return self.tracer.mean(name)

    def report(self) -> str:
        """Human-readable multi-line breakdown sorted by total time."""
        return self.tracer.flat_report()


class WallClock:
    """Monotonic stopwatch with split support."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def split(self) -> float:
        """Seconds since the previous :meth:`split` (or construction)."""
        now = time.perf_counter()
        out = now - self._last
        self._last = now
        return out
