"""Lightweight wall-clock instrumentation.

The experiment drivers report how long each phase of a run took (the paper
stresses that DQN<->METADOCK communication dominated their wall time), so
timers are first-class here rather than ad-hoc ``time.time()`` pairs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulating named timer usable as a context manager.

    >>> t = Timer()
    >>> with t.section("scoring"):
    ...     pass
    >>> t.total("scoring") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds spent in ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry of ``name``."""
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def report(self) -> str:
        """Human-readable multi-line breakdown sorted by total time."""
        if not self.totals:
            return "(no timed sections)"
        width = max(len(k) for k in self.totals)
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<{width}}  total={self.totals[name]:9.4f}s  "
                f"calls={self.counts[name]:>6}  "
                f"mean={self.mean(name) * 1e3:9.4f}ms"
            )
        return "\n".join(lines)


class WallClock:
    """Monotonic stopwatch with split support."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def split(self) -> float:
        """Seconds since the previous :meth:`split` (or construction)."""
        now = time.perf_counter()
        out = now - self._last
        self._last = now
        return out
