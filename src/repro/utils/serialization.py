"""JSON persistence for run records.

Training histories and experiment results are plain dataclasses over
floats/strings; this module round-trips them through JSON so runs can be
archived, diffed against EXPERIMENTS.md, and re-plotted without re-running.
NumPy scalars/arrays are converted transparently.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


def atomic_write(path: PathLike, data: Union[str, bytes]) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The payload lands in a sibling temporary file, is fsync'd, and is
    then renamed over the target, so a reader never observes a torn or
    truncated file even if the process is killed mid-write -- the
    durability contract run manifests and checkpoints rely on.
    """
    target = Path(path)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    mode = "wb" if isinstance(data, bytes) else "w"
    try:
        with open(tmp, mode) as fh:
            fh.write(data)
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:  # pragma: no cover - fs without fsync support
                pass
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy types to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, float) and (obj != obj or obj in (float("inf"), float("-inf"))):
        # JSON has no NaN/Inf; encode as strings and decode on load.
        return {"__float__": repr(obj)}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj


def _from_jsonable(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {"__float__"}:
            return float(obj["__float__"].strip("'\""))
        return {k: _from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_from_jsonable(v) for v in obj]
    return obj


def dump_json(obj: Any, path: PathLike, *, indent: int = 2) -> None:
    """Serialize ``obj`` (dataclass trees welcome) to ``path``.

    Writes are atomic (:func:`atomic_write`), so a kill mid-dump leaves
    either the previous document or the new one, never a fragment.
    """
    atomic_write(path, json.dumps(_to_jsonable(obj), indent=indent))


def load_json(path: PathLike) -> Any:
    """Load a document written by :func:`dump_json` (as dicts/lists)."""
    return _from_jsonable(json.loads(Path(path).read_text()))


def save_history(history, path: PathLike) -> None:
    """Persist a :class:`repro.rl.trainer.TrainingHistory`."""
    dump_json(history, path)


def load_history(path: PathLike):
    """Reconstruct a TrainingHistory saved by :func:`save_history`."""
    from repro.rl.trainer import EpisodeStats, TrainingHistory

    raw = load_json(path)
    episodes = [EpisodeStats(**ep) for ep in raw["episodes"]]
    return TrainingHistory(
        episodes=episodes,
        total_steps=raw["total_steps"],
        wall_seconds=raw["wall_seconds"],
        timer_report=raw.get("timer_report", ""),
    )
