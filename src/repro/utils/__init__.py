"""Shared utilities: RNG plumbing, timers, ASCII plots, tables, logging."""

from repro.utils.rng import RngFactory, as_generator, spawn_seeds
from repro.utils.timers import Timer, WallClock
from repro.utils.tables import render_table
from repro.utils.ascii_plot import ascii_line_plot, sparkline
from repro.utils.running_stats import RunningStats, ExponentialMovingAverage
from repro.utils.serialization import dump_json, load_json, save_history, load_history

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_seeds",
    "Timer",
    "WallClock",
    "render_table",
    "ascii_line_plot",
    "sparkline",
    "RunningStats",
    "ExponentialMovingAverage",
    "dump_json",
    "load_json",
    "save_history",
    "load_history",
]
