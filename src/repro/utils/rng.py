"""Deterministic random-number plumbing.

All stochastic components in the library take either an integer seed or a
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes both, and
:class:`RngFactory` hands out independent child generators for subsystems
(environment, agent, replay sampling, ...) so that changing how many random
draws one subsystem makes never perturbs another -- a requirement for the
reproducible parallel workers in :mod:`repro.metadock.parallel`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    anything else creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` statistically independent seed sequences from ``seed``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        base = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if not isinstance(base, np.random.SeedSequence):  # pragma: no cover
            base = np.random.SeedSequence(int(seed.integers(2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        base = seed
    else:
        base = np.random.SeedSequence(seed)
    return list(base.spawn(n))


def generator_state(gen: np.random.Generator) -> dict:
    """Snapshot a generator's full bit-generator state.

    The returned dict is JSON-compatible (Python ints are unbounded, so
    the 128-bit PCG64 words survive a JSON round-trip) and feeds
    :func:`restore_generator` -- the mechanism run checkpoints use to
    continue every RNG stream bit-for-bit.
    """
    return gen.bit_generator.state


def restore_generator(gen: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore ``gen`` to a state captured by :func:`generator_state`.

    The bit-generator kinds must match (a PCG64 stream cannot continue
    from an MT19937 snapshot); numpy raises on mismatch.  JSON
    round-trips may have stringified the big integers, so numeric
    strings are coerced back.
    """
    gen.bit_generator.state = _intify(state)
    return gen


def _intify(obj):
    """Recursively coerce numeric strings back to ints (post-JSON)."""
    if isinstance(obj, dict):
        return {k: _intify(v) for k, v in obj.items()}
    if isinstance(obj, str) and (obj.isdigit() or (obj[:1] == "-" and obj[1:].isdigit())):
        return int(obj)
    return obj


class RngFactory:
    """Named independent generators derived from one master seed.

    >>> rngs = RngFactory(123)
    >>> env_rng = rngs.get("env")
    >>> agent_rng = rngs.get("agent")

    Repeated ``get`` with the same name returns the *same* generator
    instance; different names are statistically independent.  The mapping
    from name to stream is stable across runs and across the order in which
    names are first requested.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, np.random.SeedSequence):
            self._base_entropy: tuple = (seed.entropy,)
        elif isinstance(seed, np.random.Generator):
            self._base_entropy = (int(seed.integers(2**63)),)
        elif seed is None:
            self._base_entropy = (int(np.random.SeedSequence().entropy),)
        else:
            self._base_entropy = (int(seed),)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._cache:
            # Hash the name into spawn_key space so stream identity depends
            # only on (master seed, name), not on request order.
            key = tuple(name.encode("utf-8"))
            seq = np.random.SeedSequence(
                entropy=self._base_entropy[0], spawn_key=key
            )
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def seeds(self, name: str, n: int) -> list[int]:
        """``n`` deterministic integer seeds under stream ``name``
        (for handing to worker processes)."""
        gen = self.get(name)
        return [int(s) for s in gen.integers(0, 2**63, size=n)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(entropy={self._base_entropy[0]})"


def sobol_like_grid(n: int, dims: int, rng: SeedLike = None) -> np.ndarray:
    """Low-discrepancy-ish points in the unit cube via jittered lattice.

    Used to seed metaheuristic populations with well-spread initial poses
    without depending on scipy.stats.qmc internals.  Returns ``(n, dims)``.
    """
    if n <= 0:
        return np.empty((0, dims))
    gen = as_generator(rng)
    # Kronecker (golden-ratio generalization) lattice + uniform jitter.
    phis = _kronecker_alphas(dims)
    idx = np.arange(1, n + 1)[:, None]
    points = (idx * phis[None, :]) % 1.0
    jitter = gen.uniform(-0.5 / n, 0.5 / n, size=(n, dims))
    return np.mod(points + jitter, 1.0)


def _kronecker_alphas(dims: int) -> np.ndarray:
    """Irrational step vector for the Kronecker lattice (R_d sequence)."""
    # Generalized golden ratio: unique positive root of x^(d+1) = x + 1.
    g = 1.5
    for _ in range(64):
        g = (1.0 + g) ** (1.0 / (dims + 1))
    return np.array([1.0 / g ** (k + 1) for k in range(dims)]) % 1.0
