"""Streaming statistics used by training metrics and normalizers."""

from __future__ import annotations

import math

import numpy as np


class RunningStats:
    """Welford online mean/variance over scalars or fixed-shape arrays.

    Numerically stable for long training runs (millions of updates), which
    matters because the paper's state components span ~27 orders of
    magnitude once steric clashes appear in raw scores.
    """

    def __init__(self, shape: tuple[int, ...] = ()) -> None:
        self._shape = shape
        self.count = 0
        self._mean = np.zeros(shape, dtype=float)
        self._m2 = np.zeros(shape, dtype=float)

    def update(self, value) -> None:
        """Fold one observation into the statistics."""
        x = np.asarray(value, dtype=float)
        if x.shape != self._shape:
            raise ValueError(f"expected shape {self._shape}, got {x.shape}")
        self.count += 1
        delta = x - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (x - self._mean)

    @property
    def mean(self):
        """Current mean (scalar for scalar streams)."""
        return float(self._mean) if self._shape == () else self._mean.copy()

    @property
    def variance(self):
        """Population variance (0 before two observations)."""
        if self.count < 2:
            return 0.0 if self._shape == () else np.zeros(self._shape)
        v = self._m2 / self.count
        return float(v) if self._shape == () else v

    @property
    def std(self):
        """Population standard deviation."""
        v = self.variance
        return math.sqrt(v) if self._shape == () else np.sqrt(v)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return stats equivalent to having seen both streams (Chan et al.).

        Used to combine per-worker statistics from parallel pose
        evaluation without sharing state across processes.
        """
        if other._shape != self._shape:
            raise ValueError("cannot merge stats of different shapes")
        out = RunningStats(self._shape)
        n = self.count + other.count
        if n == 0:
            return out
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * (other.count / n)
        out._m2 = (
            self._m2
            + other._m2
            + delta**2 * (self.count * other.count / n)
        )
        return out


class ExponentialMovingAverage:
    """EMA with bias correction, for smoothed training curves."""

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = alpha
        self._value = 0.0
        self._weight = 0.0

    def update(self, x: float) -> float:
        """Fold ``x`` in and return the corrected average."""
        self._value = (1 - self.alpha) * self._value + self.alpha * float(x)
        self._weight = (1 - self.alpha) * self._weight + self.alpha
        return self.value

    @property
    def value(self) -> float:
        """Bias-corrected average (0.0 before any update)."""
        return self._value / self._weight if self._weight else 0.0
