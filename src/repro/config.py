"""Configuration dataclasses for DQN-Docking.

:class:`DQNDockingConfig` defaults reproduce **Table 1** of the paper
exactly (both the RL and DL hyperparameter blocks).  :class:`ComplexConfig`
describes the synthetic 2BSM-scale receptor-ligand complex used in place of
the wwPDB crystal structure (see DESIGN.md, substitution table).

Two presets are provided:

- :data:`PAPER_CONFIG` -- the full-scale run of Section 4 (1,800 episodes,
  3,264-atom receptor, 45-atom ligand).  Hours of CPU time.
- :func:`ci_scale_config` -- a reduced preset with the same structure used
  by tests, benches and the quickstart example; runs in seconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ComplexConfig:
    """Parameters of the synthetic receptor-ligand complex.

    The defaults mirror the 2BSM pair used in the paper: a 3,264-atom
    receptor (described in Section 5 as "relatively small") and a
    45-atom ligand (Table 1 derives the hidden-layer width as
    ``45 x 3`` ligand coordinates).
    """

    receptor_atoms: int = 3264
    ligand_atoms: int = 45
    #: Approximate receptor radius in angstroms.
    receptor_radius: float = 22.0
    #: Depth of the concave binding pocket carved into the receptor surface.
    pocket_depth: float = 6.0
    #: Aperture half-angle of the pocket cone, radians.
    pocket_aperture: float = 0.55
    #: Initial ligand displacement from the pocket mouth along the pocket axis.
    initial_offset: float = 14.0
    #: Number of rotatable bonds assigned to the ligand (2BSM ligand folds
    #: in 6 bonds per Section 5).
    rotatable_bonds: int = 6
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.receptor_atoms < 8:
            raise ValueError("receptor needs at least 8 atoms")
        if self.ligand_atoms < 2:
            raise ValueError("ligand needs at least 2 atoms")
        if self.pocket_depth < 0:
            raise ValueError("pocket_depth must be non-negative")
        if self.rotatable_bonds < 0:
            raise ValueError("rotatable_bonds must be non-negative")


@dataclass(frozen=True)
class DQNDockingConfig:
    """All hyperparameters of Table 1 plus environment/engine knobs.

    Field defaults are the paper's values verbatim; the benches assert this
    correspondence (``benchmarks/test_bench_table1.py``).
    """

    # --- RL hyperparameters (Table 1, upper block) -----------------------
    #: Number of episodes to be completed along the simulation.
    episodes: int = 1800
    #: Maximum time-steps limit per episode.
    max_steps_per_episode: int = 1000
    #: Real numbers needed to represent a particular state (2BSM).
    state_space: int = 16599
    #: Possible actions to be taken by the agent.
    action_space: int = 12
    #: Distance traveled by the ligand in each shifting step (paper: 1 nm).
    shift_length: float = 1.0
    #: Degrees turned by the ligand in each rotating step.
    rotation_angle_deg: float = 0.5
    #: Initial steps where the agent only takes random actions to explore.
    initial_exploration_steps: int = 20000
    #: Initial epsilon (1.0 = fully random at start of training).
    epsilon_start: float = 1.0
    #: Final epsilon after annealing.
    epsilon_final: float = 0.05
    #: Linear decrease of epsilon per time-step.
    epsilon_decay: float = 4.5e-5
    #: Discount rate for future rewards.
    gamma: float = 0.99
    #: Experience-replay memory capacity.
    replay_capacity: int = 400000
    #: Steps of pure random action before learning starts.
    learning_start: int = 10000
    #: Frequency (steps) at which the target network is updated.
    target_update_steps: int = 1000

    # --- DL hyperparameters (Table 1, lower block) ------------------------
    #: Hidden layers between input and output.
    hidden_layers: int = 2
    #: Hidden-layer width: 45 ligand atoms x 3 coordinates.
    hidden_size: int = 135
    #: Activation for hidden units.
    activation: str = "relu"
    #: Optimizer update rule.
    update_rule: str = "rmsprop"
    #: Optimizer learning rate.
    learning_rate: float = 0.00025
    #: Training examples per gradient update.
    minibatch_size: int = 32

    # --- Environment rules (Section 3) ------------------------------------
    #: Movement-area factor: episode ends if the ligand center of mass
    #: travels beyond ``escape_factor`` x the initial receptor-ligand
    #: center-of-mass distance ("an additional third" -> 4/3).
    escape_factor: float = 4.0 / 3.0
    #: Consecutive low-score steps that terminate the episode.
    low_score_patience: int = 20
    #: Score threshold for the low-score termination rule.
    low_score_threshold: float = -100000.0

    # --- Engine / reproduction knobs (not in Table 1) ----------------------
    #: Algorithmic variant: "dqn" (paper), "ddqn", "dueling",
    #: "dueling-ddqn", "distributional", or "rainbow" (double + dueling +
    #: prioritized + 3-step) -- the Section 5 future-work list.
    variant: str = "dqn"
    #: Use the 18-action flexible-ligand environment (Section 5 future work).
    flexible_ligand: bool = False
    #: Environment communication layer: "ram" or "file" (the paper used
    #: on-disk files; limitation #1 of Section 5).
    comm_mode: str = "ram"
    #: Compact-state hot loop: the env emits only the dynamic ligand
    #: tail (float32), the replay stores the constant receptor block
    #: once, and the agent reconstructs full states on demand (see
    #: docs/PERFORMANCE.md).  Off by default to keep the paper-shaped
    #: float64 pipeline bit-for-bit unchanged; not available with the
    #: "distributional" variant.
    compact_states: bool = False
    #: Observation codec emitted by the environment: "raw" (the paper's
    #: flat 16,599-dim float64 state, bit-identical to pre-codec
    #: behaviour), "compact" (dynamic ligand tail only -- implies
    #: ``compact_states``), or "descriptor" (pocket-relative ligand
    #: features, ~270 dims; see :mod:`repro.env.observation` and
    #: docs/OBSERVATIONS.md).
    observation_mode: str = "raw"
    #: Pose-scoring kernel: "exact" (full Eq. 1, the correctness
    #: reference), "cutoff" (cell-list truncation), "grid" (precomputed
    #: fields), "incremental" (Verlet-list scorer, see
    #: :mod:`repro.scoring.incremental`) or "field" (hybrid
    #: precomputed-field scorer with an exact near-field path, see
    #: :mod:`repro.scoring.field` and docs/PERFORMANCE.md).
    scoring_method: str = "exact"
    #: Extra keyword arguments forwarded to the scorer constructor
    #: (e.g. ``{"cutoff": 12.0, "skin": 3.0}`` for "incremental").
    scoring_kwargs: dict = field(default_factory=dict)
    #: Steps between agent training updates (1 = update every step).
    train_interval: int = 1
    #: Training runtime: "sync" (one process; the sequential trainer for
    #: figure4, the vector trainer for curriculum) or "actor-learner"
    #: (N actor processes feed a learner process through shared-memory
    #: transition rings; see :mod:`repro.rl.distributed` and
    #: docs/PARALLELISM.md).
    trainer: str = "sync"
    #: Actor processes under ``trainer="actor-learner"``.
    num_actors: int = 2
    #: Actors refresh their Q-net sidecar every this many *local* steps
    #: (so the learner broadcasts every ``num_actors * actor_sync_every``
    #: global transitions).
    actor_sync_every: int = 50
    #: Per-actor transition-ring capacity (slots); a full ring
    #: backpressures its actor.
    actor_ring_capacity: int = 256
    #: Loss used for the Bellman residual ("mse" per the paper's Eq.;
    #: "huber" is the DQN-Nature practical choice, offered as an option).
    loss: str = "mse"
    seed: int = 0
    complex: ComplexConfig = field(default_factory=ComplexConfig)

    def __post_init__(self) -> None:
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if self.max_steps_per_episode <= 0:
            raise ValueError("max_steps_per_episode must be positive")
        if not 0.0 <= self.epsilon_final <= self.epsilon_start <= 1.0:
            raise ValueError("need 0 <= epsilon_final <= epsilon_start <= 1")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if self.replay_capacity < self.minibatch_size:
            raise ValueError("replay capacity smaller than a minibatch")
        if self.variant not in {
            "dqn",
            "ddqn",
            "dueling",
            "dueling-ddqn",
            "distributional",
            "rainbow",
        }:
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.comm_mode not in {"ram", "file"}:
            raise ValueError(f"unknown comm_mode {self.comm_mode!r}")
        # Literal set (not repro.env.observation.OBSERVATION_MODES) to
        # avoid a config -> env import cycle; an observation test
        # asserts the two stay in sync.
        if self.observation_mode not in {"raw", "compact", "descriptor"}:
            raise ValueError(
                f"unknown observation_mode {self.observation_mode!r}"
            )
        # Normalize the legacy compact_states flag against the codec
        # mode so downstream code can rely on the invariant
        # ``compact_states == (observation_mode == "compact")``.
        if self.compact_states and self.observation_mode == "descriptor":
            raise ValueError(
                "compact_states conflicts with observation_mode="
                "'descriptor'; pick one observation codec"
            )
        if self.compact_states and self.observation_mode == "raw":
            object.__setattr__(self, "observation_mode", "compact")
        elif self.observation_mode == "compact" and not self.compact_states:
            object.__setattr__(self, "compact_states", True)
        if self.compact_states and self.variant == "distributional":
            raise ValueError(
                "compact_states is not supported with the distributional "
                "variant (C51 keeps the dense float64 replay)"
            )
        # Literal set (not repro.scoring.SCORING_METHODS) to avoid a
        # config -> scoring import cycle; a scoring test asserts the two
        # stay in sync.
        if self.scoring_method not in {
            "exact", "cutoff", "grid", "incremental", "field"
        }:
            raise ValueError(
                f"unknown scoring_method {self.scoring_method!r}"
            )
        # Validate scoring_kwargs against the scorer registry so typos
        # fail here rather than deep inside a worker.  Deferred import:
        # DQNDockingConfig is bound before module-level PAPER_CONFIG
        # instantiates, so the cycle resolves; guard anyway.
        try:
            from repro.scoring.scorers import validate_scoring_kwargs
        except ImportError:  # pragma: no cover - partial installs
            pass
        else:
            validate_scoring_kwargs(self.scoring_method, self.scoring_kwargs)
        if self.trainer not in {"sync", "actor-learner"}:
            raise ValueError(f"unknown trainer {self.trainer!r}")
        if self.num_actors < 1:
            raise ValueError("num_actors must be >= 1")
        if self.actor_sync_every < 1:
            raise ValueError("actor_sync_every must be >= 1")
        if self.actor_ring_capacity < 1:
            raise ValueError("actor_ring_capacity must be >= 1")
        if self.trainer == "actor-learner" and self.variant == "distributional":
            raise ValueError(
                "trainer='actor-learner' does not support the "
                "distributional variant (the actor sidecar replicates "
                "plain Q-networks only)"
            )
        if self.loss not in {"mse", "huber"}:
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.activation not in {"relu", "tanh", "sigmoid", "linear"}:
            raise ValueError(f"unknown activation {self.activation!r}")
        if self.update_rule not in {"rmsprop", "adam", "sgd"}:
            raise ValueError(f"unknown update_rule {self.update_rule!r}")

    @property
    def n_actions(self) -> int:
        """Action count implied by the environment flavour."""
        if self.flexible_ligand:
            return self.action_space + 2 * self.complex.rotatable_bonds
        return self.action_space

    def replace(self, **changes: Any) -> "DQNDockingConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass helper)."""
        return dataclasses.replace(self, **changes)

    def table1_rows(self) -> list[tuple[str, str, str]]:
        """Render the config as (hyperparameter, value, description) rows
        in the order of the paper's Table 1."""
        return [
            ("Number of episodes M", f"{self.episodes:,}",
             "Number of episodes to be completed along the simulation"),
            ("Maximum time-steps limit T", f"{self.max_steps_per_episode:,}",
             "Maximum time-steps limit per episode"),
            ("State space", f"{self.state_space:,}",
             "Real numbers needed to represent a particular state"),
            ("Action space", f"{self.action_space}",
             "Possible actions to be taken by the agent"),
            ("Shifting length per step", f"{self.shift_length:g}",
             "Distance traveled by the ligand in each step when shifting"),
            ("Rotating angle per step", f"{self.rotation_angle_deg:g}",
             "Degrees turned by the ligand in each step when rotating"),
            ("Initial exploration steps", f"{self.initial_exploration_steps:,}",
             "Initial steps of purely random exploration"),
            ("epsilon initial value", f"{self.epsilon_start:g}",
             "Initial value of epsilon"),
            ("epsilon final value", f"{self.epsilon_final:g}",
             "Final value of epsilon"),
            ("epsilon decay", f"{self.epsilon_decay:g}",
             "Decrease rate of epsilon per time-step"),
            ("gamma discount rate", f"{self.gamma:g}",
             "Discount rate for future rewards"),
            ("Experience replay pool size N", f"{self.replay_capacity:,}",
             "Stored transition memories for experience replay"),
            ("Learning start", f"{self.learning_start:,}",
             "Initial steps before gradient updates begin"),
            ("Steps C to update target network", f"{self.target_update_steps:,}",
             "Frequency at which the target network is updated"),
            ("Number of hidden layers", f"{self.hidden_layers}",
             "Hidden layers between input and output"),
            ("Hidden layer size", f"{self.hidden_size}",
             "45 x 3 atoms of the ligand"),
            ("Activation function", self.activation.upper()
             if self.activation == "relu" else self.activation,
             "Hidden-unit activation"),
            ("Update rule", "RMSprop" if self.update_rule == "rmsprop"
             else self.update_rule, "Optimizer parameter update rule"),
            ("Learning rate", f"{self.learning_rate:g}",
             "Learning rate used by the optimizer"),
            ("Minibatch size", f"{self.minibatch_size}",
             "Training examples per update"),
        ]


def config_from_dict(data: dict) -> DQNDockingConfig:
    """Rebuild a :class:`DQNDockingConfig` from its dict form.

    The inverse of ``dataclasses.asdict`` as stored in run manifests:
    the exact config of any archived run directory loads back with
    ``config_from_dict(json.load(open("manifest.json"))["config"])``.
    Unknown keys are ignored so manifests written by newer versions
    still load.
    """
    names = {f.name for f in dataclasses.fields(DQNDockingConfig)}
    kwargs = {k: v for k, v in data.items() if k in names}
    if isinstance(kwargs.get("complex"), dict):
        cnames = {f.name for f in dataclasses.fields(ComplexConfig)}
        kwargs["complex"] = ComplexConfig(
            **{k: v for k, v in kwargs["complex"].items() if k in cnames}
        )
    return DQNDockingConfig(**kwargs)


#: The exact configuration of the paper's Section 4 experiment.
PAPER_CONFIG = DQNDockingConfig()


def ci_scale_config(
    episodes: int = 40,
    seed: int = 0,
    *,
    receptor_atoms: int = 96,
    ligand_atoms: int = 8,
    max_steps: int = 60,
    **overrides: Any,
) -> DQNDockingConfig:
    """A reduced-scale config preserving the paper's structure.

    The ratios that matter for the learning dynamics are kept: hidden size
    = 3 x ligand atoms, learning starts after a short random-action phase,
    the target network updates several times per run, and epsilon anneals
    over roughly half the total steps.
    """
    complex_cfg = ComplexConfig(
        receptor_atoms=receptor_atoms,
        ligand_atoms=ligand_atoms,
        receptor_radius=9.0,
        pocket_depth=3.5,
        initial_offset=7.0,
        rotatable_bonds=2,
        seed=seed + 2018,
    )
    total_steps = episodes * max_steps
    defaults: dict[str, Any] = dict(
        episodes=episodes,
        max_steps_per_episode=max_steps,
        state_space=0,  # resolved from the built complex by the env
        shift_length=0.8,
        rotation_angle_deg=5.0,
        initial_exploration_steps=max(2 * max_steps, total_steps // 20),
        epsilon_decay=1.0 / max(1, total_steps // 2),
        replay_capacity=max(4096, total_steps),
        learning_start=max(2 * max_steps, total_steps // 20),
        target_update_steps=max(50, total_steps // 40),
        hidden_size=3 * ligand_atoms,
        seed=seed,
        complex=complex_cfg,
    )
    defaults.update(overrides)
    return DQNDockingConfig(**defaults)
