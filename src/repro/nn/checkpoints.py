"""Checkpointing: save/restore network weights as ``.npz`` archives.

:func:`save_network` / :func:`load_network` persist bare parameters for
the paper's deployment story -- "reducing the computational cost once
the NN is already trained" -- where a trained Q-network is reloaded for
greedy rollouts.  :func:`network_arrays` / :func:`load_network_arrays`
expose the same validated parameter transport on in-memory dicts; the
full-state run checkpoints of :mod:`repro.runtime` are built on them.

Every load validates parameter count, per-layer shapes, *and* dtypes
against the target network before any write, raising
:class:`CheckpointMismatchError` on any disagreement -- never silently
broadcasting, casting a float64 archive into a float32 network, or
leaving the net half-written to crash mid-forward.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.network import MLP

PathLike = Union[str, Path]


class CheckpointMismatchError(ValueError):
    """A checkpoint does not fit the network/state it is loaded into.

    Raised *before* any mutation, so the target is left untouched.
    """


def network_arrays(net: MLP, *, prefix: str = "p") -> Dict[str, np.ndarray]:
    """All parameters as ``{prefix}{i}`` -> array (copies)."""
    return {f"{prefix}{i}": p.copy() for i, p in enumerate(net.params())}


def load_network_arrays(
    net: MLP,
    arrays: Dict[str, np.ndarray],
    *,
    prefix: str = "p",
    source: str = "checkpoint",
) -> MLP:
    """Load a :func:`network_arrays` dict into ``net``, validated.

    Parameter count, shapes, and dtypes are all checked against the
    target before the first write, so a mismatch leaves ``net``
    untouched and raises :class:`CheckpointMismatchError` with the
    offending layer named.
    """
    params = net.params()
    keys = [f"{prefix}{i}" for i in range(len(params))]
    missing = [k for k in keys if k not in arrays]
    relevant = [k for k in arrays if k.startswith(prefix)]
    if missing or len(relevant) != len(params):
        raise CheckpointMismatchError(
            f"{source} has {len(relevant)} parameter arrays, "
            f"network expects {len(params)}"
            + (f" (missing {missing})" if missing else "")
        )
    loaded = [np.asarray(arrays[k]) for k in keys]
    for i, (p, arr) in enumerate(zip(params, loaded)):
        if p.shape != arr.shape:
            raise CheckpointMismatchError(
                f"{source} parameter {i}: shape {arr.shape} does not "
                f"match network shape {p.shape}"
            )
        if p.dtype != arr.dtype:
            raise CheckpointMismatchError(
                f"{source} parameter {i}: dtype {arr.dtype} does not "
                f"match network dtype {p.dtype} (refusing a silent cast)"
            )
    for p, arr in zip(params, loaded):
        p[...] = arr
    return net


def save_network(net: MLP, path: PathLike) -> None:
    """Write all parameters to ``path`` (npz, keys ``p0``, ``p1``, ...)."""
    np.savez(path, **network_arrays(net))


def load_network(net: MLP, path: PathLike) -> MLP:
    """Load parameters saved by :func:`save_network` into ``net``.

    The architecture must match exactly -- parameter count, shapes, and
    dtypes are validated before any write (see
    :func:`load_network_arrays`), so a mismatch raises
    :class:`CheckpointMismatchError` and leaves ``net`` untouched.
    """
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    return load_network_arrays(net, arrays, source=str(path))
