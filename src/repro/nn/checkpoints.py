"""Checkpointing: save/restore network weights as ``.npz`` archives.

:func:`save_network` / :func:`load_network` persist bare parameters for
the paper's deployment story -- "reducing the computational cost once
the NN is already trained" -- where a trained Q-network is reloaded for
greedy rollouts.  :func:`network_arrays` / :func:`load_network_arrays`
expose the same validated parameter transport on in-memory dicts; the
full-state run checkpoints of :mod:`repro.runtime` are built on them.

Every load validates parameter count, per-layer shapes, *and* dtypes
against the target network before any write, raising
:class:`CheckpointMismatchError` on any disagreement -- never silently
broadcasting, casting a float64 archive into a float32 network, or
leaving the net half-written to crash mid-forward.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.network import MLP, build_mlp

PathLike = Union[str, Path]


class CheckpointMismatchError(ValueError):
    """A checkpoint does not fit the network/state it is loaded into.

    Raised *before* any mutation, so the target is left untouched.
    """


def network_arrays(net: MLP, *, prefix: str = "p") -> Dict[str, np.ndarray]:
    """All parameters as ``{prefix}{i}`` -> array (copies)."""
    return {f"{prefix}{i}": p.copy() for i, p in enumerate(net.params())}


def load_network_arrays(
    net: MLP,
    arrays: Dict[str, np.ndarray],
    *,
    prefix: str = "p",
    source: str = "checkpoint",
) -> MLP:
    """Load a :func:`network_arrays` dict into ``net``, validated.

    Parameter count, shapes, and dtypes are all checked against the
    target before the first write, so a mismatch leaves ``net``
    untouched and raises :class:`CheckpointMismatchError` with the
    offending layer named.
    """
    params = net.params()
    keys = [f"{prefix}{i}" for i in range(len(params))]
    missing = [k for k in keys if k not in arrays]
    relevant = [k for k in arrays if k.startswith(prefix)]
    if missing or len(relevant) != len(params):
        raise CheckpointMismatchError(
            f"{source} has {len(relevant)} parameter arrays, "
            f"network expects {len(params)}"
            + (f" (missing {missing})" if missing else "")
        )
    loaded = [np.asarray(arrays[k]) for k in keys]
    for i, (p, arr) in enumerate(zip(params, loaded)):
        if p.shape != arr.shape:
            raise CheckpointMismatchError(
                f"{source} parameter {i}: shape {arr.shape} does not "
                f"match network shape {p.shape}"
            )
        if p.dtype != arr.dtype:
            raise CheckpointMismatchError(
                f"{source} parameter {i}: dtype {arr.dtype} does not "
                f"match network dtype {p.dtype} (refusing a silent cast)"
            )
    for p, arr in zip(params, loaded):
        p[...] = arr
    return net


def mlp_from_arrays(
    arrays: Dict[str, np.ndarray],
    *,
    prefix: str = "p",
    activation: str = "relu",
    source: str = "checkpoint",
) -> MLP:
    """Reconstruct an :class:`MLP` from a :func:`network_arrays` dict.

    The architecture is inferred from the weight shapes alone -- the
    parameter list of :func:`build_mlp` networks alternates
    ``(in, out)`` weight matrices with ``(out,)`` biases, so the layer
    widths are fully determined -- which lets screening deployment
    rebuild a trained Q-network from a bare checkpoint without a config
    object travelling alongside the weights.  Compute dtype follows the
    stored arrays.  Malformed parameter sets (odd counts, non-chaining
    shapes, gaps in the index sequence) raise
    :class:`CheckpointMismatchError`.
    """
    keys = sorted(
        (
            k
            for k in arrays
            if k.startswith(prefix) and k[len(prefix) :].isdigit()
        ),
        key=lambda k: int(k[len(prefix) :]),
    )
    indices = [int(k[len(prefix) :]) for k in keys]
    if not keys or indices != list(range(len(keys))):
        raise CheckpointMismatchError(
            f"{source}: expected a contiguous {prefix}0..{prefix}N "
            f"parameter sequence, got {keys or 'no parameter arrays'}"
        )
    params = [np.asarray(arrays[k]) for k in keys]
    if len(params) % 2 != 0:
        raise CheckpointMismatchError(
            f"{source}: {len(params)} parameter arrays cannot form "
            "alternating weight/bias pairs"
        )
    weights = params[0::2]
    biases = params[1::2]
    for i, (w, b) in enumerate(zip(weights, biases)):
        if w.ndim != 2 or b.ndim != 1 or b.shape[0] != w.shape[1]:
            raise CheckpointMismatchError(
                f"{source} layer {i}: weight {w.shape} / bias "
                f"{b.shape} is not a Dense (in, out)/(out,) pair"
            )
        if i > 0 and w.shape[0] != weights[i - 1].shape[1]:
            raise CheckpointMismatchError(
                f"{source} layer {i}: fan-in {w.shape[0]} does not "
                f"chain from previous layer width "
                f"{weights[i - 1].shape[1]}"
            )
    net = build_mlp(
        int(weights[0].shape[0]),
        [int(w.shape[1]) for w in weights[:-1]],
        int(weights[-1].shape[1]),
        activation=activation,
        rng=0,
        dtype=params[0].dtype,
    )
    clean = {f"{prefix}{i}": p for i, p in enumerate(params)}
    return load_network_arrays(net, clean, prefix=prefix, source=source)


def save_network(net: MLP, path: PathLike) -> None:
    """Write all parameters to ``path`` (npz, keys ``p0``, ``p1``, ...)."""
    np.savez(path, **network_arrays(net))


def load_network(net: MLP, path: PathLike) -> MLP:
    """Load parameters saved by :func:`save_network` into ``net``.

    The architecture must match exactly -- parameter count, shapes, and
    dtypes are validated before any write (see
    :func:`load_network_arrays`), so a mismatch raises
    :class:`CheckpointMismatchError` and leaves ``net`` untouched.
    """
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    return load_network_arrays(net, arrays, source=str(path))
