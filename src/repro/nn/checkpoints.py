"""Checkpointing: save/restore network weights as ``.npz`` archives.

Only parameters are persisted (not optimizer state): the use case is the
paper's deployment story -- "reducing the computational cost once the NN
is already trained" -- where a trained Q-network is reloaded for greedy
rollouts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.network import MLP

PathLike = Union[str, Path]


def save_network(net: MLP, path: PathLike) -> None:
    """Write all parameters to ``path`` (npz, keys ``p0``, ``p1``, ...)."""
    arrays = {f"p{i}": p for i, p in enumerate(net.params())}
    np.savez(path, **arrays)


def load_network(net: MLP, path: PathLike) -> MLP:
    """Load parameters saved by :func:`save_network` into ``net``.

    The architecture must match; shapes are validated before any write,
    so a mismatch leaves ``net`` untouched.
    """
    with np.load(path) as data:
        params = net.params()
        keys = [f"p{i}" for i in range(len(params))]
        missing = [k for k in keys if k not in data]
        if missing or len(data.files) != len(params):
            raise ValueError(
                f"checkpoint has {len(data.files)} arrays, "
                f"network expects {len(params)}"
            )
        loaded = [data[k] for k in keys]
        for p, arr in zip(params, loaded):
            if p.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch: checkpoint {arr.shape} vs "
                    f"network {p.shape}"
                )
        for p, arr in zip(params, loaded):
            p[...] = arr
    return net
