"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator


def he_init(
    fan_in: int, fan_out: int, rng: SeedLike = None
) -> np.ndarray:
    """He-normal initialization -- the standard pairing for ReLU layers."""
    gen = as_generator(rng)
    std = np.sqrt(2.0 / fan_in)
    return gen.normal(0.0, std, size=(fan_in, fan_out))


def glorot_init(
    fan_in: int, fan_out: int, rng: SeedLike = None
) -> np.ndarray:
    """Glorot/Xavier-uniform initialization (tanh/sigmoid layers)."""
    gen = as_generator(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=(fan_in, fan_out))


INITIALIZERS = {"he": he_init, "glorot": glorot_init}
