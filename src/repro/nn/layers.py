"""Network layers with explicit forward/backward passes.

Each layer caches exactly what its backward pass needs and exposes
``params()`` / ``grads()`` as aligned lists of arrays so optimizers can
update in place without knowing layer internals.

Layers carry an explicit ``dtype`` (default float64, which the
finite-difference gradient checker needs); the DQN hot path builds
float32 networks.  :class:`Dense` and :class:`ReLU` reuse preallocated
forward/backward workspaces keyed by batch-row count, so steady-state
training allocates no new activation arrays.  **A layer's forward output
is a view of that workspace and is overwritten by its next forward call
with the same row count** -- callers that need two outputs of the same
network alive at once must copy the first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.nn.init import INITIALIZERS
from repro.utils.rng import SeedLike, as_generator


class Layer(ABC):
    """Base layer: forward caches, backward returns input gradient."""

    #: Compute/storage dtype; subclasses override per instance.
    dtype = np.dtype(np.float64)

    @abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Compute outputs; with ``train=True`` cache for backward."""

    @abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/dout`` to ``dL/din``, accumulating param grads."""

    def params(self) -> list[np.ndarray]:
        """Trainable arrays (shared references, not copies)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        for g in self.grads():
            g[...] = 0.0

    def _cast(self, x) -> np.ndarray:
        """View ``x`` in this layer's dtype (copies only on mismatch)."""
        return np.asarray(x, dtype=self.dtype)

    @staticmethod
    def _workspace(cache: dict, rows: int, cols: int, dtype) -> np.ndarray:
        """Reusable (rows, cols) buffer from ``cache``, keyed by rows."""
        buf = cache.get(rows)
        if buf is None:
            buf = cache[rows] = np.empty((rows, cols), dtype=dtype)
        return buf


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he",
        rng: SeedLike = None,
        dtype=np.float64,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        try:
            initializer = INITIALIZERS[init]
        except KeyError:
            raise ValueError(f"unknown initializer {init!r}") from None
        gen = as_generator(rng)
        self.dtype = np.dtype(dtype)
        self.w = np.ascontiguousarray(
            initializer(in_features, out_features, gen), dtype=self.dtype
        )
        self.b = np.zeros(out_features, dtype=self.dtype)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        self._out: dict[int, np.ndarray] = {}
        self._gin: dict[int, np.ndarray] = {}
        self._dw_ws = np.empty_like(self.w)
        self._db_ws = np.empty_like(self.b)

    @property
    def in_features(self) -> int:
        """Input width."""
        return self.w.shape[0]

    @property
    def out_features(self) -> int:
        """Output width."""
        return self.w.shape[1]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = self._cast(x)
        if train:
            self._x = x
        if x.ndim != 2:
            return x @ self.w + self.b
        out = self._workspace(
            self._out, x.shape[0], self.out_features, self.dtype
        )
        np.matmul(x, self.w, out=out)
        out += self.b
        return out

    def backward(
        self, grad_out: np.ndarray, *, need_input_grad: bool = True
    ) -> np.ndarray | None:
        """Accumulate parameter grads; propagate ``dL/din``.

        ``need_input_grad=False`` skips the input-gradient matmul and
        returns ``None`` — for the *first* layer of a network that
        matmul is pure waste, and at DQN-Docking shape (in_features
        16,599) it costs as much as the whole forward pass.
        """
        if self._x is None:
            raise RuntimeError("backward before forward(train=True)")
        g = self._cast(grad_out)
        np.matmul(self._x.T, g, out=self._dw_ws)
        self.dw += self._dw_ws
        np.sum(g, axis=0, out=self._db_ws)
        self.db += self._db_ws
        if not need_input_grad:
            return None
        gin = self._workspace(
            self._gin, g.shape[0], self.in_features, self.dtype
        )
        np.matmul(g, self.w.T, out=gin)
        return gin

    def params(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dw, self.db]

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, *, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._mask: np.ndarray | None = None
        self._out: dict[int, np.ndarray] = {}
        self._gin: dict[int, np.ndarray] = {}
        self._masks: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = self._cast(x)
        if x.ndim != 2:
            if train:
                self._mask = x > 0
            return np.maximum(x, 0.0)
        out = self._workspace(self._out, x.shape[0], x.shape[1], self.dtype)
        np.maximum(x, 0.0, out=out)
        if train:
            mask = self._workspace(
                self._masks, x.shape[0], x.shape[1], bool
            )
            np.greater(x, 0.0, out=mask)
            self._mask = mask
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward(train=True)")
        g = self._cast(grad_out)
        if g.ndim != 2:
            return g * self._mask
        gin = self._workspace(self._gin, g.shape[0], g.shape[1], self.dtype)
        np.multiply(g, self._mask, out=gin)
        return gin


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self, *, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        y = np.tanh(self._cast(x))
        if train:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward before forward(train=True)")
        return self._cast(grad_out) * (1.0 - self._y**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self, *, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = self._cast(x)
        # Branch on sign so the exponential argument is always <= 0
        # (np.where would still evaluate the overflowing branch).
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        if train:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward before forward(train=True)")
        return self._cast(grad_out) * self._y * (1.0 - self._y)


class Identity(Layer):
    """Pass-through activation (linear output heads)."""

    def __init__(self, *, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self._cast(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self._cast(grad_out)


ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "linear": Identity,
}
