"""Network layers with explicit forward/backward passes.

Each layer caches exactly what its backward pass needs and exposes
``params()`` / ``grads()`` as aligned lists of arrays so optimizers can
update in place without knowing layer internals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.nn.init import INITIALIZERS
from repro.utils.rng import SeedLike, as_generator


class Layer(ABC):
    """Base layer: forward caches, backward returns input gradient."""

    @abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Compute outputs; with ``train=True`` cache for backward."""

    @abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/dout`` to ``dL/din``, accumulating param grads."""

    def params(self) -> list[np.ndarray]:
        """Trainable arrays (shared references, not copies)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        for g in self.grads():
            g[...] = 0.0


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he",
        rng: SeedLike = None,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        try:
            initializer = INITIALIZERS[init]
        except KeyError:
            raise ValueError(f"unknown initializer {init!r}") from None
        gen = as_generator(rng)
        self.w = initializer(in_features, out_features, gen)
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        """Input width."""
        return self.w.shape[0]

    @property
    def out_features(self) -> int:
        """Output width."""
        return self.w.shape[1]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if train:
            self._x = x
        return x @ self.w + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward(train=True)")
        g = np.asarray(grad_out, dtype=float)
        self.dw += self._x.T @ g
        self.db += g.sum(axis=0)
        return g @ self.w.T

    def params(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dw, self.db]

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if train:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward(train=True)")
        return np.asarray(grad_out, dtype=float) * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        y = np.tanh(np.asarray(x, dtype=float))
        if train:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward before forward(train=True)")
        return np.asarray(grad_out, dtype=float) * (1.0 - self._y**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        # Branch on sign so the exponential argument is always <= 0
        # (np.where would still evaluate the overflowing branch).
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        if train:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward before forward(train=True)")
        return np.asarray(grad_out, dtype=float) * self._y * (1.0 - self._y)


class Identity(Layer):
    """Pass-through activation (linear output heads)."""

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.asarray(grad_out, dtype=float)


ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "linear": Identity,
}
