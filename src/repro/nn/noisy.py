"""NoisyNet layers (Fortunato et al. 2018; Rainbow component).

Noisy linear layers replace epsilon-greedy exploration with learned,
state-conditional parameter noise: ``w = mu_w + sigma_w * eps_w`` with
factorized Gaussian noise resampled per acting step.  Because
``sigma`` is trained, the network *learns how much to explore* and
anneals its own noise -- one of the Rainbow upgrades the paper's
Section 5 points to.

The layer degrades gracefully: with noise frozen at zero it is exactly a
:class:`~repro.nn.layers.Dense` layer, which the tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.utils.rng import SeedLike, as_generator


def _scaled_noise(rng: np.random.Generator, n: int) -> np.ndarray:
    """Factorized-noise helper: f(x) = sign(x) * sqrt(|x|)."""
    x = rng.normal(size=n)
    return np.sign(x) * np.sqrt(np.abs(x))


class NoisyDense(Layer):
    """Factorized-Gaussian noisy linear layer.

    Parameters are (mu_w, sigma_w, mu_b, sigma_b); the effective weights
    for a forward pass are ``mu + sigma * eps`` where ``eps`` is the
    outer product of per-input and per-output noise vectors
    (:func:`resample_noise`).  Gradients flow to both mu and sigma.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        sigma0: float = 0.5,
        rng: SeedLike = None,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        gen = as_generator(rng)
        bound = 1.0 / np.sqrt(in_features)
        self.mu_w = gen.uniform(-bound, bound, size=(in_features, out_features))
        self.sigma_w = np.full(
            (in_features, out_features), sigma0 / np.sqrt(in_features)
        )
        self.mu_b = gen.uniform(-bound, bound, size=out_features)
        self.sigma_b = np.full(out_features, sigma0 / np.sqrt(in_features))
        self.d_mu_w = np.zeros_like(self.mu_w)
        self.d_sigma_w = np.zeros_like(self.sigma_w)
        self.d_mu_b = np.zeros_like(self.mu_b)
        self.d_sigma_b = np.zeros_like(self.sigma_b)
        self._noise_rng = as_generator(gen.integers(2**63))
        self._eps_in = np.zeros(in_features)
        self._eps_out = np.zeros(out_features)
        self._x: np.ndarray | None = None
        self.resample_noise()

    @property
    def in_features(self) -> int:
        """Input width."""
        return self.mu_w.shape[0]

    @property
    def out_features(self) -> int:
        """Output width."""
        return self.mu_w.shape[1]

    def resample_noise(self) -> None:
        """Draw fresh factorized noise (call once per acting step)."""
        self._eps_in = _scaled_noise(self._noise_rng, self.in_features)
        self._eps_out = _scaled_noise(self._noise_rng, self.out_features)

    def zero_noise(self) -> None:
        """Freeze noise at zero (deterministic evaluation mode)."""
        self._eps_in = np.zeros(self.in_features)
        self._eps_out = np.zeros(self.out_features)

    def _eps_w(self) -> np.ndarray:
        return np.outer(self._eps_in, self._eps_out)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if train:
            self._x = x
        w = self.mu_w + self.sigma_w * self._eps_w()
        b = self.mu_b + self.sigma_b * self._eps_out
        return x @ w + b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward(train=True)")
        g = np.asarray(grad_out, dtype=float)
        eps_w = self._eps_w()
        grad_w = self._x.T @ g
        self.d_mu_w += grad_w
        self.d_sigma_w += grad_w * eps_w
        grad_b = g.sum(axis=0)
        self.d_mu_b += grad_b
        self.d_sigma_b += grad_b * self._eps_out
        return g @ (self.mu_w + self.sigma_w * eps_w).T

    def params(self) -> list[np.ndarray]:
        return [self.mu_w, self.sigma_w, self.mu_b, self.sigma_b]

    def grads(self) -> list[np.ndarray]:
        return [self.d_mu_w, self.d_sigma_w, self.d_mu_b, self.d_sigma_b]

    def mean_sigma(self) -> float:
        """Average |sigma| -- the network's current exploration appetite."""
        return float(
            (np.abs(self.sigma_w).mean() + np.abs(self.sigma_b).mean()) / 2
        )


def resample_network_noise(net) -> None:
    """Resample every NoisyDense layer in an MLP (no-op for others)."""
    for layer in net.layers:
        if isinstance(layer, NoisyDense):
            layer.resample_noise()


def zero_network_noise(net) -> None:
    """Freeze every NoisyDense layer's noise (evaluation mode)."""
    for layer in net.layers:
        if isinstance(layer, NoisyDense):
            layer.zero_noise()


def build_noisy_mlp(
    input_dim: int,
    hidden_sizes,
    output_dim: int,
    *,
    sigma0: float = 0.5,
    rng: SeedLike = None,
):
    """ReLU MLP whose linear layers are all noisy."""
    from repro.nn.layers import ReLU
    from repro.nn.network import MLP

    gen = as_generator(rng)
    layers: list[Layer] = []
    prev = input_dim
    for width in hidden_sizes:
        layers.append(NoisyDense(prev, width, sigma0=sigma0, rng=gen))
        layers.append(ReLU())
        prev = width
    layers.append(NoisyDense(prev, output_dim, sigma0=sigma0, rng=gen))
    return MLP(layers)
