"""Parameter-update rules: SGD, RMSprop (the paper's choice), Adam.

RMSprop follows the DQN-Nature formulation the paper cites [35]: a
running average of squared gradients normalizes each step.  All
optimizers update parameter arrays in place (they hold references from
``MLP.params()``) and support global gradient-norm clipping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Optimizer(ABC):
    """Base: binds (params, grads) references and steps in place."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float,
        *,
        max_grad_norm: float | None = None,
    ):
        if len(params) != len(grads):
            raise ValueError("params and grads must be aligned")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.grads = grads
        self.lr = float(lr)
        self.max_grad_norm = max_grad_norm
        self.steps = 0
        #: One scratch array per parameter, reused every step so the
        #: update rules run without allocating temporaries.
        self._ws = [np.empty_like(p) for p in params]

    def _clip(self) -> None:
        if self.max_grad_norm is None:
            return
        total = np.sqrt(
            sum(float(np.dot(g.reshape(-1), g.reshape(-1))) for g in self.grads)
        )
        if total > self.max_grad_norm and total > 0:
            scale = self.max_grad_norm / total
            for g in self.grads:
                g *= scale

    def step(self) -> None:
        """Apply one update from the current gradients."""
        self._clip()
        self.steps += 1
        self._apply()

    @abstractmethod
    def _apply(self) -> None:
        """Rule-specific in-place parameter update."""

    def _state_slots(self) -> dict:
        """Named per-parameter state lists (momentum, squared avgs...)."""
        return {}

    def state_dict(self) -> dict:
        """Full optimizer state: step counter plus every slot array.

        The scratch workspaces (``_ws``) are excluded -- they carry no
        information across steps.
        """
        state: dict = {"rule": type(self).__name__.lower(), "steps": self.steps}
        for name, slots in self._state_slots().items():
            state[name] = {f"s{i}": a.copy() for i, a in enumerate(slots)}
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated, in place)."""
        from repro.nn.checkpoints import CheckpointMismatchError

        rule = state.get("rule")
        if rule != type(self).__name__.lower():
            raise CheckpointMismatchError(
                f"optimizer rule mismatch: checkpoint {rule!r} vs "
                f"{type(self).__name__.lower()!r}"
            )
        slots_by_name = self._state_slots()
        staged = []
        for name, slots in slots_by_name.items():
            saved = state.get(name)
            if not isinstance(saved, dict) or len(saved) != len(slots):
                raise CheckpointMismatchError(
                    f"optimizer slot {name!r}: checkpoint has "
                    f"{len(saved) if isinstance(saved, dict) else 0} arrays, "
                    f"expected {len(slots)}"
                )
            for i, dst in enumerate(slots):
                arr = np.asarray(saved[f"s{i}"])
                if arr.shape != dst.shape:
                    raise CheckpointMismatchError(
                        f"optimizer slot {name}[{i}]: shape {arr.shape} vs "
                        f"{dst.shape}"
                    )
                staged.append((dst, arr))
        for dst, arr in staged:
            dst[...] = arr
        self.steps = int(state["steps"])


class SGD(Optimizer):
    """Vanilla/momentum stochastic gradient descent."""

    def __init__(self, params, grads, lr: float = 0.01, momentum: float = 0.0, **kw):
        super().__init__(params, grads, lr, **kw)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def _apply(self) -> None:
        for p, g, v, ws in zip(
            self.params, self.grads, self._velocity, self._ws
        ):
            np.multiply(g, self.lr, out=ws)
            if self.momentum:
                v *= self.momentum
                v -= ws
                p += v
            else:
                p -= ws

    def _state_slots(self) -> dict:
        return {"velocity": self._velocity}


class RMSprop(Optimizer):
    """RMSprop with the DQN-Nature hyperparameters as defaults."""

    def __init__(
        self,
        params,
        grads,
        lr: float = 0.00025,
        rho: float = 0.95,
        eps: float = 0.01,
        **kw,
    ):
        super().__init__(params, grads, lr, **kw)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie in (0, 1)")
        self.rho = rho
        self.eps = eps
        self._sq = [np.zeros_like(p) for p in params]

    def _apply(self) -> None:
        for p, g, s, ws in zip(self.params, self.grads, self._sq, self._ws):
            np.multiply(g, g, out=ws)
            s *= self.rho
            ws *= 1.0 - self.rho
            s += ws
            np.sqrt(s, out=ws)
            ws += self.eps
            np.divide(g, ws, out=ws)
            ws *= self.lr
            p -= ws

    def _state_slots(self) -> dict:
        return {"square_avg": self._sq}


class Adam(Optimizer):
    """Adam with bias correction (the paper's named alternative)."""

    def __init__(
        self,
        params,
        grads,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        **kw,
    ):
        super().__init__(params, grads, lr, **kw)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]

    def _apply(self) -> None:
        t = self.steps
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for p, g, m, v, ws in zip(
            self.params, self.grads, self._m, self._v, self._ws
        ):
            np.multiply(g, 1.0 - self.beta1, out=ws)
            m *= self.beta1
            m += ws
            np.multiply(g, g, out=ws)
            ws *= 1.0 - self.beta2
            v *= self.beta2
            v += ws
            np.divide(v, bc2, out=ws)
            np.sqrt(ws, out=ws)
            ws += self.eps
            # Same-shape elementwise ufuncs tolerate out aliasing an input.
            np.divide(m, ws, out=ws)
            ws *= self.lr / bc1
            p -= ws

    def _state_slots(self) -> dict:
        return {"exp_avg": self._m, "exp_avg_sq": self._v}


def make_optimizer(
    name: str, params, grads, lr: float, **kwargs
) -> Optimizer:
    """Optimizer factory keyed by config string."""
    table = {"sgd": SGD, "rmsprop": RMSprop, "adam": Adam}
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}") from None
    return cls(params, grads, lr, **kwargs)
