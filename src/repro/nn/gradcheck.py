"""Finite-difference gradient checking.

The tests verify every layer's analytic backward pass against central
differences -- the standard correctness oracle for hand-written backprop.
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import MLP


def numerical_gradient(
    f, param: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``param``.

    ``param`` is perturbed in place and restored; ``f`` must depend on it
    by reference (true for network parameters).
    """
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = param[idx]
        param[idx] = orig + eps
        f_plus = f()
        param[idx] = orig - eps
        f_minus = f()
        param[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(
    net: MLP,
    x: np.ndarray,
    loss_fn,
    target: np.ndarray,
    *,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> float:
    """Max relative error between analytic and numerical gradients.

    Runs one forward/backward with ``loss_fn`` (a ``(pred, target) ->
    (value, grad)`` callable), then compares every parameter gradient to
    the finite-difference estimate.  Raises ``AssertionError`` beyond the
    tolerances; returns the worst relative error observed.
    """
    net.zero_grad()
    pred = net.forward(x, train=True)
    _value, grad_out = loss_fn(pred, target)
    net.backward(grad_out)
    analytic = [g.copy() for g in net.grads()]

    def scalar_loss() -> float:
        p = net.forward(x, train=False)
        value, _g = loss_fn(p, target)
        return value

    worst = 0.0
    for p, g in zip(net.params(), analytic):
        num = numerical_gradient(scalar_loss, p, eps=eps)
        denom = np.maximum(np.abs(num) + np.abs(g), 1e-12)
        rel = np.abs(num - g) / denom
        mask = np.abs(num - g) > atol
        if mask.any():
            worst = max(worst, float(rel[mask].max()))
            if (rel[mask] > rtol).any():
                raise AssertionError(
                    f"gradient mismatch: max rel err {rel[mask].max():.2e} "
                    f"(analytic vs numerical)"
                )
    return worst
