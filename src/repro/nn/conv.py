"""Convolutional layers for the image-state extension (paper Section 5).

The paper proposes replacing the raw coordinate state with "a stack of
receptor-ligand images" processed by a convolutional network.  This
module provides the needed layers in the same forward/backward protocol
as :mod:`repro.nn.layers`:

- :class:`Reshape` -- flat replay-buffer vectors <-> (c, h, w) images;
- :class:`Conv2D` -- im2col-based 2-D convolution (stride, same/valid);
- :class:`MaxPool2D` -- non-overlapping max pooling;
- :class:`Flatten` -- image -> vector before the dense head;
- :func:`build_cnn` -- the DQN-Nature-shaped factory.

Data layout is (batch, channels, height, width) throughout.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.init import he_init
from repro.nn.layers import ACTIVATIONS, Dense, Layer
from repro.nn.network import MLP
from repro.utils.rng import SeedLike, as_generator


class Reshape(Layer):
    """Reshape (batch, in) -> (batch, *shape); inverse on backward."""

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(int(s) for s in shape)
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if train:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], *self.shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(train=True)")
        return np.asarray(grad_out, dtype=float).reshape(self._in_shape)


class Flatten(Layer):
    """Flatten everything after the batch axis."""

    def __init__(self) -> None:
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if train:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(train=True)")
        return np.asarray(grad_out, dtype=float).reshape(self._in_shape)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """(b, c, h, w) -> (b, out_h * out_w, c * kh * kw) patch matrix.

    Built from a strided view; the copy happens once at the reshape so
    patches are contiguous for the GEMM.
    """
    b, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        b, out_h * out_w, c * kh * kw
    )
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2D(Layer):
    """2-D convolution via im2col + GEMM.

    Parameters: weight (out_c, in_c, kh, kw) He-initialized, bias
    (out_c,).  ``padding`` is "valid" (none) or "same" (zero-pad so the
    output spatial size equals ceil(input / stride)).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: str = "valid",
        rng: SeedLike = None,
    ):
        if kernel_size < 1 or stride < 1:
            raise ValueError("kernel_size and stride must be >= 1")
        if padding not in ("valid", "same"):
            raise ValueError(f"unknown padding {padding!r}")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        gen = as_generator(rng)
        self.w = he_init(fan_in, out_channels, gen).T.reshape(
            out_channels, in_channels, kernel_size, kernel_size
        )
        self.b = np.zeros(out_channels)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._pad: tuple[int, int, int, int] = (0, 0, 0, 0)
        self._out_hw: tuple[int, int] = (0, 0)

    def _pad_amounts(self, h: int, w: int) -> tuple[int, int, int, int]:
        if self.padding == "valid":
            return (0, 0, 0, 0)
        k, s = self.kernel_size, self.stride
        out_h = math.ceil(h / s)
        out_w = math.ceil(w / s)
        pad_h = max(0, (out_h - 1) * s + k - h)
        pad_w = max(0, (out_w - 1) * s + k - w)
        return (
            pad_h // 2,
            pad_h - pad_h // 2,
            pad_w // 2,
            pad_w - pad_w // 2,
        )

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (b, {self.in_channels}, h, w), got {x.shape}"
            )
        top, bottom, left, right = self._pad_amounts(x.shape[2], x.shape[3])
        if any((top, bottom, left, right)):
            x = np.pad(
                x, ((0, 0), (0, 0), (top, bottom), (left, right))
            )
        cols, out_h, out_w = _im2col(
            x, self.kernel_size, self.kernel_size, self.stride
        )
        w_mat = self.w.reshape(self.out_channels, -1)  # (oc, c*kh*kw)
        out = cols @ w_mat.T + self.b  # (b, oh*ow, oc)
        if train:
            self._cols = cols
            self._x_shape = x.shape
            self._pad = (top, bottom, left, right)
            self._out_hw = (out_h, out_w)
        b = x.shape[0]
        return out.transpose(0, 2, 1).reshape(
            b, self.out_channels, out_h, out_w
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward before forward(train=True)")
        g = np.asarray(grad_out, dtype=float)
        b, oc, out_h, out_w = g.shape
        g_mat = g.reshape(b, oc, out_h * out_w).transpose(0, 2, 1)
        # Parameter gradients.
        w_mat = self.w.reshape(oc, -1)
        self.dw += np.einsum("bpo,bpk->ok", g_mat, self._cols).reshape(
            self.w.shape
        )
        self.db += g_mat.sum(axis=(0, 1))
        # Input gradient: scatter columns back (col2im).
        grad_cols = g_mat @ w_mat  # (b, oh*ow, c*kh*kw)
        _bs, c, h, w = self._x_shape
        grad_x = np.zeros(self._x_shape)
        k, s = self.kernel_size, self.stride
        grad_cols = grad_cols.reshape(b, out_h, out_w, c, k, k)
        for ki in range(k):
            for kj in range(k):
                grad_x[
                    :, :, ki : ki + out_h * s : s, kj : kj + out_w * s : s
                ] += grad_cols[:, :, :, :, ki, kj].transpose(0, 3, 1, 2)
        top, bottom, left, right = self._pad
        if any((top, bottom, left, right)):
            grad_x = grad_x[
                :,
                :,
                top : h - bottom,
                left : w - right,
            ]
        return grad_x

    def params(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dw, self.db]

    def output_shape(self, h: int, w: int) -> tuple[int, int, int]:
        """(channels, out_h, out_w) for an (h, w) input."""
        top, bottom, left, right = self._pad_amounts(h, w)
        h2 = h + top + bottom
        w2 = w + left + right
        out_h = (h2 - self.kernel_size) // self.stride + 1
        out_w = (w2 - self.kernel_size) // self.stride + 1
        return self.out_channels, out_h, out_w


class MaxPool2D(Layer):
    """Non-overlapping max pooling with square window ``size``."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = int(size)
        self._mask: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        b, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            # Truncate ragged borders (standard "valid" pooling).
            x = x[:, :, : h - h % s, : w - w % s]
            b, c, h, w = x.shape
        view = x.reshape(b, c, h // s, s, w // s, s)
        out = view.max(axis=(3, 5))
        if train:
            self._in_shape = x.shape
            self._mask = view == out[:, :, :, None, :, None]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._in_shape is None:
            raise RuntimeError("backward before forward(train=True)")
        g = np.asarray(grad_out, dtype=float)
        expanded = self._mask * g[:, :, :, None, :, None]
        # Ties split the gradient? Standard practice routes to all argmax
        # positions; normalize so the total matches (rare with floats).
        counts = self._mask.sum(axis=(3, 5), keepdims=True)
        expanded = expanded / counts
        return expanded.reshape(self._in_shape)


def build_cnn(
    input_shape: tuple[int, int, int],
    n_outputs: int,
    *,
    conv_channels: Sequence[int] = (16, 32),
    kernel_size: int = 3,
    stride: int = 1,
    pool: int = 2,
    hidden: int = 128,
    activation: str = "relu",
    rng: SeedLike = None,
) -> MLP:
    """A DQN-Nature-shaped CNN taking *flat* state vectors.

    ``input_shape`` is (channels, height, width); the first layer
    reshapes the flat replay-buffer vector, conv/pool blocks follow, and
    a dense head emits ``n_outputs`` Q-values.  Returns a plain
    :class:`~repro.nn.network.MLP`, so agents, optimizers and
    checkpoints work unchanged.
    """
    try:
        act_cls = ACTIVATIONS[activation]
    except KeyError:
        raise ValueError(f"unknown activation {activation!r}") from None
    gen = as_generator(rng)
    c, h, w = input_shape
    layers: list[Layer] = [Reshape(input_shape)]
    prev_c, cur_h, cur_w = c, h, w
    for out_c in conv_channels:
        conv = Conv2D(
            prev_c, out_c, kernel_size, stride, padding="same", rng=gen
        )
        layers.append(conv)
        layers.append(act_cls())
        _c, cur_h, cur_w = conv.output_shape(cur_h, cur_w)
        if pool > 1 and cur_h >= pool and cur_w >= pool:
            layers.append(MaxPool2D(pool))
            cur_h //= pool
            cur_w //= pool
        prev_c = out_c
    layers.append(Flatten())
    flat = prev_c * cur_h * cur_w
    layers.append(Dense(flat, hidden, rng=gen))
    layers.append(act_cls())
    layers.append(Dense(hidden, n_outputs, rng=gen))
    return MLP(layers)
