"""Sequential MLP container and the Table 1 network factory."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import ACTIVATIONS, Dense, Layer
from repro.utils.rng import SeedLike, as_generator


class MLP:
    """A sequential stack of layers with shared forward/backward plumbing."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Run the stack; 1-D inputs are treated as a single sample.

        Layers own their compute dtype and output workspaces (see
        :mod:`repro.nn.layers`): the result may be a view of a reused
        buffer that the next forward call of the same batch size
        overwrites.
        """
        h = np.asarray(x)
        squeeze = h.ndim == 1
        if squeeze:
            h = h[None, :]
        for layer in self.layers:
            h = layer.forward(h, train=train)
        return h[0] if squeeze else h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass (no caches)."""
        return self.forward(x, train=False)

    __call__ = predict

    def backward(
        self, grad_out: np.ndarray, *, need_input_grad: bool = True
    ) -> np.ndarray | None:
        """Backpropagate from the output gradient; returns input gradient.

        ``need_input_grad=False`` lets a :class:`Dense` first layer skip
        its input-gradient matmul (and returns ``None``) — the learner's
        hot path, where nothing sits below the network.
        """
        g = np.asarray(grad_out)
        if g.ndim == 1:
            g = g[None, :]
        first = self.layers[0]
        for layer in reversed(self.layers):
            if (
                layer is first
                and not need_input_grad
                and isinstance(layer, Dense)
            ):
                return layer.backward(g, need_input_grad=False)
            g = layer.backward(g)
        return g

    def params(self) -> list[np.ndarray]:
        """All trainable arrays, layer order."""
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        """All gradient arrays, aligned with :meth:`params`."""
        return [g for layer in self.layers for g in layer.grads()]

    def zero_grad(self) -> None:
        """Reset all accumulated gradients."""
        for layer in self.layers:
            layer.zero_grad()

    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params())

    def copy_weights_from(self, other: "MLP") -> None:
        """In-place copy of ``other``'s parameters (target-network sync)."""
        mine, theirs = self.params(), other.params()
        if len(mine) != len(theirs):
            raise ValueError("network architectures differ")
        for dst, src in zip(mine, theirs):
            if dst.shape != src.shape:
                raise ValueError(
                    f"parameter shape mismatch {dst.shape} vs {src.shape}"
                )
            dst[...] = src

    def clone(self) -> "MLP":
        """Structural copy with identical weights (fresh arrays)."""
        import copy

        twin = copy.deepcopy(self)
        twin.zero_grad()
        return twin

    def __repr__(self) -> str:
        inner = ", ".join(repr(l) for l in self.layers)
        return f"MLP([{inner}], params={self.n_parameters()})"


def build_mlp(
    input_dim: int,
    hidden_sizes: Sequence[int],
    output_dim: int,
    *,
    activation: str = "relu",
    rng: SeedLike = None,
    dtype=np.float64,
) -> MLP:
    """The paper's architecture: Dense->act per hidden layer, linear head.

    Table 1 settings correspond to ``hidden_sizes=(135, 135)``,
    ``activation="relu"``, ``output_dim=12``.  ``dtype`` selects the
    compute precision of every layer; the DQN agent builds float32
    networks (the library default stays float64 so finite-difference
    gradient checks remain valid).  Weights are initialized in float64
    and then cast, so a float32 network starts from the same draws as
    its float64 twin under the same seed.
    """
    try:
        act_cls = ACTIVATIONS[activation]
    except KeyError:
        raise ValueError(f"unknown activation {activation!r}") from None
    init = "he" if activation == "relu" else "glorot"
    gen = as_generator(rng)
    layers: list[Layer] = []
    prev = input_dim
    for width in hidden_sizes:
        layers.append(Dense(prev, width, init=init, rng=gen, dtype=dtype))
        layers.append(act_cls(dtype=dtype))
        prev = width
    layers.append(Dense(prev, output_dim, init=init, rng=gen, dtype=dtype))
    return MLP(layers)
