"""Loss functions returning (value, gradient) pairs.

The paper's Bellman residual is squared error; Huber is the DQN-Nature
practical variant offered through config.  Both support per-sample
weights, which the prioritized-replay extension needs for its
importance-sampling correction.
"""

from __future__ import annotations

import numpy as np


class MSELoss:
    """Mean squared error ``mean(w * (pred - target)^2)``."""

    def __call__(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        p = np.asarray(pred, dtype=float)
        t = np.asarray(target, dtype=float)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch {p.shape} vs {t.shape}")
        diff = p - t
        w = np.ones_like(diff) if weights is None else np.broadcast_to(
            np.asarray(weights, dtype=float), diff.shape
        )
        n = diff.size
        value = float((w * diff**2).sum() / n)
        grad = 2.0 * w * diff / n
        return value, grad


class HuberLoss:
    """Huber loss with threshold ``delta`` (quadratic core, linear tails)."""

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def __call__(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        p = np.asarray(pred, dtype=float)
        t = np.asarray(target, dtype=float)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch {p.shape} vs {t.shape}")
        diff = p - t
        w = np.ones_like(diff) if weights is None else np.broadcast_to(
            np.asarray(weights, dtype=float), diff.shape
        )
        n = diff.size
        absd = np.abs(diff)
        quad = absd <= self.delta
        value_terms = np.where(
            quad,
            0.5 * diff**2,
            self.delta * (absd - 0.5 * self.delta),
        )
        value = float((w * value_terms).sum() / n)
        grad = np.where(quad, diff, self.delta * np.sign(diff)) * w / n
        return value, grad


def make_loss(name: str, **kwargs):
    """Loss factory keyed by config string."""
    if name == "mse":
        return MSELoss()
    if name == "huber":
        return HuberLoss(**kwargs)
    raise ValueError(f"unknown loss {name!r}")
