"""Dueling network architecture (Wang et al.; paper Section 5 extension).

The dueling head splits the final representation into a scalar state
value ``V(s)`` and per-action advantages ``A(s, a)``, recombined as::

    Q(s, a) = V(s) + A(s, a) - mean_a' A(s, a')

The mean-subtraction keeps the decomposition identifiable.  The head is
implemented as a :class:`~repro.nn.layers.Layer` so it slots into the
same ``MLP`` container, optimizers and checkpoints as everything else.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import ACTIVATIONS, Dense, Layer
from repro.nn.network import MLP
from repro.utils.rng import SeedLike, as_generator


class DuelingHead(Layer):
    """Parallel value/advantage streams with mean-centered aggregation."""

    def __init__(
        self,
        in_features: int,
        n_actions: int,
        *,
        rng: SeedLike = None,
        dtype=np.float64,
    ):
        gen = as_generator(rng)
        self.dtype = np.dtype(dtype)
        self.value = Dense(in_features, 1, rng=gen, dtype=dtype)
        self.advantage = Dense(in_features, n_actions, rng=gen, dtype=dtype)
        self.n_actions = int(n_actions)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        v = self.value.forward(x, train=train)  # (b, 1)
        a = self.advantage.forward(x, train=train)  # (b, k)
        return v + a - a.mean(axis=1, keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self._cast(grad_out)
        # dQ/dV = 1 for every action -> value grad is the row sum.
        grad_v = g.sum(axis=1, keepdims=True)
        # dQ_a/dA_a' = delta(a,a') - 1/k.
        grad_a = g - g.sum(axis=1, keepdims=True) / self.n_actions
        gx_v = self.value.backward(grad_v)
        gx_a = self.advantage.backward(grad_a)
        return gx_v + gx_a

    def params(self) -> list[np.ndarray]:
        return self.value.params() + self.advantage.params()

    def grads(self) -> list[np.ndarray]:
        return self.value.grads() + self.advantage.grads()


def DuelingMLP(
    input_dim: int,
    hidden_sizes: Sequence[int],
    n_actions: int,
    *,
    activation: str = "relu",
    rng: SeedLike = None,
    dtype=np.float64,
) -> MLP:
    """An MLP trunk with a :class:`DuelingHead` output."""
    try:
        act_cls = ACTIVATIONS[activation]
    except KeyError:
        raise ValueError(f"unknown activation {activation!r}") from None
    gen = as_generator(rng)
    layers: list[Layer] = []
    prev = input_dim
    for width in hidden_sizes:
        layers.append(Dense(prev, width, rng=gen, dtype=dtype))
        layers.append(act_cls(dtype=dtype))
        prev = width
    layers.append(DuelingHead(prev, n_actions, rng=gen, dtype=dtype))
    return MLP(layers)
