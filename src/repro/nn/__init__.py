"""From-scratch NumPy deep-learning stack.

The paper trains a 2-hidden-layer MLP (135 ReLU units each) with RMSprop
at lr 2.5e-4 and minibatch 32 (Table 1, DL block).  No deep-learning
framework is available offline, so this subpackage implements the needed
subset: dense layers with backprop, MSE/Huber losses, SGD/RMSprop/Adam,
He/Glorot initialization, a dueling value-advantage head for the
Section 5 extension, npz checkpointing, and finite-difference gradient
checking used by the tests.
"""

from repro.nn.init import he_init, glorot_init
from repro.nn.layers import Dense, ReLU, Tanh, Sigmoid, Identity, Layer
from repro.nn.network import MLP, build_mlp
from repro.nn.losses import MSELoss, HuberLoss, make_loss
from repro.nn.optimizers import SGD, RMSprop, Adam, make_optimizer
from repro.nn.dueling import DuelingHead, DuelingMLP
from repro.nn.conv import Conv2D, MaxPool2D, Flatten, Reshape, build_cnn
from repro.nn.noisy import (
    NoisyDense,
    build_noisy_mlp,
    resample_network_noise,
    zero_network_noise,
)
from repro.nn.checkpoints import save_network, load_network
from repro.nn.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "he_init",
    "glorot_init",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MLP",
    "build_mlp",
    "MSELoss",
    "HuberLoss",
    "make_loss",
    "SGD",
    "RMSprop",
    "Adam",
    "make_optimizer",
    "DuelingHead",
    "DuelingMLP",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Reshape",
    "build_cnn",
    "NoisyDense",
    "build_noisy_mlp",
    "resample_network_noise",
    "zero_network_noise",
    "save_network",
    "load_network",
    "numerical_gradient",
    "check_gradients",
]
