"""Physical constants and score-scale conventions.

Units follow common docking practice: distances in angstroms, charges in
elementary charges, energies in kcal/mol.  The Coulomb constant below is
the standard 332.06 kcal*A/(mol*e^2) used by AMBER-family force fields,
matching the electrostatic term of the paper's Equation 1.
"""

from __future__ import annotations

#: Coulomb constant k in kcal*angstrom / (mol * e^2).
COULOMB_CONSTANT: float = 332.0637

#: Minimum inter-atomic distance (angstrom) used to regularize 1/r terms.
#: METADOCK-style scorers clamp distances so overlapping atoms produce a
#: huge-but-finite steric penalty rather than an inf/nan.
MIN_DISTANCE: float = 0.05

#: Default scoring cutoff (angstrom) beyond which pair interactions are
#: treated as zero by the neighbor-list accelerated paths.
DEFAULT_CUTOFF: float = 12.0

#: The paper's empirical low-score episode-termination threshold.
LOW_SCORE_THRESHOLD: float = -100000.0

#: Dielectric constant of the implicit medium (1.0 = vacuum; distance-
#: dependent dielectrics multiply r into this).
DIELECTRIC: float = 1.0

#: Angstroms per nanometer -- the paper quotes the shift step in nm.
ANGSTROM_PER_NM: float = 10.0
