"""Environment wrappers: composable behaviour shims.

All wrappers forward attribute access to the wrapped environment so the
trainer (and nested wrappers) see the full interface.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.running_stats import RunningStats


class Wrapper:
    """Base pass-through wrapper."""

    def __init__(self, env):
        self.env = env

    def reset(self) -> np.ndarray:
        return self.env.reset()

    def step(self, action: int):
        return self.env.step(action)

    def __getattr__(self, name: str) -> Any:
        # Called only when normal lookup fails: delegate to the inner env.
        return getattr(self.env, name)


class TimeLimit(Wrapper):
    """Terminate episodes after ``max_steps`` (Table 1's T as a wrapper)."""

    def __init__(self, env, max_steps: int):
        super().__init__(env)
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self.max_steps = int(max_steps)
        self._elapsed = 0

    def reset(self) -> np.ndarray:
        self._elapsed = 0
        return self.env.reset()

    def step(self, action: int):
        state, reward, done, info = self.env.step(action)
        self._elapsed += 1
        if self._elapsed >= self.max_steps and not done:
            done = True
            info.setdefault("termination", "time-limit")
            info["time_limit_truncated"] = True
        return state, reward, done, info


class StateNormalizer(Wrapper):
    """Online z-score normalization of states.

    The paper feeds raw coordinates (and notes in Section 4 that the
    unnormalized inputs inflate Q magnitudes); this wrapper is the
    ablation lever for that choice.
    """

    def __init__(self, env, *, eps: float = 1e-8, freeze_after: int | None = None):
        super().__init__(env)
        self.eps = float(eps)
        self.freeze_after = freeze_after
        self._stats: RunningStats | None = None

    def _normalize(self, state: np.ndarray) -> np.ndarray:
        if self._stats is None:
            self._stats = RunningStats(state.shape)
        if (
            self.freeze_after is None
            or self._stats.count < self.freeze_after
        ):
            self._stats.update(state)
        std = np.asarray(self._stats.std)
        return (state - self._stats.mean) / (std + self.eps)

    def reset(self) -> np.ndarray:
        return self._normalize(self.env.reset())

    def step(self, action: int):
        state, reward, done, info = self.env.step(action)
        return self._normalize(state), reward, done, info


class RewardScale(Wrapper):
    """Multiply rewards by a constant (reward-shaping ablations)."""

    def __init__(self, env, scale: float):
        super().__init__(env)
        self.scale = float(scale)

    def step(self, action: int):
        state, reward, done, info = self.env.step(action)
        return state, reward * self.scale, done, info


class ActionRepeat(Wrapper):
    """Repeat each agent action ``k`` times (DQN's frame-skip analogue).

    The paper's move granularity (0.5 deg rotations) makes single steps
    nearly score-neutral; repeating an action coarsens the effective
    step without changing the engine.  Rewards are re-derived from the
    *total* score change over the repeat (matching the paper's
    sign-of-delta rule at the coarser timescale) rather than summed, and
    the repeat stops early on termination.
    """

    def __init__(self, env, repeat: int):
        super().__init__(env)
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self.repeat = int(repeat)

    def step(self, action: int):
        first_delta_known = False
        start_score = 0.0
        state, reward, done, info = self.env.step(action)
        delta = info.get("score_delta")
        if delta is not None:
            start_score = info["score"] - delta
            first_delta_known = True
        for _ in range(self.repeat - 1):
            if done:
                break
            state, reward, done, info = self.env.step(action)
        if first_delta_known and "score" in info:
            total_delta = info["score"] - start_score
            reward = float(np.sign(total_delta))
            info = dict(info, score_delta=total_delta)
        return state, reward, done, info


class EpisodeRecorder(Wrapper):
    """Record per-step (action, reward, score) traces for analysis."""

    def __init__(self, env, keep_episodes: int = 16):
        super().__init__(env)
        if keep_episodes < 1:
            raise ValueError("keep_episodes must be >= 1")
        self.keep_episodes = int(keep_episodes)
        self.episodes: list[list[dict]] = []
        self._current: list[dict] = []

    def reset(self) -> np.ndarray:
        if self._current:
            self.episodes.append(self._current)
            if len(self.episodes) > self.keep_episodes:
                self.episodes.pop(0)
        self._current = []
        return self.env.reset()

    def step(self, action: int):
        state, reward, done, info = self.env.step(action)
        self._current.append(
            {
                "action": int(action),
                "reward": float(reward),
                "score": float(info.get("score", float("nan"))),
                "com_distance": float(info.get("com_distance", float("nan"))),
            }
        )
        return state, reward, done, info
