"""Minimal gym-style space descriptions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Discrete:
    """``{0, 1, ..., n-1}``."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")

    def contains(self, x) -> bool:
        """Membership check."""
        try:
            xi = int(x)
        except (TypeError, ValueError):
            return False
        return 0 <= xi < self.n and float(x) == xi

    def sample(self, rng: SeedLike = None) -> int:
        """Uniform draw."""
        return int(as_generator(rng).integers(self.n))


@dataclass(frozen=True)
class Box:
    """An axis-aligned box in R^shape (possibly unbounded)."""

    low: float
    high: float
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("need low <= high")

    def contains(self, x) -> bool:
        """Membership check (shape and bounds)."""
        arr = np.asarray(x, dtype=float)
        return arr.shape == self.shape and bool(
            ((arr >= self.low) & (arr <= self.high)).all()
        )

    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Uniform draw (requires finite bounds)."""
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise ValueError("cannot sample from an unbounded Box")
        return as_generator(rng).uniform(self.low, self.high, size=self.shape)
