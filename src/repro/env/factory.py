"""``make_vector_env`` -- the one way to build a vector environment.

Experiments, the CLI, and the benches used to construct
``SyncVectorEnv([...])`` ad hoc; this factory replaces those call
sites so backend selection (serial in-process vs process-parallel) is
a config/flag decision, not a code change.  Everything it returns
satisfies :class:`repro.env.protocol.VectorEnv`, which is all
:class:`repro.rl.vector_trainer.VectorTrainer` requires.

Two construction modes:

- **from a config** -- ``make_vector_env(cfg, n_envs=4)`` builds N
  docking environments over the config's complex (built once, shared);
  pass ``builts=[...]`` to train over distinct complexes (the
  multi-complex curriculum);
- **from thunks** -- ``make_vector_env(env_fns=[...])`` wraps
  arbitrary zero-arg environment constructors (tests, custom stacks).

Backends: ``"sync"`` (default), ``"async"``, or ``"auto"`` (async when
more than one env *and* more than one core *and* a fork-capable
platform are available).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Sequence

from repro.env.async_vectorized import AsyncVectorEnv
from repro.env.protocol import VectorEnv
from repro.env.vectorized import SyncVectorEnv

#: Recognized backend names.
BACKENDS = ("sync", "async", "auto")


def resolve_backend(backend: str, n_envs: int) -> str:
    """Map a backend request (possibly "auto") to "sync" or "async"."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown vector-env backend {backend!r}; choose from {BACKENDS}"
        )
    if backend != "auto":
        return backend
    multi_core = (os.cpu_count() or 1) > 1
    forkable = "fork" in mp.get_all_start_methods()
    return "async" if (n_envs > 1 and multi_core and forkable) else "sync"


def make_vector_env(
    cfg=None,
    *,
    env_fns: Sequence[Callable[[], Any]] | None = None,
    n_envs: int = 1,
    backend: str = "sync",
    builts: Sequence[Any] | None = None,
    tracer=None,
    metrics=None,
    **backend_options: Any,
) -> VectorEnv:
    """Build a :class:`VectorEnv` from a config or explicit env thunks.

    Parameters
    ----------
    cfg:
        A :class:`repro.config.DQNDockingConfig`; ignored when
        ``env_fns`` is given, required otherwise.
    env_fns:
        Explicit zero-arg environment constructors (overrides
        cfg-based construction; ``n_envs`` is then ``len(env_fns)``).
    n_envs:
        Number of environments to build from ``cfg``.
    backend:
        "sync", "async", or "auto" (see :func:`resolve_backend`).
    builts:
        Pre-built complexes (one per env) for cfg-based construction;
        defaults to building the config's complex once and sharing it.
    tracer / metrics:
        Telemetry hooks threaded into the backend (span per vector
        step; ``vector_env/*`` metrics for the async backend).
    backend_options:
        Extra backend kwargs (async: ``step_timeout``,
        ``spawn_timeout``, ``max_restarts``, ``context``).
    """
    if env_fns is None:
        if cfg is None:
            raise ValueError("need either a config or env_fns")
        if n_envs < 1:
            raise ValueError("n_envs must be >= 1")
        from repro.chem.builders import build_complex
        from repro.env.docking_env import make_env

        if builts is None:
            built = build_complex(cfg.complex)
            builts = [built] * n_envs
        else:
            builts = list(builts)
            if n_envs not in (1, len(builts)):
                raise ValueError(
                    f"got {len(builts)} built complexes for n_envs={n_envs}"
                )
        if getattr(cfg, "compact_states", False):
            # Compact replay factors out ONE constant receptor prefix;
            # distinct complexes have distinct prefixes, so the
            # multi-complex curriculum must use the dense pipeline.
            if len({id(b) for b in builts}) > 1:
                raise ValueError(
                    "compact_states requires a single shared complex: "
                    "distinct built complexes have distinct static "
                    "state prefixes (disable compact_states for "
                    "multi-complex curricula)"
                )
        env_fns = [(lambda b=b: make_env(cfg, b)) for b in builts]
    else:
        env_fns = list(env_fns)

    chosen = resolve_backend(backend, len(env_fns))
    if chosen == "async":
        return AsyncVectorEnv(
            env_fns, tracer=tracer, metrics=metrics, **backend_options
        )
    if backend_options:
        raise ValueError(
            f"backend options {sorted(backend_options)} are only "
            "meaningful for the async backend"
        )
    return SyncVectorEnv._from_factory(
        env_fns, tracer=tracer, metrics=metrics
    )
