"""Environment factories: ``make_env`` and ``make_vector_env``.

:func:`make_env` is the one way to build a single docking environment
from a run config -- rigid or flexible via ``kind=``, observation codec
via ``cfg.observation_mode``.  The old per-flavour factories
(``repro.env.docking_env.make_env``, ``make_flexible_env``) remain as
deprecation-warning shims over this one, so pre-PR-7 run dirs resume
unchanged.

:func:`make_vector_env` is the one way to build a vector environment.
Experiments, the CLI, and the benches used to construct
``SyncVectorEnv([...])`` ad hoc; this factory replaces those call
sites so backend selection (serial in-process vs process-parallel) is
a config/flag decision, not a code change.  Everything it returns
satisfies :class:`repro.env.protocol.VectorEnv`, which is all
:class:`repro.rl.vector_trainer.VectorTrainer` requires.

Two construction modes:

- **from a config** -- ``make_vector_env(cfg, n_envs=4)`` builds N
  docking environments over the config's complex (built once, shared);
  pass ``builts=[...]`` to train over distinct complexes (the
  multi-complex curriculum);
- **from thunks** -- ``make_vector_env(env_fns=[...])`` wraps
  arbitrary zero-arg environment constructors (tests, custom stacks).

Backends: ``"sync"`` (default), ``"async"``, or ``"auto"`` (async when
more than one env *and* more than one core *and* a fork-capable
platform are available).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Sequence

from repro.env.async_vectorized import AsyncVectorEnv
from repro.env.protocol import VectorEnv
from repro.env.vectorized import SyncVectorEnv

#: Recognized backend names.
BACKENDS = ("sync", "async", "auto")

#: Recognized environment kinds for :func:`make_env`.
ENV_KINDS = ("rigid", "flexible")


def make_env(
    cfg,
    built=None,
    *,
    kind: str | None = None,
    comm=None,
):
    """Build the full stack (complex -> engine -> env) from a run config.

    Parameters
    ----------
    cfg:
        A :class:`repro.config.DQNDockingConfig`.
    built:
        An already-constructed :class:`~repro.chem.builders.BuiltComplex`
        to reuse (the expensive part at paper scale); built from
        ``cfg.complex`` when omitted.
    kind:
        "rigid" (translation/rotation actions only), "flexible"
        (adds per-bond torsion actions,
        :class:`~repro.env.flexible_env.FlexibleDockingEnv`), or None
        to derive from ``cfg.flexible_ligand``.
    comm:
        Engine<->agent communication channel; defaults to
        ``make_comm(cfg.comm_mode)``.
    """
    from repro.chem.builders import build_complex
    from repro.env.comm import make_comm
    from repro.env.docking_env import DockingEnv
    from repro.env.flexible_env import FlexibleDockingEnv
    from repro.metadock.engine import MetadockEngine

    if kind is None:
        kind = "flexible" if getattr(cfg, "flexible_ligand", False) else "rigid"
    if kind not in ENV_KINDS:
        raise ValueError(
            f"unknown env kind {kind!r}; choose from {ENV_KINDS}"
        )
    if built is None:
        built = build_complex(cfg.complex)
    if comm is None:
        comm = make_comm(getattr(cfg, "comm_mode", "ram"))
    mode = getattr(cfg, "observation_mode", None)
    if mode is None:
        mode = "compact" if getattr(cfg, "compact_states", False) else "raw"

    if kind == "flexible":
        return FlexibleDockingEnv(
            built,
            n_torsions=cfg.complex.rotatable_bonds,
            shift_length=cfg.shift_length,
            rotation_angle_deg=cfg.rotation_angle_deg,
            escape_factor=cfg.escape_factor,
            low_score_patience=cfg.low_score_patience,
            low_score_threshold=cfg.low_score_threshold,
            comm=comm,
            observation_mode=mode,
            scoring_method=cfg.scoring_method,
            scoring_kwargs=dict(cfg.scoring_kwargs),
        )
    engine = MetadockEngine(
        built,
        shift_length=cfg.shift_length,
        rotation_angle_deg=cfg.rotation_angle_deg,
        n_torsions=0,
        scoring_method=cfg.scoring_method,
        scoring_kwargs=dict(cfg.scoring_kwargs),
    )
    return DockingEnv(
        engine,
        escape_factor=cfg.escape_factor,
        low_score_patience=cfg.low_score_patience,
        low_score_threshold=cfg.low_score_threshold,
        comm=comm,
        observation_mode=mode,
    )


def resolve_backend(backend: str, n_envs: int) -> str:
    """Map a backend request (possibly "auto") to "sync" or "async"."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown vector-env backend {backend!r}; choose from {BACKENDS}"
        )
    if backend != "auto":
        return backend
    multi_core = (os.cpu_count() or 1) > 1
    forkable = "fork" in mp.get_all_start_methods()
    return "async" if (n_envs > 1 and multi_core and forkable) else "sync"


def make_vector_env(
    cfg=None,
    *,
    env_fns: Sequence[Callable[[], Any]] | None = None,
    n_envs: int = 1,
    backend: str = "sync",
    builts: Sequence[Any] | None = None,
    tracer=None,
    metrics=None,
    **backend_options: Any,
) -> VectorEnv:
    """Build a :class:`VectorEnv` from a config or explicit env thunks.

    Parameters
    ----------
    cfg:
        A :class:`repro.config.DQNDockingConfig`; ignored when
        ``env_fns`` is given, required otherwise.
    env_fns:
        Explicit zero-arg environment constructors (overrides
        cfg-based construction; ``n_envs`` is then ``len(env_fns)``).
    n_envs:
        Number of environments to build from ``cfg``.
    backend:
        "sync", "async", or "auto" (see :func:`resolve_backend`).
    builts:
        Pre-built complexes (one per env) for cfg-based construction;
        defaults to building the config's complex once and sharing it.
    tracer / metrics:
        Telemetry hooks threaded into the backend (span per vector
        step; ``vector_env/*`` metrics for the async backend).
    backend_options:
        Extra backend kwargs (async: ``step_timeout``,
        ``spawn_timeout``, ``max_restarts``, ``context``).
    """
    if env_fns is None:
        if cfg is None:
            raise ValueError("need either a config or env_fns")
        if n_envs < 1:
            raise ValueError("n_envs must be >= 1")
        from repro.chem.builders import build_complex

        if builts is None:
            built = build_complex(cfg.complex)
            builts = [built] * n_envs
        else:
            builts = list(builts)
            if n_envs not in (1, len(builts)):
                raise ValueError(
                    f"got {len(builts)} built complexes for n_envs={n_envs}"
                )
        mode = getattr(cfg, "observation_mode", None)
        if mode == "compact" or (
            mode is None and getattr(cfg, "compact_states", False)
        ):
            # Compact replay factors out ONE constant receptor prefix;
            # distinct complexes have distinct prefixes, so the
            # multi-complex curriculum must use the dense pipeline
            # (or the receptor-free "descriptor" codec).
            if len({id(b) for b in builts}) > 1:
                raise ValueError(
                    "compact_states requires a single shared complex: "
                    "distinct built complexes have distinct static "
                    "state prefixes (disable compact_states for "
                    "multi-complex curricula)"
                )
        env_fns = [(lambda b=b: make_env(cfg, b)) for b in builts]
    else:
        env_fns = list(env_fns)

    chosen = resolve_backend(backend, len(env_fns))
    if chosen == "async":
        return AsyncVectorEnv(
            env_fns, tracer=tracer, metrics=metrics, **backend_options
        )
    if backend_options:
        raise ValueError(
            f"backend options {sorted(backend_options)} are only "
            "meaningful for the async backend"
        )
    return SyncVectorEnv._from_factory(
        env_fns, tracer=tracer, metrics=metrics
    )
