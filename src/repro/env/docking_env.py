""":class:`DockingEnv` -- the MDP of paper Section 3.

Reward (Section 3, verbatim rules):

1. the raw quantity is the *change* in METADOCK's score, not the score;
2. clipped to [-1, 1];
3. positive -> +1, negative -> -1, unchanged -> 0.

Net effect: ``reward = sign(score_t+1 - score_t)``.

Termination (the added "game rules"):

- **escape** -- ligand center of mass farther than ``escape_factor``
  (4/3) times the initial receptor-ligand COM distance;
- **deep-penetration** -- ``low_score_patience`` (20) consecutive steps
  with score below ``low_score_threshold`` (-100,000);
- the T-step cap is the trainer's job (or the TimeLimit wrapper's).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.chem.builders import BuiltComplex, build_complex
from repro.config import DQNDockingConfig
from repro.env.comm import CommChannel, RamComm, make_comm
from repro.env.spaces import Box, Discrete
from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose


class DockingEnv:
    """Gym-flavoured environment over a :class:`MetadockEngine`.

    With ``compact_states=True`` the env emits only the dynamic ligand
    tail of the state (float32, written into the engine's reusable
    buffers) instead of the paper-shaped full vector; the constant
    receptor prefix is available once via :meth:`static_state` and the
    observation space shrinks to ``engine.dynamic_dim()``.  Consumers
    (agent, vector backends) reconstruct full states on demand;
    :meth:`full_state` still produces the paper-shaped vector for
    checkpoints and external tools.  Emitted tails stay valid for one
    subsequent step (the engine double-buffers) -- copy to hold longer.
    """

    def __init__(
        self,
        engine: MetadockEngine,
        *,
        escape_factor: float = 4.0 / 3.0,
        low_score_patience: int = 20,
        low_score_threshold: float = -100000.0,
        comm: CommChannel | None = None,
        randomize_reset: bool = False,
        reset_rng=None,
        tracer=None,
        compact_states: bool = False,
    ):
        if escape_factor <= 1.0:
            raise ValueError("escape_factor must exceed 1.0")
        if low_score_patience < 1:
            raise ValueError("low_score_patience must be >= 1")
        self.engine = engine
        #: Optional :class:`repro.telemetry.spans.SpanTracer`; when set,
        #: each step records "engine-step" (move + observe) and
        #: "comm-exchange" spans so the paper's limitation-1 split is
        #: measurable per run.
        self.tracer = tracer
        self.escape_factor = float(escape_factor)
        self.low_score_patience = int(low_score_patience)
        self.low_score_threshold = float(low_score_threshold)
        self.comm = comm or RamComm()
        self.randomize_reset = bool(randomize_reset)
        self._reset_rng = reset_rng
        self.compact_states = bool(compact_states)

        self.action_space = Discrete(engine.n_actions)
        obs_dim = (
            engine.dynamic_dim() if self.compact_states
            else engine.state_dim()
        )
        self.observation_space = Box(-math.inf, math.inf, (obs_dim,))
        self._escape_radius = self.escape_factor * engine.initial_com_distance()
        self._last_score: float = float("nan")
        self._low_score_streak = 0
        self.episode_steps = 0
        self.total_steps = 0

    def _emit_state(self) -> np.ndarray:
        """Current state in the env's emission format."""
        if self.compact_states:
            return self.engine.dynamic_state()
        return self.engine.state_vector()

    # -- protocol ------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Reset the ligand to the initial pose; returns the state."""
        pose: Pose | None = None
        if self.randomize_reset and self._reset_rng is not None:
            # Jitter the start slightly: keeps the start distribution
            # near Figure 3 position (A) while decorrelating episodes.
            jitter = self._reset_rng.normal(scale=0.5, size=3)
            self.engine.reset(observe=False)
            pose = self.engine.pose.translated(jitter)
        self.engine.reset(pose, observe=False)
        state, score = self.comm.exchange(
            self._emit_state(), self.engine.score()
        )
        self._last_score = score
        self._low_score_streak = 0
        self.episode_steps = 0
        return state

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Apply one discrete action; returns (state, reward, done, info)."""
        if not self.action_space.contains(action):
            raise ValueError(
                f"invalid action {action!r} for {self.action_space}"
            )
        if math.isnan(self._last_score):
            raise RuntimeError("step() called before reset()")
        tr = self.tracer
        if tr is None:
            self.engine.apply_action(int(action))
            state, score = self.comm.exchange(
                self._emit_state(), self.engine.score()
            )
        else:
            with tr.span("engine-step"):
                self.engine.apply_action(int(action))
                state = self._emit_state()
                score = self.engine.score()
            with tr.span("comm-exchange"):
                state, score = self.comm.exchange(state, score)

        # Paper reward rules: sign of the clipped score change.
        delta = score - self._last_score
        reward = float(np.sign(delta))
        self._last_score = score

        done = False
        termination = ""
        com_d = self.engine.com_distance()
        if com_d > self._escape_radius:
            done = True
            termination = "escape"
        if score < self.low_score_threshold:
            self._low_score_streak += 1
            if self._low_score_streak >= self.low_score_patience:
                done = True
                termination = termination or "deep-penetration"
        else:
            self._low_score_streak = 0

        self.episode_steps += 1
        self.total_steps += 1
        info: dict[str, Any] = {
            "score": score,
            "score_delta": delta,
            "com_distance": com_d,
            "escape_radius": self._escape_radius,
            "low_score_streak": self._low_score_streak,
            "crystal_rmsd": self.engine.crystal_rmsd(),
        }
        if termination:
            info["termination"] = termination
        return state, reward, done, info

    # -- introspection ---------------------------------------------------------
    @property
    def escape_radius(self) -> float:
        """Episode-terminating COM distance (4/3 x initial by default)."""
        return self._escape_radius

    @property
    def state_dim(self) -> int:
        """Emitted state length (dynamic tail only in compact mode)."""
        return self.observation_space.shape[0]

    @property
    def state_dtype(self):
        """Dtype of emitted states (float32 in compact mode)."""
        return np.float32 if self.compact_states else np.float64

    @property
    def full_state_dim(self) -> int:
        """Paper-shaped state length, independent of emission mode."""
        return self.engine.state_dim()

    def static_state(self) -> np.ndarray | None:
        """Constant state prefix (float32) in compact mode, else None."""
        if not self.compact_states:
            return None
        return self.engine.static_state()

    def full_state(self) -> np.ndarray:
        """Paper-shaped full state of the current pose (fresh float64).

        Available in both modes -- checkpoints and external consumers
        use this regardless of what the hot loop emits.
        """
        return self.engine.state_vector()

    @property
    def n_actions(self) -> int:
        """Action count."""
        return self.action_space.n

    def current_score(self) -> float:
        """Score of the current pose (engine truth, bypasses comm)."""
        return self.engine.score()

    def close(self) -> None:
        """Release the comm channel."""
        self.comm.close()


def make_env(
    cfg: DQNDockingConfig,
    built: BuiltComplex | None = None,
    *,
    comm: CommChannel | None = None,
) -> DockingEnv:
    """Build the full stack (complex -> engine -> env) from a run config.

    ``built`` lets callers reuse an already-constructed complex (the
    expensive part at paper scale).
    """
    if built is None:
        built = build_complex(cfg.complex)
    engine = MetadockEngine(
        built,
        shift_length=cfg.shift_length,
        rotation_angle_deg=cfg.rotation_angle_deg,
        n_torsions=cfg.complex.rotatable_bonds if cfg.flexible_ligand else 0,
        scoring_method=cfg.scoring_method,
        scoring_kwargs=dict(cfg.scoring_kwargs),
    )
    if comm is None:
        comm = make_comm(cfg.comm_mode)
    return DockingEnv(
        engine,
        escape_factor=cfg.escape_factor,
        low_score_patience=cfg.low_score_patience,
        low_score_threshold=cfg.low_score_threshold,
        comm=comm,
        compact_states=getattr(cfg, "compact_states", False),
    )
