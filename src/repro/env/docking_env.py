""":class:`DockingEnv` -- the MDP of paper Section 3.

Reward (Section 3, verbatim rules):

1. the raw quantity is the *change* in METADOCK's score, not the score;
2. clipped to [-1, 1];
3. positive -> +1, negative -> -1, unchanged -> 0.

Net effect: ``reward = sign(score_t+1 - score_t)``.

Termination (the added "game rules"):

- **escape** -- ligand center of mass farther than ``escape_factor``
  (4/3) times the initial receptor-ligand COM distance;
- **deep-penetration** -- ``low_score_patience`` (20) consecutive steps
  with score below ``low_score_threshold`` (-100,000);
- the T-step cap is the trainer's job (or the TimeLimit wrapper's).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.chem.builders import BuiltComplex
from repro.config import DQNDockingConfig
from repro.env.comm import CommChannel, RamComm
from repro.env.observation import ObservationSpec, make_codec
from repro.env.spaces import Box, Discrete
from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose


class DockingEnv:
    """Gym-flavoured environment over a :class:`MetadockEngine`.

    What the env emits per step is owned by a
    :class:`~repro.env.observation.StateCodec` selected via
    ``observation_mode`` ("raw", "compact", or "descriptor"; see
    docs/OBSERVATIONS.md).  :attr:`observation_spec` describes the
    emission contract (dims, dtype, Q-input width) to every consumer.
    The legacy ``compact_states`` flag maps onto ``"compact"`` mode:
    the constant receptor prefix is available once via
    :meth:`static_state` and the observation space shrinks to
    ``engine.dynamic_dim()``.  :meth:`full_state` still produces the
    paper-shaped vector for checkpoints and external tools in every
    mode.  Emitted arrays stay valid for one subsequent step (codecs
    double-buffer) -- copy to hold longer.
    """

    def __init__(
        self,
        engine: MetadockEngine,
        *,
        escape_factor: float = 4.0 / 3.0,
        low_score_patience: int = 20,
        low_score_threshold: float = -100000.0,
        comm: CommChannel | None = None,
        randomize_reset: bool = False,
        reset_rng=None,
        tracer=None,
        compact_states: bool = False,
        observation_mode: str | None = None,
    ):
        if escape_factor <= 1.0:
            raise ValueError("escape_factor must exceed 1.0")
        if low_score_patience < 1:
            raise ValueError("low_score_patience must be >= 1")
        self.engine = engine
        #: Optional :class:`repro.telemetry.spans.SpanTracer`; when set,
        #: each step records "engine-step" (move + observe) and
        #: "comm-exchange" spans so the paper's limitation-1 split is
        #: measurable per run.
        self.tracer = tracer
        self.escape_factor = float(escape_factor)
        self.low_score_patience = int(low_score_patience)
        self.low_score_threshold = float(low_score_threshold)
        self.comm = comm or RamComm()
        self.randomize_reset = bool(randomize_reset)
        self._reset_rng = reset_rng

        if observation_mode is None:
            observation_mode = "compact" if compact_states else "raw"
        elif compact_states and observation_mode != "compact":
            raise ValueError(
                "compact_states=True conflicts with observation_mode="
                f"{observation_mode!r}"
            )
        self._codec = make_codec(observation_mode, engine)
        #: The emission contract of this env's codec.
        self.observation_spec: ObservationSpec = self._codec.spec
        self.observation_mode = observation_mode
        #: Legacy alias kept for pre-codec consumers.
        self.compact_states = observation_mode == "compact"

        self.action_space = Discrete(engine.n_actions)
        self.observation_space = Box(
            -math.inf, math.inf, (self.observation_spec.dim,)
        )
        self._escape_radius = self.escape_factor * engine.initial_com_distance()
        self._last_score: float = float("nan")
        self._low_score_streak = 0
        self.episode_steps = 0
        self.total_steps = 0

    def _emit_state(self) -> np.ndarray:
        """Current state in the env's emission format."""
        return self._codec.encode()

    # -- protocol ------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Reset the ligand to the initial pose; returns the state."""
        pose: Pose | None = None
        if self.randomize_reset and self._reset_rng is not None:
            # Jitter the start slightly: keeps the start distribution
            # near Figure 3 position (A) while decorrelating episodes.
            jitter = self._reset_rng.normal(scale=0.5, size=3)
            self.engine.reset(observe=False)
            pose = self.engine.pose.translated(jitter)
        self.engine.reset(pose, observe=False)
        state, score = self.comm.exchange(
            self._emit_state(), self.engine.score()
        )
        self._last_score = score
        self._low_score_streak = 0
        self.episode_steps = 0
        return state

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Apply one discrete action; returns (state, reward, done, info)."""
        if not self.action_space.contains(action):
            raise ValueError(
                f"invalid action {action!r} for {self.action_space}"
            )
        if math.isnan(self._last_score):
            raise RuntimeError("step() called before reset()")
        tr = self.tracer
        if tr is None:
            self.engine.apply_action(int(action))
            state, score = self.comm.exchange(
                self._emit_state(), self.engine.score()
            )
        else:
            with tr.span("engine-step"):
                self.engine.apply_action(int(action))
                state = self._emit_state()
                score = self.engine.score()
            with tr.span("comm-exchange"):
                state, score = self.comm.exchange(state, score)

        # Paper reward rules: sign of the clipped score change.
        delta = score - self._last_score
        reward = float(np.sign(delta))
        self._last_score = score

        done = False
        termination = ""
        com_d = self.engine.com_distance()
        if com_d > self._escape_radius:
            done = True
            termination = "escape"
        if score < self.low_score_threshold:
            self._low_score_streak += 1
            if self._low_score_streak >= self.low_score_patience:
                done = True
                termination = termination or "deep-penetration"
        else:
            self._low_score_streak = 0

        self.episode_steps += 1
        self.total_steps += 1
        info: dict[str, Any] = {
            "score": score,
            "score_delta": delta,
            "com_distance": com_d,
            "escape_radius": self._escape_radius,
            "low_score_streak": self._low_score_streak,
            "crystal_rmsd": self.engine.crystal_rmsd(),
        }
        if termination:
            info["termination"] = termination
        return state, reward, done, info

    # -- introspection ---------------------------------------------------------
    @property
    def escape_radius(self) -> float:
        """Episode-terminating COM distance (4/3 x initial by default)."""
        return self._escape_radius

    @property
    def state_dim(self) -> int:
        """Emitted state length (dynamic tail only in compact mode)."""
        return self.observation_space.shape[0]

    @property
    def state_dtype(self):
        """Dtype of emitted states (float64 raw, float32 otherwise)."""
        return self.observation_spec.np_dtype.type

    @property
    def full_state_dim(self) -> int:
        """Paper-shaped state length, independent of emission mode."""
        return self.engine.state_dim()

    def static_state(self) -> np.ndarray | None:
        """Constant state prefix (float32) in compact mode, else None."""
        return self._codec.static_state()

    def full_state(self) -> np.ndarray:
        """Paper-shaped full state of the current pose (fresh float64).

        Available in both modes -- checkpoints and external consumers
        use this regardless of what the hot loop emits.
        """
        return self.engine.state_vector()

    @property
    def n_actions(self) -> int:
        """Action count."""
        return self.action_space.n

    def current_score(self) -> float:
        """Score of the current pose (engine truth, bypasses comm)."""
        return self.engine.score()

    def close(self) -> None:
        """Release the comm channel."""
        self.comm.close()


def make_env(
    cfg: DQNDockingConfig,
    built: BuiltComplex | None = None,
    *,
    comm: CommChannel | None = None,
) -> DockingEnv:
    """Deprecated alias of :func:`repro.env.factory.make_env`."""
    import warnings

    warnings.warn(
        "repro.env.docking_env.make_env is deprecated; use "
        "repro.env.factory.make_env (or repro.env.make_env)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.env.factory import make_env as _make_env

    return _make_env(cfg, built, comm=comm)
