"""The DQN-Docking environment (paper Section 3).

:class:`DockingEnv` turns the :class:`~repro.metadock.engine.
MetadockEngine` into an MDP by adding what METADOCK lacks -- the "game
rules":

- the reward transformation (sign of the score change, clipped to
  {-1, 0, +1});
- the escape rule (ligand drifts beyond 4/3 of the initial
  center-of-mass distance);
- the deep-penetration rule (20 consecutive scores below -100,000).

:mod:`repro.env.comm` reproduces the paper's two engine<->agent
communication layers: the on-disk file exchange the authors used (their
limitation #1) and the RAM-based replacement they propose.
"""

from repro.env.spaces import Box, Discrete
from repro.env.comm import RamComm, FileComm, SharedSlotComm, make_comm
from repro.env.docking_env import DockingEnv
from repro.env.flexible_env import FlexibleDockingEnv, make_flexible_env
from repro.env.observation import (
    OBSERVATION_MODES,
    ObservationSpec,
    StateCodec,
    make_codec,
)
from repro.env.wrappers import (
    TimeLimit,
    StateNormalizer,
    RewardScale,
    EpisodeRecorder,
    ActionRepeat,
)
from repro.env.image_state import ImageStateEnv, render_projections
from repro.env.protocol import VectorEnv, coerce_actions
from repro.env.vectorized import SyncVectorEnv
from repro.env.async_vectorized import AsyncVectorEnv, WorkerCrashError
from repro.env.factory import make_env, make_vector_env, resolve_backend

__all__ = [
    "Box",
    "Discrete",
    "RamComm",
    "FileComm",
    "SharedSlotComm",
    "make_comm",
    "DockingEnv",
    "make_env",
    "FlexibleDockingEnv",
    "make_flexible_env",
    "OBSERVATION_MODES",
    "ObservationSpec",
    "StateCodec",
    "make_codec",
    "TimeLimit",
    "StateNormalizer",
    "RewardScale",
    "EpisodeRecorder",
    "ActionRepeat",
    "ImageStateEnv",
    "render_projections",
    "VectorEnv",
    "coerce_actions",
    "SyncVectorEnv",
    "AsyncVectorEnv",
    "WorkerCrashError",
    "make_vector_env",
    "resolve_backend",
]
