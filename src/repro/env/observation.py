"""First-class observation codecs: what the environment emits per step.

Every layer of the stack used to assume the paper's raw 16,599-float
state implicitly -- the env emitted it, the replay stored it, the agent
sized its input layer by it, the async backend allocated shared memory
by it.  PR 3 carved out a compact fast path (static receptor prefix +
dynamic ligand tail) but threaded it through as a boolean flag.  This
module makes the contract explicit: a :class:`StateCodec` owns the
engine-to-vector encoding, and an :class:`ObservationSpec` describes it
to every consumer (dims, dtype, Q-network input width, checkpoint
identity).

Three registered modes:

``raw``
    The paper's flat state from ``engine.state_vector()`` -- receptor
    coordinates + ligand coordinates + ligand bond vectors, float64.
    Bit-identical to the pre-codec pipeline.
``compact``
    Only the dynamic ligand tail (float32, double-buffered in the
    engine); the constant receptor prefix is exposed once via
    :meth:`StateCodec.static_state` and factored out of replay
    storage.  Subsumes the PR 3 ``compact_states`` plumbing.
``descriptor``
    Pocket-relative ligand features (float32, ~270 dims at paper
    scale) computed via :mod:`repro.chem.descriptors`: ligand atom
    coordinates and bond vectors in the pocket frame plus a small
    global block (COM offset, pocket/receptor distances, molecular
    descriptors).  Shrinks the Q-network input ~60x and -- because the
    receptor block is gone entirely -- is the observation that can
    span multiple complexes.

Emitted arrays from :meth:`StateCodec.encode` stay valid for exactly
one more call (codecs double-buffer so state and next_state coexist in
the trainer loop); copy to hold longer.  See docs/OBSERVATIONS.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

#: Registered codec mode names, in registry order.
OBSERVATION_MODES: tuple[str, ...] = ("raw", "compact", "descriptor")


@dataclass(frozen=True)
class ObservationSpec:
    """The emission contract of one environment's state codec.

    Hashable and JSON-friendly (:meth:`as_dict`) so vector backends can
    assert agreement across envs and checkpoints can record codec
    identity for resume-time validation.
    """

    #: Codec mode name (one of :data:`OBSERVATION_MODES`).
    mode: str
    #: Emitted per-step state length.
    dim: int
    #: Emitted dtype name ("float64" raw, "float32" otherwise).
    dtype: str
    #: Paper-shaped full state length (``engine.state_dim()``).
    full_dim: int
    #: Constant-prefix length factored out of emission (compact mode).
    static_dim: int = 0

    @property
    def np_dtype(self) -> np.dtype:
        """The emitted dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    @property
    def q_input_dim(self) -> int:
        """Q-network input width implied by this spec.

        Compact agents reconstruct full states before the forward pass,
        so their network stays paper-shaped; descriptor agents consume
        the emitted vector directly.
        """
        return self.full_dim if self.mode == "compact" else self.dim

    def as_dict(self) -> dict:
        """Plain-JSON form (checkpoint metadata)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ObservationSpec":
        """Rebuild from :meth:`as_dict` output (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(ObservationSpec)}
        return ObservationSpec(
            **{k: v for k, v in data.items() if k in names}
        )


class StateCodec:
    """Engine -> state-vector encoder (one per environment).

    Subclasses set :attr:`spec` in ``__init__`` and implement
    :meth:`encode`.  The returned array may be a reused internal buffer
    that stays valid for exactly one more :meth:`encode` call.
    """

    #: Registry key; subclasses override.
    mode: str = ""

    def __init__(self, engine):
        self.engine = engine
        self.spec: ObservationSpec

    def encode(self) -> np.ndarray:
        """The current engine state in this codec's format."""
        raise NotImplementedError

    def encode_into(self, out: np.ndarray) -> None:
        """Write the current state into ``out[:spec.dim]`` in place.

        Batched rollout paths keep one (n, dim) row matrix alive and
        re-encode rows per step; writing straight into the row skips the
        intermediate buffer.  The default delegates to :meth:`encode`
        (same values, one extra copy); codecs override with a direct
        write when they can do so without changing the emitted floats.
        """
        out[: self.spec.dim] = self.encode()

    def static_state(self) -> np.ndarray | None:
        """Constant state prefix factored out of emission, if any."""
        return None


class RawCodec(StateCodec):
    """The paper's flat float64 state, bit-identical to ``state_vector``."""

    mode = "raw"

    def __init__(self, engine):
        super().__init__(engine)
        full = int(engine.state_dim())
        self.spec = ObservationSpec(
            mode="raw", dim=full, dtype="float64", full_dim=full
        )

    def encode(self) -> np.ndarray:
        return self.engine.state_vector()

    def encode_into(self, out: np.ndarray) -> None:
        # state_into performs the same per-entry casts as assigning
        # state_vector() into ``out`` would, minus the float64 staging
        # array -- bit-identical rows either way.
        self.engine.state_into(out)


class CompactCodec(StateCodec):
    """Dynamic ligand tail only (float32, engine double buffers)."""

    mode = "compact"

    def __init__(self, engine):
        super().__init__(engine)
        full = int(engine.state_dim())
        dyn = int(engine.dynamic_dim())
        self.spec = ObservationSpec(
            mode="compact",
            dim=dyn,
            dtype="float32",
            full_dim=full,
            static_dim=full - dyn,
        )

    def encode(self) -> np.ndarray:
        return self.engine.dynamic_state()

    def static_state(self) -> np.ndarray:
        return self.engine.static_state()


class DescriptorCodec(StateCodec):
    """Pocket-relative ligand features (float32, ~270 dims).

    Layout (see :func:`repro.chem.descriptors.encode_pocket_features`):
    ligand atom coordinates relative to the pocket center (3m), ligand
    bond vectors (3b), the pocket-frame global block (COM offset + its
    norm + ligand-receptor COM distance, 5), and the constant
    molecular-descriptor vector of the ligand (9).  The constant tail
    is written once; per-step encoding only touches the dynamic part.

    Two internal buffers alternate per call so state(t) and
    next_state(t) stay simultaneously valid for ``remember()``.
    """

    mode = "descriptor"

    def __init__(self, engine):
        super().__init__(engine)
        from repro.chem.descriptors import (
            N_MOLECULE_DESCRIPTORS,
            compute_descriptors,
            pocket_feature_dim,
        )

        template = engine.template
        self._bonds = template.bonds
        self._masses = np.asarray(template.masses, dtype=np.float64)
        self._total_mass = float(self._masses.sum())
        self._pocket_center = np.asarray(
            engine.built.pocket_center, dtype=np.float64
        )
        self._receptor_com = np.asarray(
            engine.receptor.center_of_mass(), dtype=np.float64
        )
        dim = pocket_feature_dim(template.n_atoms, template.n_bonds)
        tail = np.asarray(
            compute_descriptors(template).as_vector(), dtype=np.float32
        )
        self._bufs = (
            np.empty(dim, dtype=np.float32),
            np.empty(dim, dtype=np.float32),
        )
        for buf in self._bufs:
            buf[dim - N_MOLECULE_DESCRIPTORS :] = tail
        self._tail = tail
        self._flip = 0
        self.spec = ObservationSpec(
            mode="descriptor",
            dim=dim,
            dtype="float32",
            full_dim=int(engine.state_dim()),
        )

    def encode(self) -> np.ndarray:
        from repro.chem.descriptors import encode_pocket_features

        buf = self._bufs[self._flip]
        self._flip ^= 1
        encode_pocket_features(
            self.engine.ligand_coords(),
            self._bonds,
            self._masses,
            self._total_mass,
            self._pocket_center,
            self._receptor_com,
            out=buf,
        )
        return buf

    def encode_into(self, out: np.ndarray) -> None:
        if out.dtype != np.float32:
            # The emitted contract rounds every feature through float32;
            # writing float64 rows directly would skip that rounding, so
            # route wider targets through the buffered encode().
            super().encode_into(out)
            return
        from repro.chem.descriptors import encode_pocket_features

        dim = self.spec.dim
        encode_pocket_features(
            self.engine.ligand_coords(),
            self._bonds,
            self._masses,
            self._total_mass,
            self._pocket_center,
            self._receptor_com,
            out=out[:dim],
        )
        out[dim - self._tail.size : dim] = self._tail


#: Mode name -> codec class.
CODEC_REGISTRY: Dict[str, Type[StateCodec]] = {
    cls.mode: cls for cls in (RawCodec, CompactCodec, DescriptorCodec)
}


def make_codec(mode: str, engine) -> StateCodec:
    """Build the registered codec ``mode`` over ``engine``."""
    cls = CODEC_REGISTRY.get(mode)
    if cls is None:
        raise ValueError(
            f"unknown observation mode {mode!r}; "
            f"choose from {OBSERVATION_MODES}"
        )
    return cls(engine)
