"""Image states: the paper's proposed CNN input representation.

Section 5: "this work could be extended by substituting those internal
states by a stack of receptor-ligand images and then use a convolutional
NN instead of a MLP" -- the fix for the state dimension growing with
atom count.

:func:`render_projections` rasterizes the two molecules into a fixed
stack of 2-D density images (three orthogonal projections per molecule,
six channels total) over a fixed frame covering the whole movement area,
so image size is independent of molecule size.  :class:`ImageStateEnv`
swaps these images in as the environment state.
"""

from __future__ import annotations

import numpy as np

from repro.env.wrappers import Wrapper

#: Axis pairs projected onto: (x,y), (x,z), (y,z).
_PROJECTIONS = ((0, 1), (0, 2), (1, 2))


def render_density(
    coords: np.ndarray,
    center: np.ndarray,
    extent: float,
    resolution: int,
) -> np.ndarray:
    """(3, res, res) stack of squashed 2-D occupancy histograms.

    Atoms outside the frame are clamped onto the border bin (the ligand
    can graze the escape sphere); ``tanh(count / 2)`` bounds channel
    values in [0, 1) with stable contrast regardless of atom count.
    """
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    if extent <= 0:
        raise ValueError("extent must be positive")
    pts = np.asarray(coords, dtype=float) - np.asarray(center, dtype=float)
    # Map [-extent, extent] -> [0, resolution).
    frac = (pts / (2.0 * extent)) + 0.5
    bins = np.clip(
        (frac * resolution).astype(np.int64), 0, resolution - 1
    )
    out = np.zeros((3, resolution, resolution))
    for k, (a, b) in enumerate(_PROJECTIONS):
        np.add.at(out[k], (bins[:, a], bins[:, b]), 1.0)
    return np.tanh(out / 2.0)


def render_projections(
    receptor_coords: np.ndarray,
    ligand_coords: np.ndarray,
    center: np.ndarray,
    extent: float,
    resolution: int = 32,
) -> np.ndarray:
    """(6, res, res) stack: receptor channels 0-2, ligand channels 3-5."""
    rec = render_density(receptor_coords, center, extent, resolution)
    lig = render_density(ligand_coords, center, extent, resolution)
    return np.concatenate([rec, lig], axis=0)


class ImageStateEnv(Wrapper):
    """Replace the coordinate state with the 6-channel image stack.

    The frame is centered on the receptor and sized to the escape radius
    (plus margin), so every legal ligand position stays in view and the
    receptor channels are constants the CNN can cancel out.  States are
    returned *flat* (replay buffers store vectors); the CNN's leading
    :class:`~repro.nn.conv.Reshape` restores (6, res, res).
    """

    def __init__(self, env, *, resolution: int = 32, margin: float = 1.1):
        super().__init__(env)
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        self.resolution = int(resolution)
        engine = env.engine
        self._center = engine.receptor.centroid()
        self._extent = margin * env.escape_radius
        self._receptor_channels = render_density(
            engine.receptor.coords, self._center, self._extent, resolution
        )

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) for :func:`repro.nn.conv.build_cnn`."""
        return (6, self.resolution, self.resolution)

    @property
    def state_dim(self) -> int:
        """Flat state length."""
        return 6 * self.resolution * self.resolution

    def _image_state(self) -> np.ndarray:
        lig = render_density(
            self.env.engine.ligand_coords(),
            self._center,
            self._extent,
            self.resolution,
        )
        return np.concatenate(
            [self._receptor_channels, lig], axis=0
        ).reshape(-1)

    def reset(self) -> np.ndarray:
        self.env.reset()
        return self._image_state()

    def step(self, action: int):
        _state, reward, done, info = self.env.step(action)
        return self._image_state(), reward, done, info
