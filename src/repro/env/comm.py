"""Engine<->agent communication layers.

The paper's Section 5 names its first limitation: "the communication
between the algorithm and METADOCK entails to write two separate files in
disk with the new state and the score respectively and then DQN-Docking
reads those files".  We implement exactly that (:class:`FileComm`) and
the proposed in-memory replacement (:class:`RamComm`) behind one
interface, so the ablation bench can quantify the cost the authors paid.
"""

from __future__ import annotations

import os
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np


class CommChannel(ABC):
    """One state+score round trip between engine and agent."""

    @abstractmethod
    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        """Deliver (state, score) from the engine to the agent."""

    def close(self) -> None:
        """Release any resources (default: none)."""

    def __enter__(self) -> "CommChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RamComm(CommChannel):
    """Direct in-memory hand-off (the paper's proposed fix)."""

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        return state, score


class FileComm(CommChannel):
    """Faithful reproduction of the paper's on-disk exchange.

    Two files per step: the state vector (binary ``.npy``) and the score
    (text), written by the "engine side" then read back by the "agent
    side".  ``fsync=True`` additionally forces the data to the device,
    modelling the worst case.
    """

    def __init__(self, directory: str | os.PathLike | None = None, *, fsync: bool = False):
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="dqn-docking-comm-")
            self.directory = Path(self._tmp.name)
        else:
            self._tmp = None
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.state_path = self.directory / "state.npy"
        self.score_path = self.directory / "score.txt"
        self.round_trips = 0

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        # Engine side: write both files.
        with open(self.state_path, "wb") as fh:
            np.save(fh, np.asarray(state, dtype=np.float64))
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        with open(self.score_path, "w") as fh:
            fh.write(repr(float(score)))
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        # Agent side: read both files back.
        state_back = np.load(self.state_path)
        score_back = float(self.score_path.read_text())
        self.round_trips += 1
        return state_back, score_back

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


class SharedSlotComm(CommChannel):
    """Hand-off through one slot of a preallocated shared-memory block.

    The process-parallel :class:`repro.env.async_vectorized.
    AsyncVectorEnv` gives each worker one row of an ``(n_envs,
    state_dim)`` float64 block plus one cell of an ``(n_envs,)`` score
    array; the worker delivers every (state, score) pair by writing it
    in place -- zero-copy on the parent side, no per-step pickling of
    state vectors.  Because it is just another :class:`CommChannel`,
    it composes with the paper's file-comm ablation: the environment
    *inside* the worker can still route its own engine<->agent
    round-trip through :class:`FileComm` while the cross-process
    hand-off stays shared-memory.
    """

    def __init__(self, state_slot: np.ndarray, score_slot: np.ndarray, index: int):
        if state_slot.ndim != 1:
            raise ValueError("state_slot must be a 1-D row view")
        self.state_slot = state_slot
        self.score_slot = score_slot
        self.index = int(index)
        self.round_trips = 0

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        # Adopt the slot's dtype: float64 classically, float32 when the
        # block carries compact dynamic tails.
        state = np.asarray(state, dtype=self.state_slot.dtype)
        if state.shape != self.state_slot.shape:
            raise ValueError(
                f"state shape {state.shape} does not fit slot "
                f"{self.state_slot.shape}"
            )
        self.state_slot[:] = state
        self.score_slot[self.index] = float(score)
        self.round_trips += 1
        return self.state_slot, float(score)


def make_comm(mode: str, **kwargs) -> CommChannel:
    """Factory keyed by config string ("ram" or "file")."""
    if mode == "ram":
        return RamComm()
    if mode == "file":
        return FileComm(**kwargs)
    raise ValueError(f"unknown comm mode {mode!r}")
