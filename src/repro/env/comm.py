"""Engine<->agent communication and transition-transport layers.

The paper's Section 5 names its first limitation: "the communication
between the algorithm and METADOCK entails to write two separate files in
disk with the new state and the score respectively and then DQN-Docking
reads those files".  We implement exactly that (:class:`FileComm`) and
the proposed in-memory replacement (:class:`RamComm`) behind one
interface, so the ablation bench can quantify the cost the authors paid.

Two shared-memory transports build on the same idea at different
granularities:

- :class:`SharedSlotComm` -- one (state, score) slot per worker, the
  lock-step rendezvous used by ``AsyncVectorEnv``;
- :class:`TransitionRing` -- a single-producer single-consumer ring of
  full transition records, the decoupled transport used by the
  actor/learner trainer (:mod:`repro.rl.distributed`): each actor
  pushes at its own pace and the learner batch-drains, so neither side
  blocks the other until a ring fills (backpressure) or empties
  (starvation) -- both of which are counted.
"""

from __future__ import annotations

import os
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from multiprocessing.sharedctypes import RawArray, RawValue
from pathlib import Path

import numpy as np


class CommChannel(ABC):
    """One state+score round trip between engine and agent."""

    @abstractmethod
    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        """Deliver (state, score) from the engine to the agent."""

    def close(self) -> None:
        """Release any resources (default: none)."""

    def __enter__(self) -> "CommChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RamComm(CommChannel):
    """Direct in-memory hand-off (the paper's proposed fix)."""

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        return state, score


class FileComm(CommChannel):
    """Faithful reproduction of the paper's on-disk exchange.

    Two files per step: the state vector (binary ``.npy``) and the score
    (text), written by the "engine side" then read back by the "agent
    side".  ``fsync=True`` additionally forces the data to the device,
    modelling the worst case.
    """

    def __init__(self, directory: str | os.PathLike | None = None, *, fsync: bool = False):
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="dqn-docking-comm-")
            self.directory = Path(self._tmp.name)
        else:
            self._tmp = None
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.state_path = self.directory / "state.npy"
        self.score_path = self.directory / "score.txt"
        self.round_trips = 0

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        # Engine side: write both files.
        with open(self.state_path, "wb") as fh:
            np.save(fh, np.asarray(state, dtype=np.float64))
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        with open(self.score_path, "w") as fh:
            fh.write(repr(float(score)))
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        # Agent side: read both files back.
        state_back = np.load(self.state_path)
        score_back = float(self.score_path.read_text())
        self.round_trips += 1
        return state_back, score_back

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


class SharedSlotComm(CommChannel):
    """Hand-off through one slot of a preallocated shared-memory block.

    The process-parallel :class:`repro.env.async_vectorized.
    AsyncVectorEnv` gives each worker one row of an ``(n_envs,
    state_dim)`` float64 block plus one cell of an ``(n_envs,)`` score
    array; the worker delivers every (state, score) pair by writing it
    in place -- zero-copy on the parent side, no per-step pickling of
    state vectors.  Because it is just another :class:`CommChannel`,
    it composes with the paper's file-comm ablation: the environment
    *inside* the worker can still route its own engine<->agent
    round-trip through :class:`FileComm` while the cross-process
    hand-off stays shared-memory.
    """

    def __init__(self, state_slot: np.ndarray, score_slot: np.ndarray, index: int):
        if state_slot.ndim != 1:
            raise ValueError("state_slot must be a 1-D row view")
        self.state_slot = state_slot
        self.score_slot = score_slot
        self.index = int(index)
        self.round_trips = 0

    def exchange(self, state: np.ndarray, score: float) -> tuple[np.ndarray, float]:
        # Adopt the slot's dtype: float64 classically, float32 when the
        # block carries compact dynamic tails.
        state = np.asarray(state, dtype=self.state_slot.dtype)
        if state.shape != self.state_slot.shape:
            raise ValueError(
                f"state shape {state.shape} does not fit slot "
                f"{self.state_slot.shape}"
            )
        self.state_slot[:] = state
        self.score_slot[self.index] = float(score)
        self.round_trips += 1
        return self.state_slot, float(score)


#: dtype -> ctypes typecode for the shared state blocks (mirrors
#: AsyncVectorEnv's supported set).
_STATE_TYPECODES = {
    np.dtype(np.float64): "d",
    np.dtype(np.float32): "f",
}


@dataclass(frozen=True)
class TransitionRecord:
    """One drained transition (arrays are copies, safe to keep)."""

    state: np.ndarray
    next_state: np.ndarray
    action: int
    reward: float
    done: bool
    #: Engine score after the step (NaN when unreported) -- carried so
    #: the learner can rebuild per-episode stats without re-scoring.
    score: float
    #: ``max_a Q(s_t, a)`` computed by the acting sidecar -- the
    #: Figure 4 quantity, measured where the action was chosen.
    max_q: float
    #: Crystal-pose RMSD after the step (NaN when unreported).
    crystal_rmsd: float


class TransitionRing:
    """Lock-free SPSC ring of transition records in shared memory.

    One ring per actor process: the actor (single producer) pushes each
    transition as it happens; the learner (single consumer) drains in
    batches.  Correctness rests on the classic single-producer /
    single-consumer discipline: the producer writes the slot payload
    *then* bumps ``head``; the consumer reads up to ``head`` and bumps
    ``tail`` only after copying out.  Head/tail are aligned 64-bit
    values written by exactly one side each, so no lock is needed.

    Backpressure: ``push`` sleep-polls while the ring is full (counting
    ``full_waits``), so a slow learner throttles actors instead of
    dropping data.  Starvation on the consumer side is observable as
    empty ``drain`` calls.

    The ring must be allocated before forking; with the ``fork`` start
    method both sides then share the underlying memory.  A
    ``state_dim`` of zero is valid (state-less payloads -- e.g. pure
    reward streams) and exercised by the comm edge-case tests.
    """

    def __init__(
        self,
        state_dim: int,
        capacity: int,
        *,
        state_dtype=np.float64,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if state_dim < 0:
            raise ValueError("state_dim must be >= 0")
        dtype = np.dtype(state_dtype)
        if dtype not in _STATE_TYPECODES:
            raise TypeError(
                f"unsupported state dtype {dtype}; expected one of "
                f"{sorted(str(d) for d in _STATE_TYPECODES)}"
            )
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self.state_dtype = dtype
        code = _STATE_TYPECODES[dtype]
        n = self.capacity * self.state_dim
        self._states = np.frombuffer(
            RawArray(code, n), dtype=dtype
        ).reshape(self.capacity, self.state_dim)
        self._next_states = np.frombuffer(
            RawArray(code, n), dtype=dtype
        ).reshape(self.capacity, self.state_dim)
        self._actions = np.frombuffer(
            RawArray("q", self.capacity), dtype=np.int64
        )
        self._rewards = np.frombuffer(
            RawArray("d", self.capacity), dtype=np.float64
        )
        self._dones = np.frombuffer(
            RawArray("B", self.capacity), dtype=np.uint8
        )
        self._scores = np.frombuffer(
            RawArray("d", self.capacity), dtype=np.float64
        )
        self._max_qs = np.frombuffer(
            RawArray("d", self.capacity), dtype=np.float64
        )
        self._rmsds = np.frombuffer(
            RawArray("d", self.capacity), dtype=np.float64
        )
        # Monotonic counters; slot index is ``counter % capacity``.
        self._head = RawValue("q", 0)  # written by the producer only
        self._tail = RawValue("q", 0)  # written by the consumer only
        self._full_waits = RawValue("q", 0)

    def __len__(self) -> int:
        """Transitions currently buffered (the ring-depth gauge)."""
        return int(self._head.value - self._tail.value)

    @property
    def pushed(self) -> int:
        """Total transitions ever pushed."""
        return int(self._head.value)

    @property
    def drained(self) -> int:
        """Total transitions ever drained."""
        return int(self._tail.value)

    @property
    def full_waits(self) -> int:
        """Pushes that had to block on a full ring (backpressure)."""
        return int(self._full_waits.value)

    def push(
        self,
        state,
        next_state,
        action: int,
        reward: float,
        done: bool,
        *,
        score: float = float("nan"),
        max_q: float = float("nan"),
        crystal_rmsd: float = float("nan"),
        stop=None,
        timeout: float | None = None,
        poll_interval: float = 1e-4,
    ) -> bool:
        """Producer side: append one transition, blocking while full.

        Returns False (transition dropped) only when ``stop()`` turns
        true or ``timeout`` elapses while waiting for a free slot --
        both are shutdown paths, never silent data loss in a healthy
        run.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        waited = False
        while self._head.value - self._tail.value >= self.capacity:
            if not waited:
                self._full_waits.value += 1
                waited = True
            if stop is not None and stop():
                return False
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(poll_interval)
        i = self._head.value % self.capacity
        state = np.asarray(state, dtype=self.state_dtype).reshape(-1)
        next_state = np.asarray(
            next_state, dtype=self.state_dtype
        ).reshape(-1)
        if state.shape[0] != self.state_dim:
            raise ValueError(
                f"state length {state.shape[0]} != ring state_dim "
                f"{self.state_dim}"
            )
        if next_state.shape[0] != self.state_dim:
            raise ValueError(
                f"next_state length {next_state.shape[0]} != ring "
                f"state_dim {self.state_dim}"
            )
        self._states[i, :] = state
        self._next_states[i, :] = next_state
        self._actions[i] = int(action)
        self._rewards[i] = float(reward)
        self._dones[i] = 1 if done else 0
        self._scores[i] = float(score)
        self._max_qs[i] = float(max_q)
        self._rmsds[i] = float(crystal_rmsd)
        # Publish: the head bump makes the slot visible to the consumer,
        # so it must come after the payload writes above.
        self._head.value += 1
        return True

    def _copy_out(self, counter: int) -> TransitionRecord:
        i = counter % self.capacity
        return TransitionRecord(
            state=self._states[i].copy(),
            next_state=self._next_states[i].copy(),
            action=int(self._actions[i]),
            reward=float(self._rewards[i]),
            done=bool(self._dones[i]),
            score=float(self._scores[i]),
            max_q=float(self._max_qs[i]),
            crystal_rmsd=float(self._rmsds[i]),
        )

    def pop(self) -> TransitionRecord | None:
        """Consumer side: copy out the oldest transition, or None."""
        if self._head.value - self._tail.value <= 0:
            return None
        rec = self._copy_out(self._tail.value)
        # Free the slot only after the copy-out above.
        self._tail.value += 1
        return rec

    def drain(self, max_items: int | None = None) -> list[TransitionRecord]:
        """Consumer side: copy out up to ``max_items`` transitions.

        Reads ``head`` once, so a concurrent producer never extends the
        batch mid-drain.  Returns an empty list when the ring is empty
        (the starvation signal).
        """
        head = self._head.value
        tail = self._tail.value
        available = head - tail
        if max_items is not None:
            available = min(available, int(max_items))
        out: list[TransitionRecord] = []
        for k in range(available):
            out.append(self._copy_out(tail + k))
        self._tail.value = tail + available
        return out


def make_comm(mode: str, **kwargs) -> CommChannel:
    """Factory keyed by config string ("ram" or "file")."""
    if mode == "ram":
        return RamComm()
    if mode == "file":
        return FileComm(**kwargs)
    raise ValueError(f"unknown comm mode {mode!r}")
