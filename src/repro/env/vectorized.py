"""Synchronous vectorized environments: batch the agent's forward pass.

The paper's Algorithm 2 steps one environment at a time, so the
Q-network runs on single states -- wasteful on any vector hardware.
:class:`SyncVectorEnv` steps N independent environment instances in
lockstep and auto-resets finished ones, letting the agent evaluate all N
states in one batched forward (see
:class:`repro.rl.vector_trainer.VectorTrainer`).  With N complexes of
different seeds this doubles as a multi-complex curriculum -- the
training-side half of the generalization story.

Environment stepping itself stays serial here; for process-parallel
stepping use :class:`repro.env.async_vectorized.AsyncVectorEnv`.  Both
satisfy the :class:`repro.env.protocol.VectorEnv` contract and should
be constructed through :func:`repro.env.factory.make_vector_env`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Sequence

import numpy as np

from repro.env.protocol import RESTARTS_METRIC, VectorEnv, coerce_actions


class SyncVectorEnv(VectorEnv):
    """Lockstep wrapper over N gym-flavoured environments.

    All environments must share state dimensionality and action count.
    ``step`` consumes one action per env and returns stacked arrays;
    environments that finish are reset immediately and their *fresh*
    state is returned (the terminal transition's true next-state is
    surfaced in ``infos[i]["terminal_state"]`` so replay stores the
    correct tuple).  See :mod:`repro.env.protocol` for the full
    contract shared with the async backend.

    .. deprecated::
        Constructing ``SyncVectorEnv`` directly is deprecated; use
        :func:`repro.env.factory.make_vector_env`, which also selects
        the process-parallel backend and wires telemetry.
    """

    def __init__(
        self,
        env_fns: Sequence[Callable[[], Any]],
        *,
        tracer=None,
        metrics=None,
    ):
        warnings.warn(
            "constructing SyncVectorEnv directly is deprecated; use "
            "repro.env.factory.make_vector_env(env_fns=..., "
            "backend='sync') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(env_fns, tracer=tracer, metrics=metrics)

    @classmethod
    def _from_factory(
        cls,
        env_fns: Sequence[Callable[[], Any]],
        *,
        tracer=None,
        metrics=None,
    ) -> "SyncVectorEnv":
        """Construct without the direct-call deprecation warning."""
        self = object.__new__(cls)
        self._init(env_fns, tracer=tracer, metrics=metrics)
        return self

    def _init(self, env_fns, *, tracer=None, metrics=None) -> None:
        if not env_fns:
            raise ValueError("need at least one environment")
        #: Optional :class:`repro.telemetry.spans.SpanTracer` /
        #: :class:`repro.telemetry.metrics.MetricsRegistry`; the sync
        #: backend records a "vector-step" span per batch step.
        self.tracer = tracer
        self.metrics = metrics
        self.worker_restarts = 0
        if metrics is not None:
            # In-process envs never restart, but registering the
            # counter keeps telemetry output uniform across backends.
            metrics.counter(RESTARTS_METRIC)
        self.envs = [fn() for fn in env_fns]
        dims = {e.state_dim for e in self.envs}
        acts = {e.n_actions for e in self.envs}
        if len(dims) != 1 or len(acts) != 1:
            raise ValueError(
                f"environments disagree: state dims {dims}, actions {acts}"
            )
        self.state_dim = dims.pop()
        self.n_actions = acts.pop()
        dtypes = {
            np.dtype(getattr(e, "state_dtype", np.float64))
            for e in self.envs
        }
        if len(dtypes) != 1:
            raise ValueError(f"environments disagree: state dtypes {dtypes}")
        #: Dtype of the stacked state arrays (float32 for compact envs).
        self.state_dtype = dtypes.pop()
        specs = {getattr(e, "observation_spec", None) for e in self.envs}
        if len(specs) != 1:
            raise ValueError(
                f"environments disagree: observation specs {specs}"
            )
        #: Shared :class:`~repro.env.observation.ObservationSpec` of the
        #: wrapped envs (None for spec-less custom envs).
        self.observation_spec = specs.pop()

    @property
    def n_envs(self) -> int:
        """Number of wrapped environments."""
        return len(self.envs)

    def reset(self) -> np.ndarray:
        """Reset every env; returns (n_envs, state_dim)."""
        return np.stack(
            [e.reset() for e in self.envs]
        ).astype(self.state_dtype)

    def step(
        self, actions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        """Step all envs; returns (states, rewards, dones, infos)."""
        acts = coerce_actions(actions, self.n_envs)
        if self.tracer is None:
            return self._step(acts)
        with self.tracer.span("vector-step"):
            return self._step(acts)

    def _step(self, acts: np.ndarray):
        states = np.empty((self.n_envs, self.state_dim), dtype=self.state_dtype)
        rewards = np.empty(self.n_envs)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = []
        for i, (env, action) in enumerate(zip(self.envs, acts)):
            state, reward, done, info = env.step(int(action))
            if done:
                # Snapshot: compact envs reuse their emission buffers,
                # and the reset below would otherwise clobber the
                # terminal state the replay needs.
                info = dict(
                    info,
                    terminal_state=np.array(state, dtype=self.state_dtype),
                )
                state = env.reset()
            states[i] = state
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
        return states, rewards, dones, tuple(infos)

    def close(self) -> None:
        """Close every wrapped environment (ignoring missing close)."""
        for e in self.envs:
            close = getattr(e, "close", None)
            if close is not None:
                close()
