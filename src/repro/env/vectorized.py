"""Synchronous vectorized environments: batch the agent's forward pass.

The paper's Algorithm 2 steps one environment at a time, so the
Q-network runs on single states -- wasteful on any vector hardware.
:class:`SyncVectorEnv` steps N independent environment instances in
lockstep and auto-resets finished ones, letting the agent evaluate all N
states in one batched forward (see
:class:`repro.rl.vector_trainer.VectorTrainer`).  With N complexes of
different seeds this doubles as a multi-complex curriculum -- the
training-side half of the generalization story.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np


class SyncVectorEnv:
    """Lockstep wrapper over N gym-flavoured environments.

    All environments must share state dimensionality and action count.
    ``step`` consumes one action per env and returns stacked arrays;
    environments that finish are reset immediately and their *fresh*
    state is returned (the terminal transition's true next-state is
    surfaced in ``infos[i]["terminal_state"]`` so replay stores the
    correct tuple).
    """

    def __init__(self, env_fns: Sequence[Callable[[], Any]]):
        if not env_fns:
            raise ValueError("need at least one environment")
        self.envs = [fn() for fn in env_fns]
        dims = {e.state_dim for e in self.envs}
        acts = {e.n_actions for e in self.envs}
        if len(dims) != 1 or len(acts) != 1:
            raise ValueError(
                f"environments disagree: state dims {dims}, actions {acts}"
            )
        self.state_dim = dims.pop()
        self.n_actions = acts.pop()

    @property
    def n_envs(self) -> int:
        """Number of wrapped environments."""
        return len(self.envs)

    def reset(self) -> np.ndarray:
        """Reset every env; returns (n_envs, state_dim)."""
        return np.stack([e.reset() for e in self.envs])

    def step(
        self, actions: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Step all envs; returns (states, rewards, dones, infos)."""
        if len(actions) != self.n_envs:
            raise ValueError(
                f"expected {self.n_envs} actions, got {len(actions)}"
            )
        states = np.empty((self.n_envs, self.state_dim))
        rewards = np.empty(self.n_envs)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = []
        for i, (env, action) in enumerate(zip(self.envs, actions)):
            state, reward, done, info = env.step(int(action))
            if done:
                info = dict(info, terminal_state=state)
                state = env.reset()
            states[i] = state
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
        return states, rewards, dones, infos

    def close(self) -> None:
        """Close every wrapped environment (ignoring missing close)."""
        for e in self.envs:
            close = getattr(e, "close", None)
            if close is not None:
                close()
