"""Process-parallel vectorized environments over shared memory.

The paper's Section 5 blames two things for its wall-clock: the
file-based engine<->agent channel and the strictly serial stepping of
one environment per trainer.  :class:`AsyncVectorEnv` removes the
second: each of the N environments lives in its own worker process and
steps **concurrently**, so the Eq. 1 scoring hot path spreads across
cores instead of time-slicing one.

Data exchange reuses the :class:`repro.env.comm.CommChannel`
abstraction via :class:`repro.env.comm.SharedSlotComm`: states land in
one preallocated ``(n_envs, state_dim)`` shared block (float64, or
float32 when the envs advertise a compact ``state_dtype``) and rewards
in an ``(n_envs,)`` block, written in place by workers -- no per-step
pickling of 16k-float state vectors.  Only the small,
irregular payloads (done flags, info dicts, terminal states) travel
over the command pipes.

Robustness (the part a long paper-scale run actually needs):

- **per-step timeouts** -- a worker that does not answer within
  ``step_timeout`` seconds is declared lost;
- **crash detection + respawn** -- a dead or hung worker is killed and
  respawned from its original ``env_fn`` (re-seeded by construction),
  the in-flight episode is discarded (surfaced as ``done=True`` with
  ``info["worker_restarted"]``), and the restart is counted in the
  ``vector_env/worker_restarts`` telemetry metric;
- **graceful close()** -- workers are asked to exit, then terminated,
  then killed; ``close`` is idempotent and also runs on GC.

Requires a ``fork``-capable platform by default (worker env thunks are
inherited, not pickled); pass ``context="spawn"`` with picklable
``env_fns`` otherwise.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.env.comm import SharedSlotComm
from repro.env.protocol import (
    QUEUE_WAIT_METRIC,
    RESTARTS_METRIC,
    VectorEnv,
    coerce_actions,
)


def _worker(
    index: int,
    env_fn: Callable[[], Any],
    conn,
    states_buf,
    rewards_buf,
    state_dim: int,
    n_envs: int,
    state_dtype: str = "float64",
) -> None:
    """Worker loop: own one env, answer reset/step/close commands.

    States and rewards are delivered through the shared block via
    :class:`SharedSlotComm`; the pipe carries commands, done flags,
    info dicts, and terminal states (small and per-episode, not
    per-step).
    """
    # Shutdown is coordinated by the parent over the pipe; a SIGINT/
    # SIGTERM aimed at the process group must not kill (or, via an
    # inherited ShutdownGuard handler, KeyboardInterrupt) a worker
    # mid-write and race the parent's shutdown snapshot.
    from repro.runtime.signals import mask_worker_signals

    mask_worker_signals()
    env = None
    try:
        env = env_fn()
        conn.send(("ready", (int(env.state_dim), int(env.n_actions))))
        dtype = np.dtype(state_dtype)
        states = np.frombuffer(states_buf, dtype=dtype).reshape(
            n_envs, state_dim
        )
        rewards = np.frombuffer(rewards_buf, dtype=np.float64)
        comm = SharedSlotComm(states[index], rewards, index)
        while True:
            cmd, data = conn.recv()
            if cmd == "reset":
                state = env.reset()
                comm.exchange(state, 0.0)
                conn.send(("ok", None))
            elif cmd == "step":
                state, reward, done, info = env.step(int(data))
                if done:
                    # np.array (not asarray): compact envs reuse their
                    # emission buffers, and the reset below would
                    # otherwise clobber the terminal state.
                    info = dict(
                        info,
                        terminal_state=np.array(state, dtype=dtype),
                    )
                    state = env.reset()
                comm.exchange(state, reward)
                conn.send(("ok", (bool(done), info)))
            elif cmd == "close":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - defensive
                conn.send(("error", f"unknown command {cmd!r}"))
    except (KeyboardInterrupt, EOFError):  # pragma: no cover - teardown race
        pass
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        if env is not None:
            close = getattr(env, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - best effort
                    pass
        conn.close()


class WorkerCrashError(RuntimeError):
    """A worker died/hung and could not be (or was not) respawned."""


class AsyncVectorEnv(VectorEnv):
    """N environments in N worker processes, stepped concurrently.

    Satisfies the :class:`repro.env.protocol.VectorEnv` contract
    exactly as :class:`repro.env.vectorized.SyncVectorEnv` does
    (auto-reset, ``terminal_state`` info, tuple infos, action
    validation) -- the seeded-equivalence test in
    ``tests/test_vector_env_protocol.py`` asserts transition streams
    are identical between the two backends.

    Parameters
    ----------
    env_fns:
        One zero-arg environment constructor per worker.  Re-invoked
        on respawn, so determinism after a crash is the thunk's
        responsibility (build it from a seeded config).
    step_timeout:
        Seconds to wait for each worker's step/reset answer before
        declaring it lost and respawning it.
    spawn_timeout:
        Seconds to wait for a worker's startup handshake.
    max_restarts:
        Total respawn budget across all workers; exceeding it raises
        :class:`WorkerCrashError` (guards against a deterministically
        crashing environment respawning forever).
    context:
        ``multiprocessing`` start method; default "fork" where
        available (thunks need not pickle), else the platform default.
    tracer / metrics:
        Optional :class:`~repro.telemetry.spans.SpanTracer` and
        :class:`~repro.telemetry.metrics.MetricsRegistry`.  The tracer
        records a "vector-step" span with a "queue-wait" child (time
        from dispatch until the last worker answered); the registry
        gets the ``vector_env/worker_restarts`` counter and the
        ``vector_env/queue_wait_seconds`` gauge.  Worker-side spans do
        not propagate across the process boundary (documented in
        docs/PARALLELISM.md).
    """

    def __init__(
        self,
        env_fns: Sequence[Callable[[], Any]],
        *,
        step_timeout: float = 60.0,
        spawn_timeout: float = 30.0,
        max_restarts: int = 16,
        context: str | None = None,
        tracer=None,
        metrics=None,
    ):
        if not env_fns:
            raise ValueError("need at least one environment")
        if step_timeout <= 0 or spawn_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.env_fns = list(env_fns)
        self.step_timeout = float(step_timeout)
        self.spawn_timeout = float(spawn_timeout)
        self.max_restarts = int(max_restarts)
        self.tracer = tracer
        self.metrics = metrics
        self.worker_restarts = 0
        self._closed = False

        if context is None:
            methods = mp.get_all_start_methods()
            context = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(context)

        # Probe one env in-parent for the shared-buffer geometry; every
        # worker's startup handshake is validated against it below.
        probe = self.env_fns[0]()
        try:
            #: Shared :class:`~repro.env.observation.ObservationSpec`
            #: of the wrapped envs (None for spec-less custom envs).
            #: When present, the shared-memory block geometry below
            #: derives from it.
            self.observation_spec = getattr(probe, "observation_spec", None)
            self.n_actions = int(probe.n_actions)
            if self.observation_spec is not None:
                self.state_dim = int(self.observation_spec.dim)
                #: Dtype of the shared state block (float32 when the
                #: envs emit compact tails or descriptor features; see
                #: repro.env.protocol).
                self.state_dtype = self.observation_spec.np_dtype
            else:
                self.state_dim = int(probe.state_dim)
                self.state_dtype = np.dtype(
                    getattr(probe, "state_dtype", np.float64)
                )
        finally:
            close = getattr(probe, "close", None)
            if close is not None:
                close()
            del probe

        n = len(self.env_fns)
        # The preallocated exchange blocks: one (n_envs, state_dim)
        # state block in the envs' advertised dtype plus an (n_envs,)
        # float64 reward block, shared with every worker (anonymous
        # mmap, inherited on fork).
        typecodes = {np.dtype(np.float64): "d", np.dtype(np.float32): "f"}
        if self.state_dtype not in typecodes:
            raise ValueError(
                f"unsupported state dtype {self.state_dtype} for the "
                "shared-memory backend (float32/float64 only)"
            )
        self._states_buf = self._ctx.RawArray(
            typecodes[self.state_dtype], n * self.state_dim
        )
        self._rewards_buf = self._ctx.RawArray("d", n)
        self._states = np.frombuffer(
            self._states_buf, dtype=self.state_dtype
        ).reshape(n, self.state_dim)
        self._rewards = np.frombuffer(self._rewards_buf, dtype=np.float64)
        # Last states handed to the caller; used as the discarded
        # episode's terminal state when a worker is respawned mid-step.
        self._last_states = np.zeros(
            (n, self.state_dim), dtype=self.state_dtype
        )

        self._procs: list = [None] * n
        self._conns: list = [None] * n
        if self.metrics is not None:
            # Register eagerly so a restart-free run still reports 0.
            self.metrics.counter(RESTARTS_METRIC)
        try:
            dims = []
            for i in range(n):
                dims.append(self._spawn(i))
            bad = [
                (i, d) for i, d in enumerate(dims)
                if d != (self.state_dim, self.n_actions)
            ]
            if bad:
                raise ValueError(
                    "environments disagree: expected (state_dim, "
                    f"n_actions)=({self.state_dim}, {self.n_actions}), "
                    f"got {bad}"
                )
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------
    def _spawn(self, i: int) -> tuple[int, int]:
        """Start worker ``i``; returns its reported (state_dim, n_actions)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker,
            args=(
                i,
                self.env_fns[i],
                child_conn,
                self._states_buf,
                self._rewards_buf,
                self.state_dim,
                len(self.env_fns),
                self.state_dtype.name,
            ),
            daemon=True,
            name=f"async-vec-env-{i}",
        )
        proc.start()
        child_conn.close()
        self._procs[i] = proc
        self._conns[i] = parent_conn
        kind, payload = self._recv(i, self.spawn_timeout, what="handshake")
        if kind != "ready":
            raise WorkerCrashError(
                f"worker {i} failed during startup: {payload}"
            )
        return tuple(payload)

    def _recv(self, i: int, timeout: float, *, what: str):
        """One message from worker ``i`` or a ("crashed", reason) marker."""
        conn = self._conns[i]
        try:
            if not conn.poll(timeout):
                alive = self._procs[i].is_alive()
                return (
                    "crashed",
                    f"worker {i} {'hung' if alive else 'died'} during "
                    f"{what} (timeout={timeout:g}s)",
                )
            return conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
            return ("crashed", f"worker {i} pipe broke during {what}")

    def _reap(self, i: int) -> None:
        """Forcefully stop worker ``i`` and close its pipe."""
        proc, conn = self._procs[i], self._conns[i]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=1.0)
        self._procs[i] = None
        self._conns[i] = None

    def _respawn(self, i: int, reason: str) -> None:
        """Replace a lost worker; the fresh env is reset in place."""
        self.worker_restarts += 1
        if self.worker_restarts > self.max_restarts:
            self.close()
            raise WorkerCrashError(
                f"worker respawn budget exhausted "
                f"({self.max_restarts}); last failure: {reason}"
            )
        if self.metrics is not None:
            self.metrics.inc(RESTARTS_METRIC)
        self._reap(i)
        dims = self._spawn(i)
        if dims != (self.state_dim, self.n_actions):  # pragma: no cover
            raise WorkerCrashError(
                f"respawned worker {i} changed geometry: {dims}"
            )
        self._conns[i].send(("reset", None))
        kind, payload = self._recv(i, self.step_timeout, what="respawn reset")
        if kind != "ok":
            raise WorkerCrashError(
                f"respawned worker {i} failed its reset: {payload}"
            )

    # -- protocol ----------------------------------------------------------
    @property
    def n_envs(self) -> int:
        """Number of worker processes / environments."""
        return len(self.env_fns)

    def reset(self) -> np.ndarray:
        """Reset every env; returns ``(n_envs, state_dim)``."""
        self._check_open()
        for conn in self._conns:
            conn.send(("reset", None))
        for i in range(self.n_envs):
            kind, payload = self._recv(i, self.step_timeout, what="reset")
            if kind == "crashed":
                self._respawn(i, payload)
            elif kind == "error":
                raise RuntimeError(f"worker {i} raised: {payload}")
        states = self._states.copy()
        self._last_states = states.copy()
        return states

    def step(
        self, actions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        """Step all envs concurrently; see :mod:`repro.env.protocol`."""
        self._check_open()
        acts = coerce_actions(actions, self.n_envs)
        if self.tracer is None:
            return self._step(acts)
        with self.tracer.span("vector-step"):
            return self._step(acts)

    def _step(self, acts: np.ndarray):
        for i, conn in enumerate(self._conns):
            conn.send(("step", int(acts[i])))
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = [None] * self.n_envs
        t0 = time.perf_counter()
        if self.tracer is None:
            self._collect(dones, infos)
        else:
            with self.tracer.span("queue-wait"):
                self._collect(dones, infos)
        wait = time.perf_counter() - t0
        if self.metrics is not None:
            self.metrics.set(QUEUE_WAIT_METRIC, wait)
        states = self._states.copy()
        rewards = self._rewards.copy()
        self._last_states = states.copy()
        return states, rewards, dones, tuple(infos)

    def _collect(self, dones: np.ndarray, infos: list) -> None:
        """Gather one step answer per worker, respawning the lost ones."""
        for i in range(self.n_envs):
            kind, payload = self._recv(i, self.step_timeout, what="step")
            if kind == "ok":
                done, info = payload
                dones[i] = done
                infos[i] = info
            elif kind == "crashed":
                # Discard the in-flight episode: the respawned env's
                # fresh reset state is already in the shared block; the
                # pre-crash state stands in as the terminal state.
                self._respawn(i, payload)
                self._rewards[i] = 0.0
                dones[i] = True
                infos[i] = {
                    "terminal_state": self._last_states[i].copy(),
                    "worker_restarted": True,
                    "worker_crash_reason": payload,
                }
            else:  # worker env raised: a bug, not an infrastructure crash
                self._reap(i)
                raise RuntimeError(f"worker {i} raised: {payload}")

    def close(self) -> None:
        """Reap every worker (graceful, then forceful); idempotent."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for i in range(len(self._procs)):
            self._reap(i)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("AsyncVectorEnv is closed")

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
