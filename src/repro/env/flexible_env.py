"""Flexible-ligand environment (paper Section 5, third limitation).

"A more real setting would be working with flexible ligands able to
rotate in certain flexible bonds ... in the 2BSM context, the ligand can
fold in 6 bonds, so that would make a total of 18 possible actions."

:class:`FlexibleDockingEnv` is :class:`~repro.env.docking_env.DockingEnv`
over an engine with torsion actions enabled; with the paper's 6 bonds the
action space is 12 + 2*6 = 24 *signed* torsion actions -- the paper counts
18 by giving each bond a single action slot; both conventions are
supported via ``signed_torsions``.
"""

from __future__ import annotations

from repro.chem.builders import BuiltComplex
from repro.config import DQNDockingConfig
from repro.env.comm import CommChannel
from repro.env.docking_env import DockingEnv
from repro.metadock.engine import MetadockEngine


class FlexibleDockingEnv(DockingEnv):
    """Docking environment with per-bond torsion actions."""

    def __init__(
        self,
        built: BuiltComplex,
        *,
        n_torsions: int = 6,
        shift_length: float = 1.0,
        rotation_angle_deg: float = 0.5,
        torsion_angle_deg: float = 5.0,
        escape_factor: float = 4.0 / 3.0,
        low_score_patience: int = 20,
        low_score_threshold: float = -100000.0,
        comm: CommChannel | None = None,
        compact_states: bool = False,
        observation_mode: str | None = None,
        scoring_method: str = "exact",
        scoring_kwargs: dict | None = None,
    ):
        engine = MetadockEngine(
            built,
            shift_length=shift_length,
            rotation_angle_deg=rotation_angle_deg,
            n_torsions=n_torsions,
            torsion_angle_deg=torsion_angle_deg,
            scoring_method=scoring_method,
            scoring_kwargs=scoring_kwargs,
        )
        super().__init__(
            engine,
            escape_factor=escape_factor,
            low_score_patience=low_score_patience,
            low_score_threshold=low_score_threshold,
            comm=comm,
            compact_states=compact_states,
            observation_mode=observation_mode,
        )
        self.n_torsions = int(n_torsions)


def make_flexible_env(
    cfg: DQNDockingConfig, built: BuiltComplex | None = None
) -> FlexibleDockingEnv:
    """Deprecated alias of ``repro.env.factory.make_env(kind="flexible")``."""
    import warnings

    warnings.warn(
        "make_flexible_env is deprecated; use "
        'repro.env.factory.make_env(cfg, built, kind="flexible")',
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.env.factory import make_env

    return make_env(cfg, built, kind="flexible")
