"""The formal ``VectorEnv`` protocol shared by every vector backend.

The paper's Section 5 names serial engine<->agent stepping as the main
throughput limitation: one trainer drives one environment, so the
scoring hot path (Eq. 1 over thousands of receptor atoms) never uses
more than one core.  Everything that batches environments -- the
in-process :class:`repro.env.vectorized.SyncVectorEnv`, the
process-parallel :class:`repro.env.async_vectorized.AsyncVectorEnv`,
and whatever future backends (sharded, remote) come next -- implements
this one contract, so trainers and experiments stay backend-agnostic.

The contract
------------

- ``reset() -> np.ndarray`` of shape ``(n_envs, state_dim)``: resets
  every wrapped environment and returns the stacked fresh states.
- ``step(actions)`` consumes **any 1-D integer array-like** of length
  ``n_envs`` (list, tuple, or integer ndarray).  Float, boolean, or
  otherwise non-integer dtypes raise :class:`TypeError`; wrong
  dimensionality or length raises :class:`ValueError`.  It returns a
  4-tuple ``(states, rewards, dones, infos)``:

  * ``states`` -- ``(n_envs, state_dim)``; float64 by default, but an
    environment may advertise a ``state_dtype`` attribute (e.g. the
    float32 compact docking states of
    ``DockingEnv(compact_states=True)``) and every backend then
    carries that dtype end-to-end, including through the async
    backend's shared-memory block.  For environments that finished
    this step, the row holds the **fresh post-reset state**
    (auto-reset), not the terminal state;
  * ``rewards`` -- ``(n_envs,)`` float64;
  * ``dones`` -- ``(n_envs,)`` bool;
  * ``infos`` -- a **tuple** of ``n_envs`` dicts.  When ``dones[i]``
    is true, ``infos[i]["terminal_state"]`` carries the true terminal
    next-state so replay can store the correct transition tuple.

- ``close()`` releases every wrapped environment (and, for process
  backends, reaps the worker processes).  It is idempotent.
- ``state_dim`` / ``n_actions`` -- shared by all wrapped environments;
  construction fails with :class:`ValueError` if they disagree.
- ``state_dtype`` -- dtype of the stacked state arrays, resolved from
  the wrapped environments' ``state_dtype`` attribute (default
  float64 when absent).
- ``n_envs`` -- the number of wrapped environments.
- ``worker_restarts`` -- how many crashed workers were respawned so
  far (always 0 for in-process backends).

Construct backends through :func:`repro.env.factory.make_vector_env`
rather than directly; the factory picks the backend, threads telemetry
through, and is the single place experiments/CLI configure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Registry key for the crashed-and-respawned worker counter.  Every
#: backend registers it eagerly when given a metrics registry, so a
#: restart-free run still reports an explicit 0 in telemetry output.
RESTARTS_METRIC = "vector_env/worker_restarts"
#: Registry key for the async backend's dispatch-to-last-answer gauge.
QUEUE_WAIT_METRIC = "vector_env/queue_wait_seconds"


def coerce_actions(actions, n_envs: int) -> np.ndarray:
    """Validate and normalize a batch of actions to 1-D int64.

    Accepts any 1-D integer array-like of length ``n_envs``.  Raises
    :class:`TypeError` for non-integer dtypes (floats are *not*
    silently truncated) and :class:`ValueError` for wrong shape or
    length -- the shared input contract of every ``VectorEnv`` backend.
    """
    arr = np.asarray(actions)
    if arr.ndim != 1:
        raise ValueError(
            f"actions must be 1-D (one action per env), got shape {arr.shape}"
        )
    if arr.shape[0] != n_envs:
        raise ValueError(f"expected {n_envs} actions, got {arr.shape[0]}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"actions must have an integer dtype, got {arr.dtype}; "
            "cast explicitly if your actions really are whole numbers"
        )
    return arr.astype(np.int64, copy=False)


class VectorEnv(ABC):
    """Abstract base for N-environment lockstep backends.

    See the module docstring for the full semantic contract.  Concrete
    backends: :class:`repro.env.vectorized.SyncVectorEnv` (serial,
    in-process) and :class:`repro.env.async_vectorized.AsyncVectorEnv`
    (one subprocess per environment, shared-memory exchange).
    """

    #: Shared state-vector length of the wrapped environments.
    state_dim: int
    #: Shared action count of the wrapped environments.
    n_actions: int
    #: Crashed-and-respawned worker count (0 for in-process backends).
    worker_restarts: int = 0

    @property
    @abstractmethod
    def n_envs(self) -> int:
        """Number of wrapped environments."""

    @abstractmethod
    def reset(self) -> np.ndarray:
        """Reset every env; returns ``(n_envs, state_dim)`` states."""

    @abstractmethod
    def step(
        self, actions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        """Step all envs; returns ``(states, rewards, dones, infos)``."""

    @abstractmethod
    def close(self) -> None:
        """Release wrapped environments (idempotent)."""

    def __enter__(self) -> "VectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
