"""Hybrid precomputed-field pose scoring (AutoDock-style receptor maps).

The incremental Verlet scorer still touches receptor atoms on every
step; the next order of magnitude comes from tabulating the rigid
receptor's fields once and reducing a pose evaluation to O(ligand
atoms) trilinear interpolations.  :class:`FieldScorer` is a *hybrid*
two-regime scorer built around :class:`FieldMaps`:

Far field (interpolated)
------------------------
Every Eq. 1 term decomposes per ligand atom (each pair contains exactly
one ligand atom), so the receptor's contribution to a ligand atom of a
given *type* is a pure scalar field of position and can be tabulated:

- an electrostatic potential map ``phi(x) = k sum_j q_j / r_j``
  (multiplied by the ligand charge at evaluation time -- exact per
  atom);
- per distinct ligand ``(sigma, epsilon)`` type one repulsion /
  dispersion map pair ``rep_t(x) = sum_j 4 sqrt(eps_j eps_t)
  ((sigma_j+sigma_t)/2)^12 / r_j^12`` and the ``^6`` analogue -- the
  *exact* Lorentz-Berthelot arithmetic-sigma combination, removing the
  geometric-mean model error of :class:`~repro.scoring.grid
  .PotentialGrid`;
- per H-bond eligibility class (ligand donor/acceptor flags) an
  angular-weighted 12-10 map ``sum_j cos(theta_j(x)) (C/r^12 -
  D/r^10)`` over the class-eligible receptor atoms, plus per (type x
  class) the ``(1 - sin(theta_j(x)))``-weighted repulsion/dispersion
  pair carrying the ``- (1 - sin) e_lj`` part of the Eq. 1 correction.
  ``theta_j(x)`` depends only on the receptor donor direction and the
  grid position, so the full angular term tabulates exactly -- the
  second documented ``PotentialGrid`` model error (no H-bond term)
  disappears.

Near field (exact pairwise)
---------------------------
Interpolating ``r^-12`` spikes is hopeless, so the maps never contain
them: every kernel is tabulated with the pair distance *clipped from
below* at ``clash_radius`` (``f_clip(r) = f(max(r, clash_radius))``),
which bounds the fields' curvature everywhere and makes trilinear
interpolation uniformly well-behaved -- including *inside* the
receptor.  Exactness near the surface is restored pairwise: ligand
atoms within ``clash_radius`` of a receptor atom are rescored through
the exact pairwise path -- each overlapping pair's full Eq. 1 energy
at the true (MIN_DISTANCE-clamped, like the exact scorer) distance
replaces its clipped-kernel contribution analytically.  Overlap
detection reuses the cell-list idea of
:mod:`repro.scoring.neighborlist` at voxel granularity: the build
precomputes, for every grid voxel, the receptor atoms that could
overlap an atom inside it (a CSR candidate table over the same node
distances the maps integrate), so at score time candidates arrive in
one gather with no spatial query at all, and a distance check keeps
the actual ``r < clash_radius`` pairs (the table is validated against
:func:`~repro.scoring.neighborlist.query_pairs` on a receptor
``CellList`` in the tests).  The clash-dominating terms are therefore
computed exactly, pair by pair, while everything smooth stays two
table lookups per atom.  Atoms outside the grid box always take the
exact full-column path -- no silent boundary clamp (the documented
``PotentialGrid._trilinear`` behavior, counted by
``scoring/grid_oob_points`` there); box padding exceeds
``clash_radius``, so out-of-box atoms can have no overlapping pairs.

Error budget (PR 5 truncation-policy style)
-------------------------------------------
A pose whose atoms are all out-of-box scores *bit-identically* to
:class:`~repro.scoring.scorers.ExactScorer` (same kernels, same
reduction order).  For in-box atoms the only error source is trilinear
interpolation of the clipped fields, whose curvature is bounded by the
kernels at ``r = clash_radius``; overlapping pairs -- where the exact
and clipped kernels diverge by up to ~1e15 -- contribute their
difference exactly.  The documented per-step score-change bounds at
the default ``spacing``/``clash_radius`` are
:data:`FIELD_CALM_STEP_BOUND` (calm docking regime) and
:data:`FIELD_CLASH_REL_BOUND` (clash regime, dominated by the exact
pair corrections), measured at 2BSM scale by
``benchmarks/test_bench_score_step.py`` and tabulated per spacing in
docs/PERFORMANCE.md ("Scoring kernels").

Bit-stability (checkpoint safety)
---------------------------------
Maps are *derived* state: never checkpointed, resumed runs start cold.
Every map's content is a pure function of (receptor, geometry, atom
type) -- each is accumulated independently of which other types share a
build pass -- the overlap-pair enumeration follows the candidate
table's canonical atom-major-then-receptor-ascending order, and the
pair corrections are pure functions of the pose, so a warm (shared /
previously-built) scorer and a cold one
produce bit-identical floats for the same coordinates (pinned by
``tests/test_scoring_field.py``), and interrupt/resume under
``--scoring-method field`` stays bit-exact per docs/CHECKPOINTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, MIN_DISTANCE
from repro.scoring import electrostatics as elec
from repro.scoring import hbond as hb
from repro.scoring import lennard_jones as lj
from repro.scoring.composite import ScoringTables
from repro.scoring.pairwise import direction_vectors, pairwise_distances
from repro.scoring.scorers import as_pose_batch

#: Default lattice spacing, angstrom.  The error-vs-spacing table in
#: docs/PERFORMANCE.md motivates the default: with the clipped kernels
#: 1.0 A already keeps calm-regime per-step drift well under
#: :data:`FIELD_CALM_STEP_BOUND`, and the compact maps stay
#: cache-resident (halving the spacing grew the maps 8x and measurably
#: *slowed* the gather at 2BSM scale).
DEFAULT_SPACING: float = 1.0
#: Default box padding beyond the receptor extent, angstrom.  Sized so
#: docking trajectories (hundreds of 1 A moves from a pocket pose) stay
#: inside the box: out-of-box atoms fall back to exact full columns,
#: which is correct but ~200x slower per atom.  Must exceed
#: ``clash_radius`` so out-of-box atoms cannot have overlapping pairs
#: (enforced at construction).
DEFAULT_PADDING: float = 16.0
#: Default near-field (exact-pair) radius, angstrom.  Map kernels are
#: clipped at this distance; pairs closer than it are rescored through
#: the exact pairwise path.  Beyond it the clipped fields are smooth
#: enough for trilinear interpolation.
DEFAULT_CLASH_RADIUS: float = 3.0
#: Default map storage dtype ("float32" halves map memory; error impact
#: measured in BENCH_score_step.json).
DEFAULT_DTYPE: str = "float64"

#: Documented per-step score-change drift bound vs ExactScorer in the
#: calm docking regime (|score| < 1e4) at the default spacing / clash
#: radius, kcal/mol.  Measured at 2BSM scale by the score bench (see
#: BENCH_score_step.json and docs/PERFORMANCE.md); enforced with margin
#: there.
FIELD_CALM_STEP_BOUND: float = 25.0
#: Documented relative per-step drift bound on clash steps: the
#: clash-dominating overlap pairs are computed exactly, so both scorers
#: are dominated by the same clamped pairs and only the smooth
#: interpolated remainder differs (measured ~8e-5 at the defaults).
FIELD_CLASH_REL_BOUND: float = 1e-3

#: Gauge reporting the built field maps' memory footprint (maps plus
#: the per-ligand combined interpolation stack).
FIELD_BYTES_METRIC = "scoring/field_bytes"
#: Histogram over the per-call fraction of ligand atoms routed through
#: the exact pairwise path (overlapping or out-of-box atoms;
#: ``repro inspect`` renders its mean/max).
NEAR_FRACTION_METRIC = "scoring/near_field_fraction"

_VALID_DTYPES = ("float32", "float64")


def _atom_type_specs(ligand: Molecule) -> tuple[list[tuple], np.ndarray]:
    """Distinct (sigma, epsilon, donor, acceptor) tuples + per-atom ids.

    Ligand atoms draw their parameters from the small element palette
    (:mod:`repro.chem.elements`), so the distinct-type count is a
    handful regardless of ligand size -- per-type maps stay cheap and
    different library ligands share maps whenever they share elements.
    """
    specs: list[tuple] = []
    seen: dict[tuple, int] = {}
    ids = np.empty(ligand.n_atoms, dtype=np.int64)
    for i in range(ligand.n_atoms):
        s = (
            float(ligand.sigma[i]),
            float(ligand.epsilon[i]),
            bool(ligand.hbond_donor[i]),
            bool(ligand.hbond_acceptor[i]),
        )
        if s not in seen:
            seen[s] = len(specs)
            specs.append(s)
        ids[i] = seen[s]
    return specs, ids


class FieldMaps:
    """Lazily grown per-type receptor field maps on one shared lattice.

    One instance serves every ligand scored against its receptor:
    screening workers build it once per worker and pass it to each
    :class:`FieldScorer` via ``cells=`` (mirroring the cell-list /
    potential-grid sharing of the other scorers).  ``ensure`` builds
    only the maps missing for a ligand's type set; each map's content
    is independent of which other types share a build pass, so shared
    and private builds are bitwise identical.
    """

    def __init__(
        self,
        receptor: Molecule,
        *,
        spacing: float = DEFAULT_SPACING,
        padding: float = DEFAULT_PADDING,
        clash_radius: float = DEFAULT_CLASH_RADIUS,
        dtype: str = DEFAULT_DTYPE,
    ):
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        if clash_radius <= 0:
            raise ValueError("clash_radius must be positive")
        if padding <= clash_radius:
            raise ValueError(
                "padding must exceed clash_radius (out-of-box atoms "
                "must have no overlapping pairs)"
            )
        if dtype not in _VALID_DTYPES:
            raise ValueError(
                f"dtype must be one of {_VALID_DTYPES}, got {dtype!r}"
            )
        self.receptor = receptor
        self.spacing = float(spacing)
        self.padding = float(padding)
        self.clash_radius = float(clash_radius)
        self.dtype = str(dtype)
        self._np_dtype = np.dtype(dtype)
        #: Kernel clip distance (exact-path MIN_DISTANCE still applies
        #: below it, on the pair-correction side).
        self.clip_radius = max(self.clash_radius, MIN_DISTANCE)
        self.origin = receptor.coords.min(axis=0) - padding
        upper = receptor.coords.max(axis=0) + padding
        self.shape = np.ceil((upper - self.origin) / spacing).astype(int) + 1
        #: Candidate radius for the clash-voxel table: a receptor atom
        #: within this of a voxel's base node is a candidate for every
        #: point inside the voxel, so an atom in a voxel with no
        #: candidates provably has no receptor atom within clash_radius
        #: (node-to-anywhere-in-voxel <= spacing * sqrt(3)).
        self.flag_radius = self.clash_radius + self.spacing * np.sqrt(3.0)
        # Type-independent content, built on the first ensure() pass.
        self.phi: np.ndarray | None = None
        self.near_mask: np.ndarray | None = None
        # Voxel-granular cell list (CSR over flat node ids): receptor
        # atoms within flag_radius of each voxel's base node.
        self.cand_start: np.ndarray | None = None
        self.cand_count: np.ndarray | None = None
        self.cand_atoms: np.ndarray | None = None
        # Per-type / per-class maps (lazily grown).
        self._lj: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._hb1210: dict[tuple, np.ndarray] = {}
        self._hblj: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        # Combined-stack addressing: every distinct atom-type spec ever
        # ensured gets a stable slot in one shared flattened stack
        # ([phi, combined(spec 0), combined(spec 1), ...]), so *every*
        # ligand scored against this receptor gathers from the same
        # array -- the property the fused cross-ligand batch path
        # (:func:`score_field_group`) relies on.  Slots are append-only;
        # the stack is (re)assembled lazily in :meth:`flat_stack`.
        self._slot: dict[tuple, int] = {}
        self._flat_stack: np.ndarray | None = None
        self._flat_slots = -1
        # H-bond receptor topology: full-length outward directions for
        # the pair corrections, plus the donor/acceptor subset the map
        # build iterates over.
        dirs_full = direction_vectors(receptor.coords, receptor.bonds)
        self.dirs_full = dirs_full
        self.iso_full = (np.abs(dirs_full) < 1e-12).all(axis=1)
        rel = np.flatnonzero(receptor.hbond_donor | receptor.hbond_acceptor)
        self._hrel = rel
        self._hdirs = dirs_full[rel]
        self._hiso = self.iso_full[rel]
        self._hdot = (self._hdirs * receptor.coords[rel]).sum(axis=1)
        self.build_count = 0

    # -- class topology ----------------------------------------------------
    def class_eligible(self, cls: tuple[bool, bool]) -> np.ndarray:
        """Positions *within the h-relevant subset* eligible for ``cls``.

        ``cls`` is the ligand-side (donor, acceptor) flag pair; a
        receptor atom is eligible iff (receptor donor and ligand
        acceptor) or (receptor acceptor and ligand donor) -- the same
        rule as :func:`repro.scoring.hbond.eligible_pairs_mask`.
        """
        don_l, acc_l = cls
        rec = self.receptor
        rel = self._hrel
        elig = np.zeros(rel.size, dtype=bool)
        if acc_l:
            elig |= rec.hbond_donor[rel].astype(bool)
        if don_l:
            elig |= rec.hbond_acceptor[rel].astype(bool)
        return np.flatnonzero(elig)

    # -- accessors ---------------------------------------------------------
    def lj_maps(self, key: tuple[float, float]):
        """(repulsion, dispersion) maps for ligand type ``key``."""
        return self._lj[key]

    def hb1210_map(self, cls: tuple[bool, bool]) -> np.ndarray:
        """cos-weighted 12-10 map for eligibility class ``cls``."""
        return self._hb1210[cls]

    def hb_lj_maps(self, key: tuple[float, float], cls: tuple[bool, bool]):
        """(1-sin)-weighted (repulsion, dispersion) maps for type x class."""
        return self._hblj[(key, cls)]

    def nbytes(self) -> int:
        """Total map storage in bytes (including the clash-voxel table
        and the shared combined interpolation stack)."""
        total = 0
        if self.phi is not None:
            total += self.phi.nbytes + self.near_mask.nbytes
            total += (
                self.cand_start.nbytes
                + self.cand_count.nbytes
                + self.cand_atoms.nbytes
            )
        for rep, disp in self._lj.values():
            total += rep.nbytes + disp.nbytes
        for arr in self._hb1210.values():
            total += arr.nbytes
        for rep, disp in self._hblj.values():
            total += rep.nbytes + disp.nbytes
        if self._flat_stack is not None:
            total += self._flat_stack.nbytes
        return total

    def slot_of(self, spec: tuple) -> int:
        """Combined-stack slot of an ensured atom-type spec."""
        return self._slot[spec]

    def flat_stack(self) -> np.ndarray:
        """The flattened shared stack [phi, combined(slot 0), ...].

        Rebuilt (by re-deriving every slot from the stored component
        maps -- a pure, fixed-order float64 combination cast to the map
        dtype, so every rebuild is bitwise identical) whenever new
        specs have been ensured since the last assembly.  Slot ``1+s``
        holds spec ``s``'s full non-electrostatic clipped-field energy
        ``rep - disp + hb1210 - hb_rep + hb_disp``; slot 0 holds phi.
        """
        nslots = len(self._slot)
        if self._flat_stack is not None and self._flat_slots == nslots:
            return self._flat_stack
        n_nodes = int(np.prod(self.shape))
        flat = np.empty((1 + nslots) * n_nodes, dtype=self._np_dtype)
        flat[:n_nodes] = self.phi.reshape(-1)
        for spec, slot in self._slot.items():
            sig, eps, don, acc = spec
            rep, disp = self._lj[(sig, eps)]
            combined = rep.astype(np.float64) - disp
            cls = (don, acc)
            if (don or acc) and self.class_eligible(cls).size:
                combined += self._hb1210[cls]
                hrep, hdisp = self._hblj[((sig, eps), cls)]
                combined -= hrep
                combined += hdisp
            start = (1 + slot) * n_nodes
            flat[start : start + n_nodes] = combined.reshape(-1)
        self._flat_stack = flat
        self._flat_slots = nslots
        return flat

    # -- construction ------------------------------------------------------
    def ensure(self, specs) -> bool:
        """Build any maps missing for the given atom-type specs.

        ``specs`` is an iterable of ``(sigma, epsilon, donor,
        acceptor)`` tuples.  Returns True if a build pass ran.  Map
        contents are independent of batching: a type built alone and
        one built alongside others yield bitwise-identical arrays
        (each accumulates from its own receptor-parameter vectors over
        the same node distances).
        """
        specs = list(specs)
        for s in specs:
            if s not in self._slot:
                self._slot[s] = len(self._slot)
        lj_keys = []
        for s in specs:
            key = (s[0], s[1])
            if key not in self._lj and key not in lj_keys:
                lj_keys.append(key)
        classes = []
        hb_pairs = []
        for s in specs:
            cls = (s[2], s[3])
            if not (cls[0] or cls[1]):
                continue
            if self.class_eligible(cls).size == 0:
                continue
            if cls not in self._hb1210 and cls not in classes:
                classes.append(cls)
            key = (s[0], s[1])
            pair = (key, cls)
            if pair not in self._hblj and pair not in hb_pairs:
                hb_pairs.append(pair)
        first = self.phi is None
        if not (first or lj_keys or classes or hb_pairs):
            return False
        self._build_pass(first, lj_keys, classes, hb_pairs)
        self.build_count += 1
        return True

    def _build_pass(self, first, lj_keys, classes, hb_pairs) -> None:
        rec = self.receptor
        n = rec.n_atoms
        nx, ny, nz = (int(v) for v in self.shape)
        n_nodes = nx * ny * nz
        # Per-type receptor weight vectors: 4 sqrt(eps_j eps_t) with the
        # *arithmetic* sigma combination (sigma_j + sigma_t)/2 -- the
        # exact Lorentz-Berthelot pair coefficients.
        w12 = {}
        w6 = {}
        for key in {k for k in lj_keys} | {p[0] for p in hb_pairs}:
            sig_t, eps_t = key
            sig_pair = 0.5 * (rec.sigma + sig_t)
            eps_pair = 4.0 * np.sqrt(rec.epsilon * eps_t)
            s6 = sig_pair**6
            w6[key] = eps_pair * s6
            w12[key] = eps_pair * s6 * s6
        rel = self._hrel
        need_hb = bool(classes or hb_pairs)
        sel_of_cls = {
            cls: self.class_eligible(cls)
            for cls in {c for c in classes} | {p[1] for p in hb_pairs}
        }
        c_hb, d_hb = hb.hbond_coefficients()
        # Flat accumulation buffers (float64 during the build; stored
        # astype(self.dtype) at the end).
        out_phi = np.empty(n_nodes) if first else None
        out_count = np.zeros(n_nodes, dtype=np.int32) if first else None
        cand_chunks: list[np.ndarray] = []
        out_lj = {k: (np.empty(n_nodes), np.empty(n_nodes)) for k in lj_keys}
        out_1210 = {c: np.empty(n_nodes) for c in classes}
        out_hblj = {
            p: (np.empty(n_nodes), np.empty(n_nodes)) for p in hb_pairs
        }
        flag_r2 = self.flag_radius**2
        clip_r2 = self.clip_radius**2
        # Chunk the node list so the (chunk, n_rec) temporaries stay
        # bounded (~30 MB each at 2BSM scale).
        chunk = max(256, int(4_000_000 // max(1, n)))
        coords = rec.coords
        a2 = (coords * coords).sum(axis=1)[None, :]
        q = rec.charges
        for start in range(0, n_nodes, chunk):
            stop = min(start + chunk, n_nodes)
            flat = np.arange(start, stop, dtype=np.int64)
            iz = flat % nz
            iy = (flat // nz) % ny
            ix = flat // (ny * nz)
            pts = self.origin + self.spacing * np.stack(
                [ix, iy, iz], axis=1
            ).astype(float)
            # |x - a|^2 via one GEMM; every kernel below sees the
            # distance clipped at clash_radius (f_clip), so the fields
            # stay smooth even on nodes inside receptor atoms.
            p2 = (pts * pts).sum(axis=1)[:, None]
            r2 = p2 + a2 - 2.0 * (pts @ coords.T)
            if first:
                # Voxel candidate extraction from the same distances
                # the maps integrate: nonzero is row-major, so the CSR
                # lists come out node-major with atoms ascending -- the
                # canonical order the pair corrections sum in.
                node_r, atom_c = np.nonzero(r2 <= flag_r2)
                out_count[start:stop] = np.bincount(
                    node_r, minlength=stop - start
                )
                cand_chunks.append(atom_c.astype(np.int32))
            np.maximum(r2, clip_r2, out=r2)
            inv_r = 1.0 / np.sqrt(r2)
            if first:
                out_phi[start:stop] = COULOMB_CONSTANT * (inv_r @ q)
            inv_r2 = inv_r * inv_r
            inv_r6 = inv_r2 * inv_r2 * inv_r2
            inv_r12 = inv_r6 * inv_r6
            for key in lj_keys:
                out_lj[key][0][start:stop] = inv_r12 @ w12[key]
                out_lj[key][1][start:stop] = inv_r6 @ w6[key]
            if need_hb and rel.size:
                # cos(theta_j(x)) = dir_j . (x - a_j) / r_clip: the
                # clipped-distance normalization is deliberate -- the
                # pair corrections subtract exactly this convention.
                cos = (pts @ self._hdirs.T - self._hdot) * inv_r[:, rel]
                cos[:, self._hiso] = 1.0
                np.clip(cos, 0.0, 1.0, out=cos)
                sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
                np.subtract(1.0, sin, out=sin)  # now (1 - sin)
                inv12_h = inv_r12[:, rel]
                e_1210 = c_hb * inv12_h - d_hb * (inv12_h * r2[:, rel])
                for cls in classes:
                    sel = sel_of_cls[cls]
                    out_1210[cls][start:stop] = (
                        cos[:, sel] * e_1210[:, sel]
                    ).sum(axis=1)
                for pair in hb_pairs:
                    key, cls = pair
                    sel = sel_of_cls[cls]
                    gsel = rel[sel]
                    oms = sin[:, sel]
                    out_hblj[pair][0][start:stop] = (
                        oms * inv12_h[:, sel]
                    ) @ w12[key][gsel]
                    out_hblj[pair][1][start:stop] = (
                        oms * inv_r6[:, rel][:, sel]
                    ) @ w6[key][gsel]
        dt = self._np_dtype
        shape3 = (nx, ny, nz)
        if first:
            self.phi = out_phi.astype(dt).reshape(shape3)
            self.near_mask = (out_count > 0).reshape(shape3)
            self.cand_count = out_count
            starts = np.zeros(n_nodes, dtype=np.int64)
            starts[1:] = np.cumsum(out_count[:-1], dtype=np.int64)
            self.cand_start = starts
            self.cand_atoms = (
                np.concatenate(cand_chunks)
                if cand_chunks
                else np.empty(0, dtype=np.int32)
            )
        for key in lj_keys:
            self._lj[key] = (
                out_lj[key][0].astype(dt).reshape(shape3),
                out_lj[key][1].astype(dt).reshape(shape3),
            )
        for cls in classes:
            self._hb1210[cls] = out_1210[cls].astype(dt).reshape(shape3)
        for pair in hb_pairs:
            self._hblj[pair] = (
                out_hblj[pair][0].astype(dt).reshape(shape3),
                out_hblj[pair][1].astype(dt).reshape(shape3),
            )


class FieldScorer:
    """Two-regime hybrid scorer: interpolated fields, exact clash pairs.

    Built lazily on first use (under a "field-build" tracer span when a
    tracer is attached; map size lands in the ``scoring/field_bytes``
    gauge and the per-call exact-path atom fraction in
    ``scoring/near_field_fraction``).  Pass a prebuilt ``cells``
    :class:`FieldMaps` over the same receptor to share maps across
    ligands -- screening workers build one per receptor per worker.

    The hot path folds each ligand atom's full clipped-field energy
    into two trilinear lookups -- the shared ``phi`` map (times the
    atom charge) and a per-type *combined* map ``rep - disp + hb1210 -
    hb_rep + hb_disp`` assembled once per ligand from the stored
    component maps -- gathered for all atoms in a single fused fancy
    index over one flattened stack.  Overlapping pairs then add their
    exact-vs-clipped energy difference pairwise.
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        spacing: float = DEFAULT_SPACING,
        padding: float = DEFAULT_PADDING,
        clash_radius: float = DEFAULT_CLASH_RADIUS,
        dtype: str = DEFAULT_DTYPE,
        *,
        cells: "FieldMaps | None" = None,
    ):
        if cells is not None:
            if not isinstance(cells, FieldMaps):
                raise TypeError(
                    "cells must be a prebuilt FieldMaps, got "
                    f"{type(cells).__name__}"
                )
            mismatched = [
                name
                for name, mine in (
                    ("spacing", float(spacing)),
                    ("padding", float(padding)),
                    ("clash_radius", float(clash_radius)),
                    ("dtype", str(dtype)),
                )
                if getattr(cells, name) != mine
            ]
            if mismatched:
                raise ValueError(
                    "prebuilt FieldMaps parameters differ from the "
                    f"scorer's for: {', '.join(mismatched)}"
                )
            self._maps = cells
        else:
            self._maps = FieldMaps(
                receptor,
                spacing=spacing,
                padding=padding,
                clash_radius=clash_radius,
                dtype=dtype,
            )
        self.receptor = receptor
        self.ligand = ligand
        self.spacing = self._maps.spacing
        self.padding = self._maps.padding
        self.clash_radius = self._maps.clash_radius
        self.dtype = self._maps.dtype
        self._tables = ScoringTables.build(receptor, ligand)
        self._specs, spec_ids = _atom_type_specs(ligand)
        self._charges = np.asarray(ligand.charges, dtype=float)
        # Flat-stack addressing: stack slot 0 is phi, slot 1+g is type
        # g's combined map; per-atom slot offsets in flattened units.
        nx, ny, nz = (int(v) for v in self._maps.shape)
        self._n_nodes = nx * ny * nz
        self._strides = np.array(
            [ny * nz, nz, 1], dtype=np.int64
        )
        self._corner_offs = np.array(
            [
                0,
                1,
                nz,
                nz + 1,
                ny * nz,
                ny * nz + 1,
                ny * nz + nz,
                ny * nz + nz + 1,
            ],
            dtype=np.int64,
        )
        self._spec_ids = spec_ids
        self._inv_spacing = 1.0 / self._maps.spacing
        self._upper = self._maps.shape.astype(float) - 1.0
        self._max_idx = self._maps.shape - 2
        # Built lazily: per-atom flat offsets of each atom's combined
        # map slot in the shared stack, plus views of the stack / the
        # flattened near mask.
        self._foff: np.ndarray | None = None
        self._flat: np.ndarray | None = None
        self._near_flat: np.ndarray | None = None
        self._tracer = None
        self._metrics = None
        #: Exact-path atom fraction of the most recent evaluation
        #: (atoms with overlapping pairs or outside the box).
        self.near_fraction = 0.0

    # -- telemetry ---------------------------------------------------------
    @property
    def tracer(self):
        """Optional :class:`~repro.telemetry.spans.SpanTracer`."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value

    @property
    def metrics(self):
        """Optional :class:`~repro.telemetry.metrics.MetricsRegistry`."""
        return self._metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self._metrics = value
        self._publish_size()

    def _publish_size(self) -> None:
        if self._metrics is not None and self._foff is not None:
            self._metrics.set(
                FIELD_BYTES_METRIC, float(self._maps.nbytes())
            )

    # -- lazy build --------------------------------------------------------
    @property
    def maps(self) -> FieldMaps:
        """The shared field maps, built for this ligand on first access."""
        self._ensure_built()
        return self._maps

    def _ensure_built(self) -> None:
        maps = self._maps
        if self._foff is None:
            if self._tracer is not None:
                with self._tracer.span("field-build"):
                    maps.ensure(self._specs)
                    self._bind_stack()
            else:
                maps.ensure(self._specs)
                self._bind_stack()
            self._publish_size()
            return
        # Another ligand sharing these maps may have ensured new specs
        # since we last bound: the shared stack is reassembled then (our
        # slots' contents are unchanged -- slots are append-only and
        # each slot is a pure function of its own component maps), so
        # just rebind the view.
        flat = maps.flat_stack()
        if flat is not self._flat:
            self._flat = flat
            self._publish_size()

    def _bind_stack(self) -> None:
        """Bind per-atom offsets into the shared combined map stack.

        Stack slot 0 holds phi; slot ``1 + slot_of(spec)`` holds that
        spec's full non-electrostatic clipped-field energy.  The stack
        lives on :class:`FieldMaps` (one array per receptor, shared by
        every ligand) and each slot is combined in float64 in a fixed
        order then cast to the map dtype -- a pure function of the
        stored maps, so warm == cold bitwise.
        """
        maps = self._maps
        slots = np.array(
            [maps.slot_of(s) for s in self._specs], dtype=np.int64
        )
        self._foff = (slots[self._spec_ids] + 1) * self._n_nodes
        self._flat = maps.flat_stack()
        self._near_flat = maps.near_mask.reshape(-1)

    # -- scoring -----------------------------------------------------------
    def _interp_energy(self, ib, base, t) -> float:
        """Fused two-lookup interpolation over the in-box atoms ``ib``.

        One fancy gather pulls all 8 corners of both the phi slot and
        each atom's type slot from the flattened stack; the ligand
        charge folds into the phi corner weights so a single reduction
        yields the total.
        """
        b = ib.size
        lin = np.empty(2 * b, dtype=np.int64)
        lin[:b] = base
        lin[b:] = base + self._foff[ib]
        corners = self._flat[lin[:, None] + self._corner_offs[None, :]]
        tx, ty, tz = t[:, 0], t[:, 1], t[:, 2]
        ex, ey, ez = 1.0 - tx, 1.0 - ty, 1.0 - tz
        p00 = ex * ey
        p01 = ex * ty
        p10 = tx * ey
        p11 = tx * ty
        w = np.empty((2 * b, 8))
        w[:b, 0] = p00 * ez
        w[:b, 1] = p00 * tz
        w[:b, 2] = p01 * ez
        w[:b, 3] = p01 * tz
        w[:b, 4] = p10 * ez
        w[:b, 5] = p10 * tz
        w[:b, 6] = p11 * ez
        w[:b, 7] = p11 * tz
        w[b:] = w[:b]
        w[:b] *= self._charges[ib][:, None]
        return float(np.einsum("pc,pc->", corners, w))

    def _pair_correction(self, lig, rec_i, lig_i) -> float:
        """Exact-vs-clipped Eq. 1 energy difference of overlapping pairs.

        For each pair the clipped-kernel contribution (what the maps
        tabulated, same conventions as ``_build_pass``) is subtracted
        and the exact-path energy at the MIN_DISTANCE-clamped true
        distance added -- so clash terms come out exact while the
        interpolated total needs no per-atom branching.
        """
        rec = self.receptor
        maps = self._maps
        u = lig[lig_i] - rec.coords[rec_i]
        r = np.sqrt((u * u).sum(axis=1))
        r_md = np.maximum(r, MIN_DISTANCE)
        r_c = np.maximum(r, maps.clip_radius)
        inv_md = 1.0 / r_md
        inv_c = 1.0 / r_c
        # Electrostatics: k q_j q_i (1/r_exact - 1/r_clip).
        e = (
            COULOMB_CONSTANT
            * rec.charges[rec_i]
            * self._charges[lig_i]
            * (inv_md - inv_c)
        )
        # Lennard-Jones, arithmetic-sigma Lorentz-Berthelot.
        sig = 0.5 * (rec.sigma[rec_i] + self.ligand.sigma[lig_i])
        epsp = 4.0 * np.sqrt(
            rec.epsilon[rec_i] * self.ligand.epsilon[lig_i]
        )
        s6 = sig**6
        w12 = epsp * s6 * s6
        w6 = epsp * s6
        i6_md = inv_md**6
        i6_c = inv_c**6
        lj_md = w12 * (i6_md * i6_md) - w6 * i6_md
        lj_c = w12 * (i6_c * i6_c) - w6 * i6_c
        e += lj_md - lj_c
        # H-bond correction on eligible pairs: replace the clipped
        # cos/(1-sin)-weighted terms with the exact-path ones.
        elig = (
            rec.hbond_donor[rec_i] & self.ligand.hbond_acceptor[lig_i]
        ) | (rec.hbond_acceptor[rec_i] & self.ligand.hbond_donor[lig_i])
        if elig.any():
            sel = np.flatnonzero(elig)
            ri, li = rec_i[sel], lig_i[sel]
            dirs = maps.dirs_full[ri]
            dot = (dirs * u[sel]).sum(axis=1)
            # Exact-path angular convention (hbond_angle_factors):
            # unit vector at the true distance, 1e-9 floor.
            cos_e = dot / np.maximum(r[sel], 1e-9)
            cos_e[maps.iso_full[ri]] = 1.0
            np.clip(cos_e, 0.0, 1.0, out=cos_e)
            sin_e = np.sqrt(np.maximum(0.0, 1.0 - cos_e * cos_e))
            # Map-side angular convention: normalized by the clipped
            # distance (see _build_pass).
            cos_c = dot * inv_c[sel]
            cos_c[maps.iso_full[ri]] = 1.0
            np.clip(cos_c, 0.0, 1.0, out=cos_c)
            sin_c = np.sqrt(np.maximum(0.0, 1.0 - cos_c * cos_c))
            c_hb, d_hb = hb.hbond_coefficients()
            i10_md = i6_md[sel] * inv_md[sel] ** 4
            i10_c = i6_c[sel] * inv_c[sel] ** 4
            e1210_md = c_hb * (i10_md * inv_md[sel] ** 2) - d_hb * i10_md
            e1210_c = c_hb * (i10_c * inv_c[sel] ** 2) - d_hb * i10_c
            corr = cos_e * e1210_md - (1.0 - sin_e) * lj_md[sel]
            corr -= cos_c * e1210_c - (1.0 - sin_c) * lj_c[sel]
            e[sel] += corr
        return float(e.sum())

    def _exact_energy(self, lig: np.ndarray, ex: np.ndarray) -> float:
        """Full Eq. 1 column energy for out-of-box ligand atoms.

        Same kernels, arrays, and reduction order as the exact scorer
        restricted to these columns -- a pose routed entirely through
        this path scores bit-identically to ``ExactScorer``.
        """
        t = self._tables
        rec = self.receptor
        d = pairwise_distances(rec.coords, lig[ex])
        e = elec.electrostatic_energy(
            rec.charges, self.ligand.charges[ex], d
        )
        e += lj.lennard_jones_energy_pre(
            t.sig_full[:, ex], t.eps_full[:, ex], d
        )
        if t.rows_any:
            cos_t, sin_t = hb.hbond_angle_factors(
                t.rec_sub, lig[ex], t.dirs_sub
            )
            e += hb.hbond_energy(
                d[t.rows],
                t.mask_sub[:, ex],
                cos_t,
                sin_t,
                t.sig_sub[:, ex],
                t.eps_sub[:, ex],
            )
        return e

    def score(self, coords: np.ndarray) -> float:
        lig = np.asarray(coords, dtype=float)
        m = self.ligand.n_atoms
        if lig.shape != (m, 3):
            raise ValueError(f"coords must have shape ({m}, 3)")
        self._ensure_built()
        maps = self._maps
        frac = (lig - maps.origin) * self._inv_spacing
        in_box = (frac >= 0.0).all(axis=1) & (frac <= self._upper).all(
            axis=1
        )
        idx = np.floor(frac).astype(np.int64)
        np.clip(idx, 0, self._max_idx, out=idx)
        base = idx @ self._strides
        energy = 0.0
        n_exact = 0
        if in_box.all():
            ib = np.arange(m)
            energy += self._interp_energy(ib, base, frac - idx)
        else:
            ib = np.flatnonzero(in_box)
            if ib.size:
                energy += self._interp_energy(
                    ib, base[ib], frac[ib] - idx[ib]
                )
            oob = np.flatnonzero(~in_box)
            energy += self._exact_energy(lig, oob)
            n_exact += oob.size
        if ib.size:
            base_ib = base if ib.size == m else base[ib]
            near = self._near_flat[base_ib]
            if near.any():
                flagged = ib[near]
                vox = base_ib[near]
                counts = maps.cand_count[vox].astype(np.int64)
                total = int(counts.sum())
                if total:
                    # CSR expansion of the voxel candidate lists, then
                    # an exact distance check keeps true overlaps.
                    cum = np.zeros(counts.size, dtype=np.int64)
                    np.cumsum(counts[:-1], out=cum[1:])
                    rank = np.arange(total, dtype=np.int64)
                    rank -= np.repeat(cum, counts)
                    rank += np.repeat(maps.cand_start[vox], counts)
                    cand = maps.cand_atoms.take(rank).astype(np.int64)
                    lig_i = np.repeat(flagged, counts)
                    diff = self.receptor.coords.take(cand, axis=0)
                    diff -= lig.take(lig_i, axis=0)
                    d2 = np.einsum("ij,ij->i", diff, diff)
                    keep = d2 <= maps.clash_radius * maps.clash_radius
                    if keep.any():
                        rec_i = np.compress(keep, cand)
                        lig_i = np.compress(keep, lig_i)
                        energy += self._pair_correction(lig, rec_i, lig_i)
                        n_exact += np.unique(lig_i).size
        self.near_fraction = n_exact / m
        if self._metrics is not None:
            self._metrics.observe(NEAR_FRACTION_METRIC, self.near_fraction)
        return -energy

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        """Scores for (k, m, 3) poses; bitwise-equal per entry to
        :meth:`score`.

        Pose-major fused path: per chunk of poses, one trilinear corner
        gather / einsum over the shared stack covers every in-box atom
        of every pose, the voxel CSR candidate table is expanded across
        all flagged atoms at once, and only the per-pose scalar
        reductions (contiguous-slice einsums, rare exact columns, pair
        corrections) remain in Python.  Every floating-point reduction
        stays per-pose over the same arrays in the same order as
        :meth:`score`, so entries are bitwise identical to sequential
        single-pose calls.  ``near_fraction`` ends at the last pose's
        value and the near-field histogram observes one value per pose,
        exactly as sequential calls would.
        """
        m = self.ligand.n_atoms
        cb = as_pose_batch(coords_batch, m)
        k = cb.shape[0]
        out = np.empty(k)
        if k == 0:
            return out
        self._ensure_built()
        # Chunk so the (2*rows, 8) corner/weight temporaries stay a few
        # MB (see docs/PERFORMANCE.md "Batched pose evaluation").
        step = max(1, _BATCH_CHUNK_ROWS // max(1, m))
        last_frac = self.near_fraction
        for s in range(0, k, step):
            e = min(s + step, k)
            scores, fracs = _fused_scores(
                [self] * (e - s), cb[s:e].reshape(-1, 3), [m] * (e - s)
            )
            out[s:e] = scores
            if self._metrics is not None:
                for f in fracs:
                    self._metrics.observe(NEAR_FRACTION_METRIC, float(f))
            last_frac = float(fracs[-1])
        self.near_fraction = last_frac
        return out


#: Ligand-atom rows per fused chunk in :meth:`FieldScorer.score_batch`:
#: bounds the (2*rows, 8) float64 corner + weight temporaries to ~4 MB.
_BATCH_CHUNK_ROWS = 16384


def _fused_scores(scorers, pts, sizes):
    """Fused field evaluation of ``len(sizes)`` poses over one stack.

    ``scorers[i]`` scores the pose occupying rows
    ``starts[i]:starts[i]+sizes[i]`` of ``pts`` (float64 ``(R, 3)``).
    All scorers must share one built :class:`FieldMaps` (they gather
    from its shared flat stack -- their per-atom slot offsets address
    it directly, which is what lets heterogeneous ligands fuse).

    Returns ``(scores, near_fracs)``; each entry is bitwise-equal to
    ``scorers[i].score(pose_i)``: the batched stages are elementwise or
    per-row (identical values regardless of batch), while every
    floating-point *reduction* -- the corner einsum, the exact-column
    energy, the pair-correction sum -- runs per pose over contiguous
    slices laid out exactly like the single-pose arrays, in the same
    accumulation order (interpolation, out-of-box columns, pair
    corrections).
    """
    k = len(sizes)
    sizes = np.asarray(sizes, dtype=np.int64)
    starts = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    s0 = scorers[0]
    maps = s0._maps
    flat = maps.flat_stack()
    frac = (pts - maps.origin) * s0._inv_spacing
    in_box = (frac >= 0.0).all(axis=1) & (frac <= s0._upper).all(axis=1)
    idx = np.floor(frac).astype(np.int64)
    np.clip(idx, 0, s0._max_idx, out=idx)
    base = idx @ s0._strides
    item_of = np.repeat(np.arange(k, dtype=np.int64), sizes)
    ib_all = np.flatnonzero(in_box)
    item_ib = item_of[ib_all]
    b_counts = np.bincount(item_ib, minlength=k).astype(np.int64)
    ib_bounds = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(b_counts, out=ib_bounds[1:])
    n_ib = ib_all.size
    corners = w = None
    pair_e = pair_bounds = uniq_cum = None
    if n_ib:
        base_ib = base[ib_all]
        # Trilinear corner weights for every in-box row (same
        # elementwise ops and column order as _interp_energy).
        t_ib = (frac - idx)[ib_all]
        tx, ty, tz = t_ib[:, 0], t_ib[:, 1], t_ib[:, 2]
        ex, ey, ez = 1.0 - tx, 1.0 - ty, 1.0 - tz
        p00 = ex * ey
        p01 = ex * ty
        p10 = tx * ey
        p11 = tx * ty
        pw = np.empty((n_ib, 8))
        pw[:, 0] = p00 * ez
        pw[:, 1] = p00 * tz
        pw[:, 2] = p01 * ez
        pw[:, 3] = p01 * tz
        pw[:, 4] = p10 * ez
        pw[:, 5] = p10 * tz
        pw[:, 6] = p11 * ez
        pw[:, 7] = p11 * tz
        # Row layout replicates the single-pose lin/w arrays pose by
        # pose: pose i's 2*b_i rows start at 2*ib_bounds[i], phi rows
        # first, type rows after -- so the per-pose einsum below runs
        # over a contiguous slice shaped exactly like _interp_energy's.
        foff_rows = np.concatenate([sc._foff for sc in scorers])
        ch_rows = np.concatenate([sc._charges for sc in scorers])
        ranks = np.arange(n_ib, dtype=np.int64) - ib_bounds[item_ib]
        pos_phi = 2 * ib_bounds[item_ib] + ranks
        pos_typ = pos_phi + b_counts[item_ib]
        lin = np.empty(2 * n_ib, dtype=np.int64)
        lin[pos_phi] = base_ib
        lin[pos_typ] = base_ib + foff_rows[ib_all]
        w = np.empty((2 * n_ib, 8))
        w[pos_typ] = pw
        w[pos_phi] = pw * ch_rows[ib_all][:, None]
        corners = flat[lin[:, None] + s0._corner_offs[None, :]]
        # Batched near-field candidate expansion (same CSR arithmetic
        # as score(), across all flagged atoms of all poses at once).
        near = s0._near_flat[base_ib]
        nz = np.flatnonzero(near)
        if nz.size:
            vox = base_ib[nz]
            counts = maps.cand_count[vox].astype(np.int64)
            total = int(counts.sum())
            if total:
                cum = np.zeros(counts.size, dtype=np.int64)
                np.cumsum(counts[:-1], out=cum[1:])
                rank = np.arange(total, dtype=np.int64)
                rank -= np.repeat(cum, counts)
                rank += np.repeat(maps.cand_start[vox], counts)
                cand = maps.cand_atoms.take(rank).astype(np.int64)
                lig_rows = np.repeat(ib_all[nz], counts)
                diff = maps.receptor.coords.take(cand, axis=0)
                diff -= pts.take(lig_rows, axis=0)
                d2 = np.einsum("ij,ij->i", diff, diff)
                keep = d2 <= maps.clash_radius * maps.clash_radius
                if keep.any():
                    pair_rec = np.compress(keep, cand)
                    pair_row = np.compress(keep, lig_rows)
                    pair_itm = np.compress(
                        keep, np.repeat(item_ib[nz], counts)
                    )
                    pair_bounds = np.searchsorted(
                        pair_itm, np.arange(k + 1)
                    )
                    pair_e = _pair_energies(
                        scorers, maps, pts, pair_rec, pair_row, ch_rows
                    )
                    # Unique corrected ligand atoms per pose (the
                    # near-fraction numerator): pair_row is
                    # non-decreasing and pose slices never share rows,
                    # so first-occurrence flags prefix-sum into
                    # per-slice unique counts.
                    firsts = np.empty(pair_row.size, dtype=np.int64)
                    firsts[0] = 1
                    firsts[1:] = pair_row[1:] != pair_row[:-1]
                    uniq_cum = np.zeros(
                        pair_row.size + 1, dtype=np.int64
                    )
                    np.cumsum(firsts, out=uniq_cum[1:])
    scores = np.empty(k)
    fracs = np.empty(k)
    for i in range(k):
        m_i = int(sizes[i])
        b = int(b_counts[i])
        energy = 0.0
        if b:
            o = 2 * int(ib_bounds[i])
            energy += float(
                np.einsum(
                    "pc,pc->", corners[o : o + 2 * b], w[o : o + 2 * b]
                )
            )
        n_ex = 0
        if b < m_i:
            lo, hi = int(starts[i]), int(starts[i + 1])
            oob = np.flatnonzero(~in_box[lo:hi])
            energy += scorers[i]._exact_energy(pts[lo:hi], oob)
            n_ex += oob.size
        if pair_bounds is not None:
            p0, p1 = int(pair_bounds[i]), int(pair_bounds[i + 1])
            if p1 > p0:
                # Same floats as _pair_correction's final e.sum(): the
                # slice is contiguous with identical length and values.
                energy += float(pair_e[p0:p1].sum())
                n_ex += int(uniq_cum[p1] - uniq_cum[p0])
        scores[i] = -energy
        fracs[i] = n_ex / m_i
    return scores, fracs


def _pair_energies(scorers, maps, pts, pair_rec, pair_row, ch_rows):
    """Per-pair exact-vs-clipped corrections across all poses at once.

    The elementwise chain of :meth:`FieldScorer._pair_correction`
    evaluated over every kept (receptor, ligand-row) pair of the fused
    batch -- per-pair values are independent of batch composition, so
    each pose's contiguous slice sums to exactly what its own
    ``_pair_correction`` call would return.  Ligand-side parameters are
    gathered through concatenated per-scorer rows, which is what lets
    heterogeneous ligands share the batch.
    """
    rec = maps.receptor
    sig_rows = np.concatenate([sc.ligand.sigma for sc in scorers])
    eps_rows = np.concatenate([sc.ligand.epsilon for sc in scorers])
    don_rows = np.concatenate([sc.ligand.hbond_donor for sc in scorers])
    acc_rows = np.concatenate(
        [sc.ligand.hbond_acceptor for sc in scorers]
    )
    u = pts[pair_row] - rec.coords[pair_rec]
    r = np.sqrt((u * u).sum(axis=1))
    r_md = np.maximum(r, MIN_DISTANCE)
    r_c = np.maximum(r, maps.clip_radius)
    inv_md = 1.0 / r_md
    inv_c = 1.0 / r_c
    e = (
        COULOMB_CONSTANT
        * rec.charges[pair_rec]
        * ch_rows[pair_row]
        * (inv_md - inv_c)
    )
    sig = 0.5 * (rec.sigma[pair_rec] + sig_rows[pair_row])
    epsp = 4.0 * np.sqrt(rec.epsilon[pair_rec] * eps_rows[pair_row])
    s6 = sig**6
    w12 = epsp * s6 * s6
    w6 = epsp * s6
    i6_md = inv_md**6
    i6_c = inv_c**6
    lj_md = w12 * (i6_md * i6_md) - w6 * i6_md
    lj_c = w12 * (i6_c * i6_c) - w6 * i6_c
    e += lj_md - lj_c
    elig = (rec.hbond_donor[pair_rec] & acc_rows[pair_row]) | (
        rec.hbond_acceptor[pair_rec] & don_rows[pair_row]
    )
    if elig.any():
        sel = np.flatnonzero(elig)
        ri = pair_rec[sel]
        dirs = maps.dirs_full[ri]
        dot = (dirs * u[sel]).sum(axis=1)
        cos_e = dot / np.maximum(r[sel], 1e-9)
        cos_e[maps.iso_full[ri]] = 1.0
        np.clip(cos_e, 0.0, 1.0, out=cos_e)
        sin_e = np.sqrt(np.maximum(0.0, 1.0 - cos_e * cos_e))
        cos_c = dot * inv_c[sel]
        cos_c[maps.iso_full[ri]] = 1.0
        np.clip(cos_c, 0.0, 1.0, out=cos_c)
        sin_c = np.sqrt(np.maximum(0.0, 1.0 - cos_c * cos_c))
        c_hb, d_hb = hb.hbond_coefficients()
        i10_md = i6_md[sel] * inv_md[sel] ** 4
        i10_c = i6_c[sel] * inv_c[sel] ** 4
        e1210_md = c_hb * (i10_md * inv_md[sel] ** 2) - d_hb * i10_md
        e1210_c = c_hb * (i10_c * inv_c[sel] ** 2) - d_hb * i10_c
        corr = cos_e * e1210_md - (1.0 - sin_e) * lj_md[sel]
        corr -= cos_c * e1210_c - (1.0 - sin_c) * lj_c[sel]
        e[sel] += corr
    return e


def score_field_group(entries) -> np.ndarray:
    """Score one pose per :class:`FieldScorer` in fused evaluations.

    ``entries`` is a sequence of ``(scorer, coords)`` pairs -- the
    scorers may wrap *different ligands* (heterogeneous atom counts and
    types).  Entries are grouped by their shared :class:`FieldMaps`
    instance; each group evaluates through one fused kernel over the
    maps' combined stack, so a screening shard's ligands against one
    receptor batch into a single gather.  Per-entry results (score,
    ``near_fraction``, the near-field histogram observation) are
    bitwise-equal to calling ``scorer.score(coords)`` sequentially.
    """
    n = len(entries)
    out = np.empty(n)
    if n == 0:
        return out
    prepared = []
    for sc, coords in entries:
        if not isinstance(sc, FieldScorer):
            raise TypeError(
                "score_field_group entries must pair FieldScorer "
                f"instances with coords, got {type(sc).__name__}"
            )
        lig = np.asarray(coords, dtype=float)
        m = sc.ligand.n_atoms
        if lig.shape != (m, 3):
            raise ValueError(f"coords must have shape ({m}, 3)")
        sc._ensure_built()
        prepared.append((sc, lig, m))
    groups: dict[int, list[int]] = {}
    for i, (sc, _, _) in enumerate(prepared):
        groups.setdefault(id(sc._maps), []).append(i)
    for idxs in groups.values():
        scorers = [prepared[i][0] for i in idxs]
        sizes = [prepared[i][2] for i in idxs]
        pts = np.concatenate([prepared[i][1] for i in idxs], axis=0)
        scores, fracs = _fused_scores(scorers, pts, sizes)
        for j, i in enumerate(idxs):
            sc = scorers[j]
            out[i] = scores[j]
            sc.near_fraction = float(fracs[j])
            if sc._metrics is not None:
                sc._metrics.observe(
                    NEAR_FRACTION_METRIC, sc.near_fraction
                )
    return out
