"""Pairwise geometry kernels shared by all scoring terms.

The hot path of the whole system is "distance matrix between a ~3k-atom
receptor and a ~45-atom ligand, many times per second"; these kernels are
written to allocate once per call, stay C-contiguous, and broadcast the
small (ligand) axis against the large (receptor) axis, per the
hpc-parallel guides.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MIN_DISTANCE


def pairwise_distances(
    a: np.ndarray, b: np.ndarray, min_distance: float = MIN_DISTANCE
) -> np.ndarray:
    """Distances between point sets ``a`` (n,3) and ``b`` (m,3) -> (n, m).

    Distances are clamped below at ``min_distance`` so downstream ``1/r``
    powers stay finite: overlapping atoms then produce the huge-but-finite
    penalties the paper reports (scores around ``-4.5e21``).
    """
    a = np.ascontiguousarray(a, dtype=float)
    b = np.ascontiguousarray(b, dtype=float)
    # |a - b|^2 = |a|^2 + |b|^2 - 2 a.b  (one GEMM instead of a 3D temp)
    a2 = (a * a).sum(axis=1)[:, None]
    b2 = (b * b).sum(axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * (a @ b.T)
    np.maximum(d2, min_distance * min_distance, out=d2)
    return np.sqrt(d2, out=d2)


def pairwise_distances_batch(
    a: np.ndarray, b_batch: np.ndarray, min_distance: float = MIN_DISTANCE
) -> np.ndarray:
    """Distances from ``a`` (n,3) to a batch ``b_batch`` (k,m,3) -> (k,n,m).

    Used by multi-pose scoring: one receptor against ``k`` ligand poses.
    The receptor norms are computed once and broadcast across the batch.
    """
    a = np.ascontiguousarray(a, dtype=float)
    bb = np.ascontiguousarray(b_batch, dtype=float)
    if bb.ndim != 3 or bb.shape[-1] != 3:
        raise ValueError("b_batch must have shape (k, m, 3)")
    a2 = (a * a).sum(axis=1)[None, :, None]  # (1, n, 1)
    b2 = (bb * bb).sum(axis=2)[:, None, :]  # (k, 1, m)
    cross = np.einsum("nd,kmd->knm", a, bb)  # (k, n, m)
    d2 = a2 + b2 - 2.0 * cross
    np.maximum(d2, min_distance * min_distance, out=d2)
    return np.sqrt(d2, out=d2)


def direction_vectors(mol_coords: np.ndarray, bonds: np.ndarray) -> np.ndarray:
    """Per-atom outward direction used by the H-bond angular term.

    For each atom the direction points *away* from the mean of its bonded
    neighbors -- a cheap proxy for "where the hydrogen / lone pair points".
    Atoms with no bonds get a zero vector (interpreted as isotropic, i.e.
    ideal alignment, by the H-bond term).
    """
    pts = np.asarray(mol_coords, dtype=float)
    n = pts.shape[0]
    out = np.zeros((n, 3))
    bonds = np.asarray(bonds, dtype=np.int64).reshape(-1, 2)
    if bonds.size == 0:
        return out
    neighbor_sum = np.zeros((n, 3))
    degree = np.zeros(n)
    np.add.at(neighbor_sum, bonds[:, 0], pts[bonds[:, 1]])
    np.add.at(neighbor_sum, bonds[:, 1], pts[bonds[:, 0]])
    np.add.at(degree, bonds[:, 0], 1.0)
    np.add.at(degree, bonds[:, 1], 1.0)
    bonded = degree > 0
    mean_nbr = neighbor_sum[bonded] / degree[bonded, None]
    vec = pts[bonded] - mean_nbr
    norm = np.linalg.norm(vec, axis=1, keepdims=True)
    ok = norm[:, 0] > 1e-9
    vec[ok] /= norm[ok]
    vec[~ok] = 0.0
    out[bonded] = vec
    return out
