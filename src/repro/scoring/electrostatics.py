"""Electrostatic term of Eq. 1: ``sum_ij k * q_i q_j / r_ij``.

Gilson-style Coulomb interaction (paper reference [13]) with an optional
distance-dependent dielectric.  Positive when like charges approach --
one of the two sharp-penalty mechanisms the paper describes (electrostatic
repulsion between two positives).
"""

from __future__ import annotations

import numpy as np

from repro.constants import COULOMB_CONSTANT, DIELECTRIC, MIN_DISTANCE


def electrostatic_energy(
    charges_a: np.ndarray,
    charges_b: np.ndarray,
    distances: np.ndarray,
    *,
    dielectric: float = DIELECTRIC,
    distance_dependent: bool = False,
) -> float:
    """Total Coulomb energy between two charge sets, kcal/mol.

    ``distances`` is the (n, m) matrix from
    :func:`repro.scoring.pairwise.pairwise_distances` (already clamped at
    ``MIN_DISTANCE``).  ``distance_dependent=True`` uses the common
    ``eps(r) = dielectric * r`` screening.
    """
    qa = np.asarray(charges_a, dtype=float)
    qb = np.asarray(charges_b, dtype=float)
    d = np.asarray(distances, dtype=float)
    if d.shape != (qa.size, qb.size):
        raise ValueError(
            f"distance matrix {d.shape} does not match charges "
            f"({qa.size}, {qb.size})"
        )
    denom = d * d if distance_dependent else d
    # (qa outer qb) / denom, summed -- computed as a bilinear form without
    # materializing the outer product of charges.
    inv = 1.0 / denom
    total = qa @ inv @ qb
    return float(COULOMB_CONSTANT / dielectric * total)


def electrostatic_energy_matrix(
    charges_a: np.ndarray,
    charges_b: np.ndarray,
    distances: np.ndarray,
    *,
    dielectric: float = DIELECTRIC,
) -> np.ndarray:
    """Per-pair Coulomb energies (n, m) -- for breakdowns and grids."""
    qa = np.asarray(charges_a, dtype=float)[:, None]
    qb = np.asarray(charges_b, dtype=float)[None, :]
    return COULOMB_CONSTANT / dielectric * qa * qb / distances


def electrostatic_energy_batch(
    charges_a: np.ndarray,
    charges_b: np.ndarray,
    distances_batch: np.ndarray,
    *,
    dielectric: float = DIELECTRIC,
) -> np.ndarray:
    """Batched total Coulomb energy over (k, n, m) distances -> (k,)."""
    qa = np.asarray(charges_a, dtype=float)
    qb = np.asarray(charges_b, dtype=float)
    inv = 1.0 / distances_batch
    return COULOMB_CONSTANT / dielectric * np.einsum(
        "n,knm,m->k", qa, inv, qb
    )


def coulomb_pair(q1: float, q2: float, r: float) -> float:
    """Single-pair Coulomb energy (reference/tests)."""
    return COULOMB_CONSTANT * q1 * q2 / max(r, MIN_DISTANCE)
