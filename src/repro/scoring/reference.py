"""Sequential reference scorer -- the paper's Algorithm 1, generalized.

Algorithm 1 in the paper shows the sequential baseline for the
Lennard-Jones interactions: a triple loop over conformations, receptor
atoms, and ligand atoms accumulating ``4 eps (t12 - t6)``.  This module
implements that literal loop structure in pure Python for **all three**
Eq. 1 terms, serving two purposes:

1. *Parity oracle* -- ``tests/test_scoring_parity.py`` asserts the
   vectorized scorer matches this one to tight tolerance;
2. *Baseline* -- ``benchmarks/test_bench_scoring.py`` measures the
   speedup of the vectorized path over this loop, the Python analogue of
   the paper's sequential-vs-GPU comparison.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, MIN_DISTANCE
from repro.scoring.hbond import HBOND_DEPTH, HBOND_R0, hbond_coefficients
from repro.scoring.pairwise import direction_vectors


def sequential_lj_energy(receptor: Molecule, ligand: Molecule) -> float:
    """Algorithm 1 verbatim (single conformation): sequential LJ loop."""
    total = 0.0
    for j in range(receptor.n_atoms):
        rx, ry, rz = receptor.coords[j]
        sj = receptor.sigma[j]
        ej = receptor.epsilon[j]
        for k in range(ligand.n_atoms):
            dx = rx - ligand.coords[k, 0]
            dy = ry - ligand.coords[k, 1]
            dz = rz - ligand.coords[k, 2]
            r = math.sqrt(dx * dx + dy * dy + dz * dz)
            r = max(r, MIN_DISTANCE)
            sigma = 0.5 * (sj + ligand.sigma[k])
            eps = math.sqrt(ej * ligand.epsilon[k])
            term6 = (sigma / r) ** 6
            term12 = term6 * term6
            total += 4.0 * eps * (term12 - term6)
    return total


def sequential_score_algorithm1(
    receptor: Molecule,
    ligand: Molecule,
    conformations: Sequence[np.ndarray] | None = None,
) -> list[float]:
    """Algorithm 1 over ``N_CONFORMATION`` poses, full Eq. 1 energies.

    ``conformations`` is a sequence of ligand coordinate arrays; ``None``
    means the single current pose.  Returns the per-conformation *scores*
    (negated energies), mirroring ``S_energy[i]`` in the pseudocode.
    """
    if conformations is None:
        conformations = [ligand.coords]
    c_hb, d_hb = hbond_coefficients(HBOND_R0, HBOND_DEPTH)
    dirs = direction_vectors(receptor.coords, receptor.bonds)
    scores: list[float] = []
    for coords in conformations:
        coords = np.asarray(coords, dtype=float)
        scoring = 0.0
        for j in range(receptor.n_atoms):
            rxyz = receptor.coords[j]
            qj = receptor.charges[j]
            sj = receptor.sigma[j]
            ej = receptor.epsilon[j]
            dj = dirs[j]
            donor_j = bool(receptor.hbond_donor[j])
            acc_j = bool(receptor.hbond_acceptor[j])
            for k in range(coords.shape[0]):
                dx = coords[k, 0] - rxyz[0]
                dy = coords[k, 1] - rxyz[1]
                dz = coords[k, 2] - rxyz[2]
                r = math.sqrt(dx * dx + dy * dy + dz * dz)
                r = max(r, MIN_DISTANCE)
                # electrostatics
                scoring += COULOMB_CONSTANT * qj * ligand.charges[k] / r
                # Lennard-Jones
                sigma = 0.5 * (sj + ligand.sigma[k])
                eps = math.sqrt(ej * ligand.epsilon[k])
                term6 = (sigma / r) ** 6
                term12 = term6 * term6
                e_lj = 4.0 * eps * (term12 - term6)
                scoring += e_lj
                # hydrogen bond correction on eligible pairs
                eligible = (donor_j and bool(ligand.hbond_acceptor[k])) or (
                    acc_j and bool(ligand.hbond_donor[k])
                )
                if eligible:
                    if abs(dj[0]) < 1e-12 and abs(dj[1]) < 1e-12 and abs(
                        dj[2]
                    ) < 1e-12:
                        cos_t = 1.0
                    else:
                        # direction receptor->ligand against donor direction
                        norm = math.sqrt(dx * dx + dy * dy + dz * dz)
                        norm = max(norm, 1e-9)
                        cos_t = (
                            dj[0] * dx + dj[1] * dy + dj[2] * dz
                        ) / norm
                        cos_t = min(1.0, max(0.0, cos_t))
                    sin_t = math.sqrt(max(0.0, 1.0 - cos_t * cos_t))
                    e_1210 = c_hb / r**12 - d_hb / r**10
                    scoring += cos_t * e_1210 - (1.0 - sin_t) * e_lj
        scores.append(-scoring)
    return scores
