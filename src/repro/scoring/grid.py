"""Precomputed receptor potential grids (BINDSURF/AutoDock-style).

For a rigid receptor, each Eq. 1 term can be tabulated on a 3D lattice
once and evaluated per ligand atom by trilinear interpolation -- O(ligand
atoms) per pose instead of O(receptor x ligand) pairs.  Three scalar
fields are stored:

- electrostatic potential ``phi(x) = k * sum_j q_j / r_j`` (multiply by
  the ligand atom charge);
- dispersion sums ``A(x) = sum_j 4 eps_j sigma_j^12 / r_j^12`` and
  ``B(x) = sum_j 4 eps_j sigma_j^6 / r_j^6`` -- exact for geometric-mean
  combination of both sigma and epsilon, an approximation of the
  Lorentz-Berthelot arithmetic sigma used by the exact scorer.

The grid path therefore trades a small, documented model error (no H-bond
angular term; geometric sigma) for a large constant speedup, exactly the
trade BINDSURF makes; the bench quantifies both the error and the speedup.
(:mod:`repro.scoring.field` removes both model errors with per-ligand-type
maps and an exact near-field path -- this module remains the cheap,
single-map variant.)

Out-of-box behavior: interpolation CLAMPS out-of-box points to the
boundary voxel, i.e. a pose that leaves the padded box is scored as if
its outside atoms sat on the box face.  This is documented, not silent:
every such point is counted in :attr:`PotentialGrid.oob_points`, which
``GridScorer`` surfaces as the ``scoring/grid_oob_points`` gauge.
Callers needing exactness outside the box should use the field scorer,
which routes out-of-box atoms to the exact pairwise path instead.

``dtype="float32"`` stores the three fields at half the memory; the
interpolation arithmetic still runs in float64 (the corner weights are
float64), and the accuracy impact is measured in the score bench
artifact (``BENCH_score_step.json``).
"""

from __future__ import annotations

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, MIN_DISTANCE


class PotentialGrid:
    """Tabulated receptor fields with trilinear interpolation."""

    def __init__(
        self,
        receptor: Molecule,
        *,
        spacing: float = 1.0,
        padding: float = 6.0,
        dtype: str = "float64",
    ):
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        if dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {dtype!r}"
            )
        self.dtype = str(dtype)
        dt = np.dtype(dtype)
        #: Cumulative count of interpolation points that fell outside
        #: the box (and were clamped to the boundary voxel).
        self.oob_points = 0
        self.spacing = float(spacing)
        self.origin = receptor.coords.min(axis=0) - padding
        upper = receptor.coords.max(axis=0) + padding
        self.shape = np.ceil((upper - self.origin) / spacing).astype(int) + 1
        nx, ny, nz = (int(v) for v in self.shape)

        axes = [
            self.origin[d] + np.arange(self.shape[d]) * spacing
            for d in range(3)
        ]
        # Evaluate plane by plane to bound peak memory at (ny*nz, n_rec).
        # Geometric-mean LJ factorization: the pair term
        #   4 sqrt(eps_i eps_j) (sigma_i sigma_j)^6 / r^12
        # splits into a receptor factor sqrt(eps_j) sigma_j^6 (tabulated)
        # and a ligand factor 4 sqrt(eps_i) sigma_i^6 (applied at score
        # time); analogously with ^3 / r^6 for dispersion.
        q = receptor.charges
        s6 = np.sqrt(receptor.epsilon) * receptor.sigma**3
        s12 = np.sqrt(receptor.epsilon) * receptor.sigma**6
        self.phi = np.empty((nx, ny, nz), dtype=dt)
        self.disp6 = np.empty((nx, ny, nz), dtype=dt)
        self.disp12 = np.empty((nx, ny, nz), dtype=dt)
        yy, zz = np.meshgrid(axes[1], axes[2], indexing="ij")
        plane_pts = np.stack(
            [np.zeros_like(yy), yy, zz], axis=-1
        ).reshape(-1, 3)
        for ix, x in enumerate(axes[0]):
            plane_pts[:, 0] = x
            diff = plane_pts[:, None, :] - receptor.coords[None, :, :]
            r2 = (diff**2).sum(axis=-1)
            np.maximum(r2, MIN_DISTANCE**2, out=r2)
            inv_r = 1.0 / np.sqrt(r2)
            inv_r6 = inv_r**6
            self.phi[ix] = (COULOMB_CONSTANT * (inv_r * q[None, :])).sum(
                axis=1
            ).reshape(ny, nz)
            self.disp6[ix] = (inv_r6 * s6[None, :]).sum(axis=1).reshape(
                ny, nz
            )
            self.disp12[ix] = ((inv_r6 * inv_r6) * s12[None, :]).sum(
                axis=1
            ).reshape(ny, nz)

    # -- interpolation -----------------------------------------------------
    def count_out_of_box(self, points: np.ndarray) -> int:
        """Points outside the box (those `_trilinear` clamps to the face)."""
        frac = (np.asarray(points, dtype=float) - self.origin) / self.spacing
        outside = (frac < 0.0).any(axis=1) | (
            frac > self.shape.astype(float) - 1.0
        ).any(axis=1)
        return int(outside.sum())

    def _trilinear(self, field: np.ndarray, points: np.ndarray) -> np.ndarray:
        # Out-of-box points are clamped to the boundary voxel (documented
        # behavior; counted once per score call into ``oob_points`` --
        # see the module docstring and ``scoring/grid_oob_points``).
        frac = (np.asarray(points, dtype=float) - self.origin) / self.spacing
        idx = np.floor(frac).astype(int)
        idx = np.clip(idx, 0, self.shape - 2)
        t = np.clip(frac - idx, 0.0, 1.0)
        i, j, k = idx[:, 0], idx[:, 1], idx[:, 2]
        tx, ty, tz = t[:, 0], t[:, 1], t[:, 2]
        c000 = field[i, j, k]
        c100 = field[i + 1, j, k]
        c010 = field[i, j + 1, k]
        c001 = field[i, j, k + 1]
        c110 = field[i + 1, j + 1, k]
        c101 = field[i + 1, j, k + 1]
        c011 = field[i, j + 1, k + 1]
        c111 = field[i + 1, j + 1, k + 1]
        return (
            c000 * (1 - tx) * (1 - ty) * (1 - tz)
            + c100 * tx * (1 - ty) * (1 - tz)
            + c010 * (1 - tx) * ty * (1 - tz)
            + c001 * (1 - tx) * (1 - ty) * tz
            + c110 * tx * ty * (1 - tz)
            + c101 * tx * (1 - ty) * tz
            + c011 * (1 - tx) * ty * tz
            + c111 * tx * ty * tz
        )

    def score(
        self,
        ligand: Molecule,
        coords: np.ndarray | None = None,
        *,
        weights: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Approximate METADOCK score of a ligand pose from the grids.

        ``coords`` overrides the ligand's stored coordinates (pose reuse).
        ``weights`` optionally supplies the per-ligand ``(w12, w6)``
        factor vectors (``4 sqrt(eps) sigma^k``); callers that score the
        same ligand repeatedly cache them once (``GridScorer``) with
        bit-identical results.  Higher = better, same convention as the
        exact scorer.
        """
        pts = ligand.coords if coords is None else np.asarray(coords, float)
        self.oob_points += self.count_out_of_box(pts)
        e_el = float((self._trilinear(self.phi, pts) * ligand.charges).sum())
        if weights is None:
            w12 = 4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**6
            w6 = 4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**3
        else:
            w12, w6 = weights
        e_rep = float((self._trilinear(self.disp12, pts) * w12).sum())
        e_disp = float((self._trilinear(self.disp6, pts) * w6).sum())
        return -(e_el + e_rep - e_disp)

    def score_batch(
        self,
        ligand: Molecule,
        coords_batch: np.ndarray,
        *,
        weights: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`score` over (k, m, 3) poses -> (k,) scores.

        All k*m atoms are interpolated in one ``_trilinear`` call per
        field; per-pose sums then run over the same per-atom values the
        single-pose path produces, so each entry is bit-identical to
        ``score(ligand, coords_batch[i])``.
        """
        cb = np.asarray(coords_batch, dtype=float)
        if cb.ndim != 3 or cb.shape[1:] != (ligand.n_atoms, 3):
            raise ValueError(
                f"coords_batch must have shape (k, {ligand.n_atoms}, 3)"
            )
        k, m, _ = cb.shape
        if k == 0:
            return np.empty(0)
        pts = cb.reshape(-1, 3)
        self.oob_points += self.count_out_of_box(pts)
        e_el = (
            self._trilinear(self.phi, pts).reshape(k, m) * ligand.charges
        ).sum(axis=1)
        if weights is None:
            w12 = 4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**6
            w6 = 4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**3
        else:
            w12, w6 = weights
        e_rep = (
            self._trilinear(self.disp12, pts).reshape(k, m) * w12
        ).sum(axis=1)
        e_disp = (
            self._trilinear(self.disp6, pts).reshape(k, m) * w6
        ).sum(axis=1)
        return -(e_el + e_rep - e_disp)

    def nbytes(self) -> int:
        """Total grid storage in bytes."""
        return self.phi.nbytes + self.disp6.nbytes + self.disp12.nbytes
