"""Pluggable pose scorers: exact, cutoff-truncated, grid-interpolated.

The engine needs "coordinates -> score" with different speed/accuracy
trades (the GPU METADOCK plays the same game with spot-local windows):

- :class:`ExactScorer` -- full Eq. 1 over all pairs (the default and the
  correctness reference);
- :class:`CutoffScorer` -- only pairs within ``cutoff`` angstrom via the
  receptor cell list; truncation error vanishes as the cutoff grows;
- :class:`GridScorer` -- trilinear lookup in precomputed receptor fields
  (fastest; documented model error, see :mod:`repro.scoring.grid`).

All scorers share the one-pose ``score(coords)`` and many-pose
``score_batch(coords_batch)`` interface.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, DEFAULT_CUTOFF, MIN_DISTANCE
from repro.scoring import hbond as hb
from repro.scoring import lennard_jones as lj
from repro.scoring.composite import interaction_score, score_pose_batch
from repro.scoring.grid import PotentialGrid
from repro.scoring.neighborlist import CellList, cutoff_pairs
from repro.scoring.pairwise import direction_vectors


class PoseScorer(Protocol):
    """Coordinates -> METADOCK score (higher = better)."""

    def score(self, coords: np.ndarray) -> float: ...

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray: ...


class ExactScorer:
    """Full Eq. 1 over all receptor x ligand pairs."""

    def __init__(self, receptor: Molecule, ligand: Molecule):
        self.receptor = receptor
        self.ligand = ligand

    def score(self, coords: np.ndarray) -> float:
        return interaction_score(
            self.receptor, self.ligand.with_coords(coords)
        )

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        return score_pose_batch(self.receptor, self.ligand, coords_batch)


class CutoffScorer:
    """Eq. 1 truncated to receptor atoms within ``cutoff`` of any ligand atom.

    The receptor cell list is built once; each evaluation touches
    O(ligand x local-density) pairs instead of all n x m.

    ``shifted=True`` (default) uses the energy-shifted Coulomb form
    ``k q_i q_j (1/r - 1/Rc)``, which is continuous at the cutoff.  With
    sharp truncation, shells of like-charged receptor atoms enter the
    sum discontinuously as the cutoff grows and the error is large and
    non-monotone on inhomogeneously charged receptors (measured in the
    scorer bench); the shifted form converges smoothly.
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        cutoff: float = DEFAULT_CUTOFF,
        *,
        shifted: bool = True,
    ):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.receptor = receptor
        self.ligand = ligand
        self.cutoff = float(cutoff)
        self.shifted = bool(shifted)
        self._cells = CellList(receptor.coords, cell_size=cutoff)
        self._dirs = direction_vectors(receptor.coords, receptor.bonds)
        self._mask_full = hb.eligible_pairs_mask(
            receptor.hbond_donor,
            receptor.hbond_acceptor,
            ligand.hbond_donor,
            ligand.hbond_acceptor,
        )

    def score(self, coords: np.ndarray) -> float:
        lig = np.asarray(coords, dtype=float)
        rec_idx, lig_idx = cutoff_pairs(self._cells, lig, self.cutoff)
        if rec_idx.size == 0:
            return 0.0
        rec = self.receptor
        lig_mol = self.ligand
        diff = lig[lig_idx] - rec.coords[rec_idx]
        r = np.sqrt((diff**2).sum(axis=1))
        np.maximum(r, MIN_DISTANCE, out=r)
        # Electrostatics (optionally energy-shifted at the cutoff).
        qq = rec.charges[rec_idx] * lig_mol.charges[lig_idx]
        inv = 1.0 / r
        if self.shifted:
            inv = inv - 1.0 / self.cutoff
        energy = float((COULOMB_CONSTANT * qq * inv).sum())
        # Lennard-Jones.
        sigma = 0.5 * (rec.sigma[rec_idx] + lig_mol.sigma[lig_idx])
        eps = np.sqrt(rec.epsilon[rec_idx] * lig_mol.epsilon[lig_idx])
        x6 = (sigma / r) ** 6
        e_lj = 4.0 * eps * (x6 * x6 - x6)
        energy += float(e_lj.sum())
        # Hydrogen-bond correction on eligible pairs.
        eligible = self._mask_full[rec_idx, lig_idx]
        if eligible.any():
            er, el = rec_idx[eligible], lig_idx[eligible]
            d_el = r[eligible]
            dirs = self._dirs[er]
            u = (lig[el] - rec.coords[er])
            norm = np.maximum(np.linalg.norm(u, axis=1), 1e-9)
            cos = (dirs * u).sum(axis=1) / norm
            iso = (np.abs(dirs) < 1e-12).all(axis=1)
            cos[iso] = 1.0
            np.clip(cos, 0.0, 1.0, out=cos)
            sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
            c_hb, d_hb = hb.hbond_coefficients()
            e_1210 = c_hb / d_el**12 - d_hb / d_el**10
            e_lj_sub = e_lj[eligible]
            energy += float(
                (cos * e_1210 - (1.0 - sin) * e_lj_sub).sum()
            )
        return -energy

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        cb = np.asarray(coords_batch, dtype=float)
        return np.array([self.score(c) for c in cb])


class GridScorer:
    """Precomputed-field scorer (see :class:`repro.scoring.grid.PotentialGrid`)."""

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        spacing: float = 1.0,
        padding: float = 6.0,
    ):
        self.ligand = ligand
        self.grid = PotentialGrid(receptor, spacing=spacing, padding=padding)

    def score(self, coords: np.ndarray) -> float:
        return self.grid.score(self.ligand, coords)

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        cb = np.asarray(coords_batch, dtype=float)
        return np.array([self.score(c) for c in cb])


def make_scorer(
    method: str,
    receptor: Molecule,
    ligand: Molecule,
    **kwargs,
) -> PoseScorer:
    """Scorer factory keyed by config string."""
    if method == "exact":
        return ExactScorer(receptor, ligand)
    if method == "cutoff":
        return CutoffScorer(receptor, ligand, **kwargs)
    if method == "grid":
        return GridScorer(receptor, ligand, **kwargs)
    raise ValueError(f"unknown scoring method {method!r}")
