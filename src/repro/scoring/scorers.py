"""Pluggable pose scorers: exact, cutoff-truncated, grid-interpolated.

The engine needs "coordinates -> score" with different speed/accuracy
trades (the GPU METADOCK plays the same game with spot-local windows):

- :class:`ExactScorer` -- full Eq. 1 over all pairs (the default and the
  correctness reference);
- :class:`CutoffScorer` -- only pairs within ``cutoff`` angstrom via the
  receptor cell list; truncation error vanishes as the cutoff grows;
- :class:`GridScorer` -- trilinear lookup in precomputed receptor fields
  (fast; documented model error, see :mod:`repro.scoring.grid`);
- ``FieldScorer`` ("field") -- hybrid per-ligand-type field maps with an
  exact near-field/out-of-box path (near-exact and the fastest
  production kernel; see :mod:`repro.scoring.field`).

All scorers share the one-pose ``score(coords)`` and many-pose
``score_batch(coords_batch)`` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, DEFAULT_CUTOFF, MIN_DISTANCE
from repro.scoring import hbond as hb
from repro.scoring.composite import (
    ScoringTables,
    interaction_breakdown,
    score_pose_batch,
)
from repro.scoring.grid import PotentialGrid
from repro.scoring.neighborlist import CellList, query_pairs
from repro.scoring.pairwise import direction_vectors


def as_pose_batch(coords_batch: np.ndarray, n_atoms: int) -> np.ndarray:
    """Validate a many-pose array into float64 ``(k, n_atoms, 3)``.

    The shared front door of every scorer's ``score_batch``: one
    place for the shape/dtype contract, so empty batches (``k == 0``)
    can short-circuit *before* any lazy structure (potential grid,
    field maps, scoring tables) is built.
    """
    cb = np.asarray(coords_batch, dtype=float)
    if cb.ndim != 3 or cb.shape[1:] != (n_atoms, 3):
        raise ValueError(
            f"coords_batch must have shape (k, {n_atoms}, 3)"
        )
    return cb


class PoseScorer(Protocol):
    """Coordinates -> METADOCK score (higher = better)."""

    def score(self, coords: np.ndarray) -> float: ...

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray: ...


class ExactScorer:
    """Full Eq. 1 over all receptor x ligand pairs.

    The static-topology arrays — H-bond eligibility mask, receptor donor
    directions, combined LJ matrices — are built **once** here and reused
    for every ``score``/``score_batch`` call (they depend only on
    topology, never on the pose).  Results are bit-identical to
    rebuilding them per call.
    """

    def __init__(self, receptor: Molecule, ligand: Molecule):
        self.receptor = receptor
        self.ligand = ligand
        self._tables = ScoringTables.build(receptor, ligand)

    def score(self, coords: np.ndarray) -> float:
        return interaction_breakdown(
            self.receptor,
            self.ligand.with_coords(coords),
            tables=self._tables,
        ).score

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        return score_pose_batch(
            self.receptor, self.ligand, coords_batch, tables=self._tables
        )


class CutoffScorer:
    """Eq. 1 truncated to receptor atoms within ``cutoff`` of any ligand atom.

    The receptor cell list is built once; each evaluation touches
    O(ligand x local-density) pairs instead of all n x m.

    ``shifted=True`` (default) uses the energy-shifted Coulomb form
    ``k q_i q_j (1/r - 1/Rc)``, which is continuous at the cutoff.  With
    sharp truncation, shells of like-charged receptor atoms enter the
    sum discontinuously as the cutoff grows and the error is large and
    non-monotone on inhomogeneously charged receptors (measured in the
    scorer bench); the shifted form converges smoothly.
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        cutoff: float = DEFAULT_CUTOFF,
        *,
        shifted: bool = True,
        cell_size: float | None = None,
        cells: CellList | None = None,
    ):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.receptor = receptor
        self.ligand = ligand
        self.cutoff = float(cutoff)
        self.shifted = bool(shifted)
        # Bins of cutoff/2 measured fastest for cutoff-radius queries;
        # bins equal to the radius degenerate to scanning most of the
        # receptor (pair membership is identical either way).  A
        # prebuilt ``cells`` (same receptor coords) skips the binning --
        # screening workers share one receptor cell list across every
        # ligand they score.
        self._cells = (
            cells
            if cells is not None
            else CellList(
                receptor.coords,
                cell_size=cutoff / 2.0 if cell_size is None else cell_size,
            )
        )
        self._dirs = direction_vectors(receptor.coords, receptor.bonds)
        self._mask_full = hb.eligible_pairs_mask(
            receptor.hbond_donor,
            receptor.hbond_acceptor,
            ligand.hbond_donor,
            ligand.hbond_acceptor,
        )

    def _pair_terms(
        self, lig_flat: np.ndarray, rec_idx: np.ndarray, lig_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair (diff, r, e_el, e_lj) for arbitrary pair index arrays.

        ``lig_flat`` holds the ligand-atom coordinates the pairs index
        into (one pose's (m, 3), or several poses stacked (k*m, 3)) —
        all terms are elementwise per pair, so batching poses through
        one call is exact.
        """
        rec = self.receptor
        lig_mol = self.ligand
        atom = lig_idx % lig_mol.n_atoms  # probe index -> ligand atom
        diff = lig_flat[lig_idx] - rec.coords[rec_idx]
        r = np.sqrt((diff**2).sum(axis=1))
        np.maximum(r, MIN_DISTANCE, out=r)
        # Electrostatics (optionally energy-shifted at the cutoff).
        qq = rec.charges[rec_idx] * lig_mol.charges[atom]
        inv = 1.0 / r
        if self.shifted:
            inv = inv - 1.0 / self.cutoff
        e_el = COULOMB_CONSTANT * qq * inv
        # Lennard-Jones.
        sigma = 0.5 * (rec.sigma[rec_idx] + lig_mol.sigma[atom])
        eps = np.sqrt(rec.epsilon[rec_idx] * lig_mol.epsilon[atom])
        x6 = (sigma / r) ** 6
        e_lj = 4.0 * eps * (x6 * x6 - x6)
        return diff, r, e_el, e_lj

    def _hbond_correction(
        self,
        r_el: np.ndarray,
        u_el: np.ndarray,
        dirs_el: np.ndarray,
        e_lj_el: np.ndarray,
    ) -> float:
        """Eq. 1 H-bond correction for pre-selected eligible pairs."""
        norm = np.maximum(np.linalg.norm(u_el, axis=1), 1e-9)
        cos = (dirs_el * u_el).sum(axis=1) / norm
        iso = (np.abs(dirs_el) < 1e-12).all(axis=1)
        cos[iso] = 1.0
        np.clip(cos, 0.0, 1.0, out=cos)
        sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
        c_hb, d_hb = hb.hbond_coefficients()
        e_1210 = c_hb / r_el**12 - d_hb / r_el**10
        return float((cos * e_1210 - (1.0 - sin) * e_lj_el).sum())

    def score(self, coords: np.ndarray) -> float:
        lig = np.asarray(coords, dtype=float)
        rec_idx, lig_idx = query_pairs(self._cells, lig, self.cutoff)
        if rec_idx.size == 0:
            return 0.0
        diff, r, e_el, e_lj = self._pair_terms(lig, rec_idx, lig_idx)
        energy = float(e_el.sum()) + float(e_lj.sum())
        # Hydrogen-bond correction on eligible pairs.
        eligible = self._mask_full[rec_idx, lig_idx]
        if eligible.any():
            energy += self._hbond_correction(
                r[eligible],
                diff[eligible],
                self._dirs[rec_idx[eligible]],
                e_lj[eligible],
            )
        return -energy

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        """Vectorized many-pose scoring.

        All poses are stacked into one (k*m, 3) probe set and resolved
        by a single :func:`query_pairs` call; every per-pair term is
        then computed in one vectorized pass over the concatenated pair
        list, with only the per-pose reductions running per pose.
        Pair order within a pose matches :meth:`score` exactly, so each
        entry is bit-identical to the single-pose result.
        """
        cb = as_pose_batch(coords_batch, self.ligand.n_atoms)
        k, m, _ = cb.shape
        out = np.zeros(k)
        if k == 0:
            return out
        flat = cb.reshape(-1, 3)
        rec_idx, probe_idx = query_pairs(self._cells, flat, self.cutoff)
        if rec_idx.size == 0:
            return out
        diff, r, e_el, e_lj = self._pair_terms(flat, rec_idx, probe_idx)
        lig_atom = probe_idx % m
        eligible = self._mask_full[rec_idx, lig_atom]
        # probe_idx is non-decreasing (probe-major query order), so each
        # pose owns one contiguous slice of the pair arrays.
        bounds = np.searchsorted(probe_idx, np.arange(0, k * m + 1, m))
        for i in range(k):
            s, t = bounds[i], bounds[i + 1]
            if s == t:
                continue  # no pairs in range: score 0.0, as in score()
            energy = float(e_el[s:t].sum()) + float(e_lj[s:t].sum())
            el = eligible[s:t]
            if el.any():
                sl_rec = rec_idx[s:t]
                energy += self._hbond_correction(
                    r[s:t][el],
                    diff[s:t][el],
                    self._dirs[sl_rec[el]],
                    e_lj[s:t][el],
                )
            out[i] = -energy
        return out


#: Gauge reporting the built potential grid's memory footprint.
GRID_BYTES_METRIC = "scoring/grid_bytes"
#: Gauge reporting the cumulative count of interpolation points the
#: grid clamped to its boundary (out-of-box poses; see
#: :mod:`repro.scoring.grid` for the documented clamp behavior).
GRID_OOB_METRIC = "scoring/grid_oob_points"


class GridScorer:
    """Precomputed-field scorer (see :class:`repro.scoring.grid.PotentialGrid`).

    The grid is built lazily on first use (under a "grid-build" tracer
    span when a tracer is attached; its size lands in the
    ``scoring/grid_bytes`` gauge when a metrics registry is, and the
    cumulative out-of-box clamp count in ``scoring/grid_oob_points``).
    Pass a prebuilt ``cells`` grid over the same receptor to skip the
    build -- screening workers share one grid across every ligand they
    score, mirroring the cell-list sharing of the cutoff/incremental
    scorers.

    The per-ligand LJ weight vectors ``w12 = 4 sqrt(eps) sigma^6`` and
    ``w6 = 4 sqrt(eps) sigma^3`` depend only on topology, so they are
    computed once here and passed into every grid evaluation
    (bit-identical to the recompute-per-call path, same floats).
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        spacing: float = 1.0,
        padding: float = 6.0,
        dtype: str = "float64",
        *,
        cells: PotentialGrid | None = None,
    ):
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        # Validate eagerly (PotentialGrid would only catch this at the
        # lazy first build, deep inside a worker).
        if dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {dtype!r}"
            )
        if cells is not None and not isinstance(cells, PotentialGrid):
            raise TypeError(
                "cells must be a prebuilt PotentialGrid, got "
                f"{type(cells).__name__}"
            )
        self.receptor = receptor
        self.ligand = ligand
        self.spacing = float(spacing)
        self.padding = float(padding)
        self.dtype = str(dtype)
        self._weights = (
            4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**6,
            4.0 * np.sqrt(ligand.epsilon) * ligand.sigma**3,
        )
        self._grid = cells
        self._tracer = None
        self._metrics = None

    @property
    def grid(self) -> PotentialGrid:
        """The potential grid, built on first access."""
        if self._grid is None:
            tr = self._tracer
            if tr is None:
                self._grid = PotentialGrid(
                    self.receptor,
                    spacing=self.spacing,
                    padding=self.padding,
                    dtype=self.dtype,
                )
            else:
                with tr.span("grid-build"):
                    self._grid = PotentialGrid(
                        self.receptor,
                        spacing=self.spacing,
                        padding=self.padding,
                        dtype=self.dtype,
                    )
            self._publish_size()
        return self._grid

    @property
    def tracer(self):
        """Optional :class:`~repro.telemetry.spans.SpanTracer`."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value

    @property
    def metrics(self):
        """Optional :class:`~repro.telemetry.metrics.MetricsRegistry`."""
        return self._metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self._metrics = value
        self._publish_size()

    def _publish_size(self) -> None:
        if self._metrics is not None and self._grid is not None:
            self._metrics.set(GRID_BYTES_METRIC, float(self._grid.nbytes()))

    def _publish_oob(self) -> None:
        if self._metrics is not None:
            self._metrics.set(
                GRID_OOB_METRIC, float(self.grid.oob_points)
            )

    def score(self, coords: np.ndarray) -> float:
        out = self.grid.score(self.ligand, coords, weights=self._weights)
        self._publish_oob()
        return out

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        cb = as_pose_batch(coords_batch, self.ligand.n_atoms)
        if cb.shape[0] == 0:
            # Empty batch: nothing to interpolate -- return before the
            # lazy grid build is triggered.
            return np.empty(0)
        out = self.grid.score_batch(
            self.ligand, cb, weights=self._weights
        )
        self._publish_oob()
        return out


def score_pose_group(entries) -> np.ndarray:
    """Score one ``(scorer, coords)`` pose per entry, fusing where possible.

    The cross-ligand batching front door used by the screening rollout:
    entries whose scorer is a :class:`~repro.scoring.field.FieldScorer`
    are routed through :func:`~repro.scoring.field.score_field_group`
    (one fused gather per shared :class:`FieldMaps`, covering
    heterogeneous ligands against one receptor); every other scorer
    falls back to its single-pose ``score()``.  Entry ``i``'s result is
    bitwise-equal to ``entries[i][0].score(entries[i][1])``, including
    scorer-side telemetry, evaluated in entry order within each path.
    """
    entries = list(entries)
    out = np.empty(len(entries))
    field_idx = []
    try:
        from repro.scoring.field import FieldScorer, score_field_group
    except ImportError:  # pragma: no cover - field always importable
        FieldScorer = None
        score_field_group = None
    for i, (scorer, coords) in enumerate(entries):
        if FieldScorer is not None and isinstance(scorer, FieldScorer):
            field_idx.append(i)
        else:
            out[i] = scorer.score(coords)
    if field_idx:
        fused = score_field_group([entries[i] for i in field_idx])
        for j, i in enumerate(field_idx):
            out[i] = fused[j]
    return out


def _make_incremental(receptor: Molecule, ligand: Molecule, **kwargs):
    from repro.scoring.incremental import IncrementalScorer

    return IncrementalScorer(receptor, ligand, **kwargs)


def _make_field(receptor: Molecule, ligand: Molecule, **kwargs):
    from repro.scoring.field import FieldScorer

    return FieldScorer(receptor, ligand, **kwargs)


@dataclass(frozen=True)
class ScorerEntry:
    """One registered scoring method: factory + declared kwargs.

    ``kwargs`` maps each accepted keyword to its allowed value types;
    ``runtime_only`` names kwargs that are legal when constructing a
    scorer in-process (shared in-memory caches) but meaningless in a
    JSON config.
    """

    factory: Callable[..., PoseScorer]
    kwargs: Mapping[str, tuple[type, ...]] = field(default_factory=dict)
    runtime_only: frozenset[str] = frozenset()


_NUMBER = (int, float)
_OPTIONAL_NUMBER = (int, float, type(None))

#: Method name -> :class:`ScorerEntry`; the single source of truth for
#: valid ``scoring_method`` / ``scoring_kwargs`` combinations.
SCORER_REGISTRY: dict[str, ScorerEntry] = {
    "exact": ScorerEntry(factory=ExactScorer),
    "cutoff": ScorerEntry(
        factory=CutoffScorer,
        kwargs={
            "cutoff": _NUMBER,
            "shifted": (bool,),
            "cell_size": _OPTIONAL_NUMBER,
            "cells": (object,),
        },
        runtime_only=frozenset({"cells"}),
    ),
    "grid": ScorerEntry(
        factory=GridScorer,
        kwargs={
            "spacing": _NUMBER,
            "padding": _NUMBER,
            "dtype": (str,),
            "cells": (object,),
        },
        runtime_only=frozenset({"cells"}),
    ),
    "incremental": ScorerEntry(
        factory=_make_incremental,
        kwargs={
            "cutoff": _NUMBER,
            "skin": _NUMBER,
            "shifted": (bool,),
            "cell_size": _OPTIONAL_NUMBER,
            "cells": (object,),
        },
        runtime_only=frozenset({"cells"}),
    ),
    "field": ScorerEntry(
        factory=_make_field,
        kwargs={
            "spacing": _NUMBER,
            "padding": _NUMBER,
            "clash_radius": _NUMBER,
            "dtype": (str,),
            "cells": (object,),
        },
        runtime_only=frozenset({"cells"}),
    ),
}

#: Valid ``make_scorer`` / config ``scoring_method`` strings.
SCORING_METHODS: tuple[str, ...] = tuple(SCORER_REGISTRY)


def validate_scoring_kwargs(
    method: str,
    kwargs: Mapping[str, Any],
    *,
    allow_runtime: bool = False,
) -> None:
    """Check ``scoring_kwargs`` against the registry; raise on misuse.

    Called from ``DQNDockingConfig.__post_init__`` (``allow_runtime``
    False -- a typo or a runtime-only kwarg in a run config fails at
    construction, not deep inside a worker) and from
    :func:`make_scorer` (``allow_runtime`` True).
    """
    entry = SCORER_REGISTRY.get(method)
    if entry is None:
        raise ValueError(
            f"unknown scoring method {method!r}; "
            f"choose from {SCORING_METHODS}"
        )
    for name, value in kwargs.items():
        allowed = entry.kwargs.get(name)
        if allowed is None:
            valid = ", ".join(sorted(entry.kwargs)) or "none"
            raise ValueError(
                f"scoring method {method!r} accepts no kwarg {name!r} "
                f"(valid: {valid})"
            )
        if name in entry.runtime_only:
            if not allow_runtime:
                raise ValueError(
                    f"scoring kwarg {name!r} is runtime-only (a shared "
                    "in-memory cache) and cannot appear in a config's "
                    "scoring_kwargs"
                )
            continue
        if not isinstance(value, allowed) or (
            isinstance(value, bool) and bool not in allowed
        ):
            expected = "/".join(t.__name__ for t in allowed)
            raise ValueError(
                f"scoring kwarg {name!r} for method {method!r} must be "
                f"{expected}, got {type(value).__name__} ({value!r})"
            )


def make_scorer(
    method: str,
    receptor: Molecule,
    ligand: Molecule,
    **kwargs,
) -> PoseScorer:
    """Scorer factory keyed by config string (thin registry shim)."""
    validate_scoring_kwargs(method, kwargs, allow_runtime=True)
    return SCORER_REGISTRY[method].factory(receptor, ligand, **kwargs)
