"""Lennard-Jones 12-6 term of Eq. 1 (van der Waals, MMFF94-flavoured).

``sum_ij 4 eps_ij ((sigma_ij/r)^12 - (sigma_ij/r)^6)`` with
Lorentz-Berthelot combination: ``sigma_ij = (sigma_i + sigma_j)/2``,
``eps_ij = sqrt(eps_i * eps_j)``.  The r^-12 wall is the steric-overlap
penalty that drives the paper's episode-termination rule.
"""

from __future__ import annotations

import numpy as np


def combine_lj(
    sigma_a: np.ndarray,
    eps_a: np.ndarray,
    sigma_b: np.ndarray,
    eps_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Lorentz-Berthelot combination -> pair matrices (n, m)."""
    sa = np.asarray(sigma_a, dtype=float)[:, None]
    sb = np.asarray(sigma_b, dtype=float)[None, :]
    ea = np.asarray(eps_a, dtype=float)[:, None]
    eb = np.asarray(eps_b, dtype=float)[None, :]
    return 0.5 * (sa + sb), np.sqrt(ea * eb)


def lennard_jones_energy(
    sigma_a: np.ndarray,
    eps_a: np.ndarray,
    sigma_b: np.ndarray,
    eps_b: np.ndarray,
    distances: np.ndarray,
) -> float:
    """Total 12-6 energy between two atom sets, kcal/mol."""
    return float(
        lennard_jones_energy_matrix(
            sigma_a, eps_a, sigma_b, eps_b, distances
        ).sum()
    )


def lennard_jones_energy_pre(
    sigma_pair: np.ndarray,
    eps_pair: np.ndarray,
    distances: np.ndarray,
) -> float:
    """Total 12-6 energy from *pre-combined* (n, m) pair parameters.

    Arithmetic replicates :func:`lennard_jones_energy_matrix` exactly, so
    callers that cache the static ``combine_lj`` matrices (the receptor
    and ligand topologies never change within a run) get bit-identical
    energies while skipping the per-call combination.
    """
    x = sigma_pair / distances
    x6 = x * x * x
    x6 *= x6
    return float((4.0 * eps_pair * (x6 * x6 - x6)).sum())


def lennard_jones_energy_batch_pre(
    sigma_pair: np.ndarray,
    eps_pair: np.ndarray,
    distances_batch: np.ndarray,
) -> np.ndarray:
    """Batched totals from pre-combined pair parameters -> (k,).

    Bit-identical to :func:`lennard_jones_energy_batch` (same ops on the
    same floats, minus the redundant ``combine_lj``).
    """
    x = sigma_pair[None, :, :] / distances_batch
    x6 = x * x * x
    x6 *= x6
    return (4.0 * eps_pair[None, :, :] * (x6 * x6 - x6)).sum(axis=(1, 2))


def lennard_jones_energy_matrix(
    sigma_a: np.ndarray,
    eps_a: np.ndarray,
    sigma_b: np.ndarray,
    eps_b: np.ndarray,
    distances: np.ndarray,
) -> np.ndarray:
    """Per-pair 12-6 energies (n, m).

    Computed via ``x = (sigma/r)^6`` then ``4 eps (x^2 - x)`` -- one pow
    and two multiplies per pair instead of two pows.
    """
    sig, eps = combine_lj(sigma_a, eps_a, sigma_b, eps_b)
    x = sig / distances
    x6 = x * x * x
    x6 *= x6  # (sigma/r)^6
    return 4.0 * eps * (x6 * x6 - x6)


def lennard_jones_energy_batch(
    sigma_a: np.ndarray,
    eps_a: np.ndarray,
    sigma_b: np.ndarray,
    eps_b: np.ndarray,
    distances_batch: np.ndarray,
) -> np.ndarray:
    """Batched totals over (k, n, m) distances -> (k,)."""
    sig, eps = combine_lj(sigma_a, eps_a, sigma_b, eps_b)
    x = sig[None, :, :] / distances_batch
    x6 = x * x * x
    x6 *= x6
    return (4.0 * eps[None, :, :] * (x6 * x6 - x6)).sum(axis=(1, 2))


def lj_pair(sigma: float, eps: float, r: float) -> float:
    """Single-pair 12-6 energy with pre-combined parameters."""
    x6 = (sigma / r) ** 6
    return 4.0 * eps * (x6 * x6 - x6)


def lj_minimum(sigma: float) -> float:
    """Distance of the 12-6 minimum, ``2^(1/6) sigma``."""
    return 2.0 ** (1.0 / 6.0) * sigma
