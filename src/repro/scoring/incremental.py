"""Incremental Verlet-list pose scoring (cutoff + skin).

The RL action set moves the ligand at most ~1 A per step (Table 1), so
the set of receptor atoms within the cutoff of any ligand atom barely
changes between consecutive scores.  :class:`IncrementalScorer` exploits
this with the classic Verlet-list construction:

- the *pair list* holds every (receptor atom, ligand atom) pair within
  ``cutoff + skin`` of the ligand's position at the last *build*;
- the list provably covers every within-``cutoff`` pair as long as no
  ligand atom has moved more than ``skin / 2`` since the build (the
  receptor is static, so the usual skin/2-per-particle budget is all
  the ligand's — the guarantee is conservative);
- a *rebuild* is triggered only when the maximum ligand-atom
  displacement since the last build exceeds ``skin / 2``.

At build time everything per-pair scoring needs is gathered once into
preallocated flat tables — Coulomb charge products, combined
Lorentz-Berthelot sigma/epsilon, H-bond eligibility and receptor donor
directions — so the per-step kernel is pure vectorized arithmetic over
contiguous buffers with no per-step allocation and no Python-level
loops.

Bit-stability (checkpoint safety)
---------------------------------
The pair-list cache is *derived* state: it is never checkpointed, and a
resumed run starts with a cold cache.  The score must therefore be a
pure function of the pose, independent of when the list was last built.
Two properties guarantee this:

1. :func:`repro.scoring.neighborlist.query_pairs` returns pairs in a
   canonical order (ligand-atom-major, cells ascending, stored index
   ascending within a cell) that depends only on pair *membership*, not
   on where the query was centered; and
2. each evaluation first *compresses* the cached superset list to
   exactly the pairs with ``r <= cutoff`` — a subset whose content and
   order is the same whether the list was built at this pose or up to
   skin/2 away — and every reduction runs over those compressed arrays.

Hence a fresh scorer and a scorer carrying a warm cache produce
bit-identical floats for the same coordinates (pinned by
``tests/test_scoring_incremental.py``), and interrupt/resume of a run
using ``--scoring-method incremental`` stays bit-stable per
``docs/CHECKPOINTS.md``.

Accuracy matches :class:`repro.scoring.scorers.CutoffScorer` at the
same ``cutoff`` to within :data:`DRIFT_REL_BOUND` (same pair set, same
per-pair formulas; only floating-point association differs).  The
truncation error *versus the exact scorer* is the cutoff's accuracy
knob, shared with ``CutoffScorer`` and quantified per cutoff in
``docs/PERFORMANCE.md`` and ``benchmarks/test_bench_score_step.py``.
"""

from __future__ import annotations

import numpy as np

from repro.chem.molecule import Molecule
from repro.constants import COULOMB_CONSTANT, DEFAULT_CUTOFF, MIN_DISTANCE
from repro.scoring import hbond as hb
from repro.scoring.neighborlist import CellList, query_pairs
from repro.scoring.pairwise import direction_vectors
from repro.scoring.scorers import as_pose_batch

#: Default Verlet skin, angstrom.  With the paper's 1 A shift actions a
#: 3 A skin re-lists every 2-4 shift steps in the worst case and far
#: less often under mixed shift/rotation policies (a 0.5 deg rotation
#: moves atoms only ~0.04 A); larger skins trade fewer rebuilds for more
#: candidate pairs per step.
DEFAULT_SKIN: float = 3.0

#: Documented bound on the relative score drift of the incremental
#: scorer versus the cutoff reference implementation at the same cutoff
#: (``max |inc - cutoff| / max(1, |cutoff|)``): identical pair set and
#: per-pair arithmetic, so only floating-point association differs.
#: Measured ~1e-15 on the 2BSM-scale bench trajectory; enforced by
#: benchmarks/test_bench_score_step.py.  The error versus the *exact*
#: scorer is the cutoff truncation itself — see the "Scoring kernels"
#: section of docs/PERFORMANCE.md for the measured truncation table and
#: the bound the bench enforces for it.
DRIFT_REL_BOUND: float = 1e-9

#: Telemetry metric names (registered lazily on the attached registry).
REBUILDS_METRIC = "scoring/neighborlist_rebuilds"
ACTIVE_PAIRS_METRIC = "scoring/active_pairs"


class IncrementalScorer:
    """Verlet-list scorer: cached cutoff+skin pairs, rebuilt on demand.

    Parameters
    ----------
    receptor, ligand:
        The static receptor and the ligand template (topology and
        charges; coordinates arrive per call).
    cutoff:
        Interaction cutoff in angstrom — the accuracy knob, identical
        in meaning to :class:`CutoffScorer`'s.
    skin:
        Extra list radius in angstrom — the cadence knob.
    shifted:
        Use the energy-shifted Coulomb form (matches ``CutoffScorer``).
    cell_size:
        Receptor cell-list bin edge; ``None`` picks ``(cutoff+skin)/2``,
        which measured fastest for list-radius-sized queries (bins equal
        to the query radius degenerate to scanning the whole receptor).

    Attributes
    ----------
    rebuild_count:
        Number of pair-list builds performed so far.
    active_pairs:
        Within-cutoff pair count of the most recent evaluation.
    tracer / metrics:
        Optional telemetry hooks (a ``SpanTracer`` and a
        ``MetricsRegistry``); wired automatically by ``MetadockEngine``.
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        cutoff: float = DEFAULT_CUTOFF,
        skin: float = DEFAULT_SKIN,
        *,
        shifted: bool = True,
        cell_size: float | None = None,
        cells: CellList | None = None,
    ):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if skin <= 0:
            raise ValueError("skin must be positive")
        self.receptor = receptor
        self.ligand = ligand
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.shifted = bool(shifted)
        self.tracer = None
        self.metrics = None
        self.rebuild_count = 0
        self.active_pairs = 0
        self._list_radius = self.cutoff + self.skin
        self._half_skin_sq = (0.5 * self.skin) ** 2
        self._cutoff_sq = self.cutoff * self.cutoff
        self._inv_cutoff = 1.0 / self.cutoff
        # A prebuilt ``cells`` (same receptor coords, list-radius bins)
        # skips the binning -- screening workers share one receptor cell
        # list across every ligand they score.
        if cells is not None:
            self._cells = cells
        else:
            if cell_size is None:
                cell_size = self._list_radius / 2.0
            self._cells = CellList(receptor.coords, cell_size=cell_size)
        self._dirs_full = direction_vectors(receptor.coords, receptor.bonds)
        self._iso_full = (np.abs(self._dirs_full) < 1e-12).all(axis=1)
        self._mask_full = hb.eligible_pairs_mask(
            receptor.hbond_donor,
            receptor.hbond_acceptor,
            ligand.hbond_donor,
            ligand.hbond_acceptor,
        )
        m = ligand.n_atoms
        self._ref = np.zeros((m, 3))
        self._disp = np.empty((m, 3))
        self._disp_row = np.empty(m)
        self._have_list = False
        self._n_pairs = 0
        self._any_elig = False
        self._cap = 0

    # -- capacity / buffers -------------------------------------------------
    def _ensure_capacity(self, n: int) -> None:
        """Grow the gather tables and work buffers to hold ``n`` pairs."""
        if n <= self._cap:
            return
        cap = max(n, self._cap + self._cap // 4 + 16)
        # Build-time gather tables (filled at rebuild, read every step).
        self._lig_idx = np.empty(cap, dtype=np.int64)
        self._rec_xyz = np.empty((cap, 3))
        # Rows: Coulomb-prescaled charge product k*q_r*q_l, combined
        # sigma (s_r+s_l)/2, and 4*sqrt(e_r*e_l) (the 12-6 prefactor) —
        # one (3, cap) block so the per-step compression is one call
        # over contiguous rows.
        self._static = np.empty((3, cap))
        self._elig = np.empty(cap, dtype=bool)
        self._dirs = np.empty((cap, 3))
        self._iso = np.empty(cap, dtype=bool)
        # Per-step work over the full candidate list ...
        self._lig_xyz = np.empty((cap, 3))
        self._diff = np.empty((cap, 3))
        self._r2 = np.empty(cap)
        self._act = np.empty(cap, dtype=bool)
        self._both = np.empty(cap, dtype=bool)
        # ... and over the compressed within-cutoff subset.
        self._c_static = np.empty((3, cap))
        self._c_r = np.empty(cap)
        self._c_inv = np.empty(cap)
        self._c_e = np.empty(cap)
        self._c_x = np.empty(cap)
        self._c_x6 = np.empty(cap)
        self._c_elj = np.empty(cap)
        self._c_elig = np.empty(cap, dtype=bool)
        self._cap = cap

    # -- list construction --------------------------------------------------
    def _rebuild(self, lig: np.ndarray) -> None:
        rec_idx, lig_idx = query_pairs(self._cells, lig, self._list_radius)
        n = int(rec_idx.size)
        self._ensure_capacity(n)
        self._n_pairs = n
        rec = self.receptor
        lig_mol = self.ligand
        if n:
            self._lig_idx[:n] = lig_idx
            np.take(rec.coords, rec_idx, axis=0, out=self._rec_xyz[:n])
            qq = self._static[0, :n]
            np.take(rec.charges, rec_idx, out=qq)
            qq *= lig_mol.charges[lig_idx]
            qq *= COULOMB_CONSTANT
            sig = self._static[1, :n]
            np.take(rec.sigma, rec_idx, out=sig)
            sig += lig_mol.sigma[lig_idx]
            sig *= 0.5
            eps = self._static[2, :n]
            np.take(rec.epsilon, rec_idx, out=eps)
            eps *= lig_mol.epsilon[lig_idx]
            np.sqrt(eps, out=eps)
            eps *= 4.0
            self._elig[:n] = self._mask_full[rec_idx, lig_idx]
            self._any_elig = bool(self._elig[:n].any())
            if self._any_elig:
                np.take(
                    self._dirs_full, rec_idx, axis=0, out=self._dirs[:n]
                )
                np.take(self._iso_full, rec_idx, out=self._iso[:n])
        else:
            self._any_elig = False
        self._ref[:] = lig
        self._have_list = True
        self.rebuild_count += 1
        if self.metrics is not None:
            self.metrics.inc(REBUILDS_METRIC)

    def _needs_rebuild(self, lig: np.ndarray) -> bool:
        if not self._have_list:
            return True
        d = self._disp
        np.subtract(lig, self._ref, out=d)
        d *= d
        d.sum(axis=1, out=self._disp_row)
        return bool(self._disp_row.max() > self._half_skin_sq)

    # -- scoring -------------------------------------------------------------
    def score(self, coords: np.ndarray) -> float:
        lig = np.asarray(coords, dtype=float)
        if lig.shape != (self.ligand.n_atoms, 3):
            raise ValueError(
                f"coords must have shape ({self.ligand.n_atoms}, 3)"
            )
        if self._needs_rebuild(lig):
            if self.tracer is not None:
                with self.tracer.span("neighborlist-rebuild"):
                    self._rebuild(lig)
            else:
                self._rebuild(lig)
        return self._score_cached(lig)

    def score_batch(self, coords_batch: np.ndarray) -> np.ndarray:
        """Scores for (k, m, 3) poses; reuses the Verlet cache across poses.

        Poses within skin/2 of the current reference are scored off the
        cached list; a pose farther away triggers a rebuild centered on
        it (exactly as :meth:`score` would).  Batches of *nearby*
        candidate poses — vector-env steps, local pose refinement —
        therefore share one pair list; scattered batches degrade
        gracefully to one list build per pose.

        Pose-major vectorized: poses are scanned into maximal segments
        covered by one pair list (the same per-pose displacement test
        :meth:`score` applies, in the same order, so rebuild decisions
        match the sequential loop exactly), and each segment's per-pair
        terms are computed in one vectorized pass over the shared gather
        tables with only the per-pose reductions running per pose —
        each entry bitwise-equal to a sequential :meth:`score` call.
        """
        cb = as_pose_batch(coords_batch, self.ligand.n_atoms)
        k = cb.shape[0]
        out = np.empty(k)
        if k == 0:
            return out
        i = 0
        while i < k:
            if self._needs_rebuild(cb[i]):
                if self.tracer is not None:
                    with self.tracer.span("neighborlist-rebuild"):
                        self._rebuild(cb[i])
                else:
                    self._rebuild(cb[i])
            # Maximal run of poses the current list covers: the first
            # pose whose max displacement from the build reference
            # exceeds skin/2 ends the segment (it would trigger a
            # rebuild in the sequential loop too).
            j = i + 1
            if j < k:
                disp = cb[j:] - self._ref
                d2 = np.einsum("kij,kij->ki", disp, disp).max(axis=1)
                bad = np.flatnonzero(d2 > self._half_skin_sq)
                j = k if bad.size == 0 else j + int(bad[0])
            self._score_cached_batch(cb[i:j], out[i:j])
            i = j
        return out

    def _score_cached_batch(self, seg: np.ndarray, out: np.ndarray) -> None:
        """Vectorized :meth:`_score_cached` over list-covered poses.

        Every per-pair term is elementwise, so one pass over the
        ``(g, n)`` candidate block produces exactly the values the
        single-pose path would; the compressed arrays are laid out
        pose-major so every floating-point *reduction* runs per pose
        over a contiguous slice of the same length, in the same op
        order — bitwise-identical to ``g`` sequential calls (including
        the per-pose ``active_pairs`` gauge updates).
        """
        n = self._n_pairs
        g = seg.shape[0]
        if n == 0:
            out[:] = 0.0
            self.active_pairs = 0
            if self.metrics is not None:
                for _ in range(g):
                    self.metrics.set(ACTIVE_PAIRS_METRIC, 0)
            return
        if self._any_elig:
            c_hb, d_hb = hb.hbond_coefficients()
        elig_n = self._elig[:n]
        # Chunk poses so the (chunk, n) temporaries stay bounded.
        chunk = max(1, 2_000_000 // max(1, n))
        for s0 in range(0, g, chunk):
            s1 = min(s0 + chunk, g)
            poses = seg[s0:s1]
            gg = s1 - s0
            ligx = poses[:, self._lig_idx[:n], :]
            diff = ligx - self._rec_xyz[:n][None, :, :]
            r2 = np.einsum("gij,gij->gi", diff, diff)
            act = r2 <= self._cutoff_sq
            na = act.sum(axis=1).astype(np.int64)
            bounds = np.zeros(gg + 1, dtype=np.int64)
            np.cumsum(na, out=bounds[1:])
            # Pose-major compression: pose p owns rows
            # bounds[p]:bounds[p+1] of every compressed array below —
            # the same subset, content and order, score() compresses.
            flat_act = act.reshape(-1)
            c_r = r2.reshape(-1)[flat_act]
            np.sqrt(c_r, out=c_r)
            np.maximum(c_r, MIN_DISTANCE, out=c_r)
            cols = np.nonzero(act)[1]
            c_static = self._static[:, :n][:, cols]
            c_inv = 1.0 / c_r
            if self.shifted:
                c_inv -= self._inv_cutoff
            e = c_static[0] * c_inv
            # Lennard-Jones, cube-then-square exactly as _score_cached.
            x = c_static[1] / c_r
            x6 = x * x
            x6 *= x
            x6 *= x6
            e_lj = x6 * x6
            e_lj -= x6
            e_lj *= c_static[2]
            for p in range(gg):
                na_p = int(na[p])
                self.active_pairs = na_p
                if self.metrics is not None:
                    self.metrics.set(ACTIVE_PAIRS_METRIC, na_p)
                if na_p == 0:
                    out[s0 + p] = 0.0
                    continue
                lo, hi = int(bounds[p]), int(bounds[p + 1])
                energy = float(e[lo:hi].sum())
                energy += float(e_lj[lo:hi].sum())
                if self._any_elig:
                    act_p = act[p]
                    c_elig = np.compress(act_p, elig_n)
                    if c_elig.any():
                        both = np.logical_and(act_p, elig_n)
                        d_el = np.compress(c_elig, c_r[lo:hi])
                        u = np.compress(both, diff[p], axis=0)
                        dirs = np.compress(both, self._dirs[:n], axis=0)
                        iso = np.compress(both, self._iso[:n])
                        e_lj_sub = np.compress(c_elig, e_lj[lo:hi])
                        norm = np.maximum(
                            np.linalg.norm(u, axis=1), 1e-9
                        )
                        cos = (dirs * u).sum(axis=1) / norm
                        cos[iso] = 1.0
                        np.clip(cos, 0.0, 1.0, out=cos)
                        sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
                        e_1210 = c_hb / d_el**12 - d_hb / d_el**10
                        energy += float(
                            (cos * e_1210 - (1.0 - sin) * e_lj_sub).sum()
                        )
                out[s0 + p] = -energy

    def _score_cached(self, lig: np.ndarray) -> float:
        n = self._n_pairs
        if n == 0:
            self.active_pairs = 0
            if self.metrics is not None:
                self.metrics.set(ACTIVE_PAIRS_METRIC, 0)
            return 0.0
        # Squared distances over the full candidate list.
        ligx = self._lig_xyz[:n]
        np.take(lig, self._lig_idx[:n], axis=0, out=ligx)
        diff = self._diff[:n]
        np.subtract(ligx, self._rec_xyz[:n], out=diff)
        r2 = self._r2[:n]
        np.einsum("ij,ij->i", diff, diff, out=r2)
        # Compress to the exact within-cutoff pair set.  This subset
        # (content *and* order) is a pure function of the pose, so every
        # reduction below is bit-stable across rebuild states.
        act = self._act[:n]
        np.less_equal(r2, self._cutoff_sq, out=act)
        na = int(np.count_nonzero(act))
        self.active_pairs = na
        if self.metrics is not None:
            self.metrics.set(ACTIVE_PAIRS_METRIC, na)
        if na == 0:
            return 0.0
        c_r = self._c_r[:na]
        np.compress(act, r2, out=c_r)
        np.sqrt(c_r, out=c_r)
        np.maximum(c_r, MIN_DISTANCE, out=c_r)
        c_static = self._c_static[:, :na]
        np.compress(act, self._static[:, :n], axis=1, out=c_static)
        # Electrostatics (optionally energy-shifted at the cutoff).
        c_inv = self._c_inv[:na]
        np.divide(1.0, c_r, out=c_inv)
        if self.shifted:
            c_inv -= self._inv_cutoff
        e = self._c_e[:na]
        np.multiply(c_static[0], c_inv, out=e)
        energy = float(e.sum())
        # Lennard-Jones: 4 eps ((sig/r)^12 - (sig/r)^6), cube-then-square
        # like lennard_jones_energy_matrix.
        x = self._c_x[:na]
        np.divide(c_static[1], c_r, out=x)
        x6 = self._c_x6[:na]
        np.multiply(x, x, out=x6)
        x6 *= x
        x6 *= x6
        e_lj = self._c_elj[:na]
        np.multiply(x6, x6, out=e_lj)
        e_lj -= x6
        e_lj *= c_static[2]
        energy += float(e_lj.sum())
        # Hydrogen-bond correction on eligible pairs (small subset; the
        # transient selections here are tiny).
        if self._any_elig:
            c_elig = self._c_elig[:na]
            np.compress(act, self._elig[:n], out=c_elig)
            if c_elig.any():
                both = self._both[:n]
                np.logical_and(act, self._elig[:n], out=both)
                d_el = np.compress(c_elig, c_r)
                u = np.compress(both, diff, axis=0)
                dirs = np.compress(both, self._dirs[:n], axis=0)
                iso = np.compress(both, self._iso[:n])
                e_lj_sub = np.compress(c_elig, e_lj)
                norm = np.maximum(np.linalg.norm(u, axis=1), 1e-9)
                cos = (dirs * u).sum(axis=1) / norm
                cos[iso] = 1.0
                np.clip(cos, 0.0, 1.0, out=cos)
                sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
                c_hb, d_hb = hb.hbond_coefficients()
                e_1210 = c_hb / d_el**12 - d_hb / d_el**10
                energy += float(
                    (cos * e_1210 - (1.0 - sin) * e_lj_sub).sum()
                )
        return -energy
