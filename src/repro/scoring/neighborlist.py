"""Cell-list neighbor search for cutoff-based scoring.

The receptor is static throughout an episode, so its atoms are binned
into a uniform grid once; each ligand atom then only visits the 27
surrounding cells instead of all ~3k receptor atoms.  With the default
12 A cutoff this reduces the per-step pair count by roughly the ratio of
the receptor volume to the cutoff sphere -- the same locality optimization
METADOCK applies on the GPU ("dividing the whole protein surface into
independent regions").
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_CUTOFF


class CellList:
    """Uniform-grid spatial index over a static point set.

    Parameters
    ----------
    points:
        (n, 3) static coordinates (the receptor).
    cell_size:
        Edge length of the cubic cells; queries with ``radius <=
        cell_size`` are guaranteed complete by scanning 3x3x3 cells.
    """

    def __init__(self, points: np.ndarray, cell_size: float = DEFAULT_CUTOFF):
        pts = np.ascontiguousarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = pts
        self.cell_size = float(cell_size)
        self.origin = pts.min(axis=0) - 1e-9
        idx3 = np.floor((pts - self.origin) / self.cell_size).astype(np.int64)
        self.dims = idx3.max(axis=0) + 1 if len(pts) else np.ones(3, np.int64)
        flat = self._flatten(idx3)
        order = np.argsort(flat, kind="stable")
        self._sorted_indices = order
        self._sorted_flat = flat[order]
        # CSR-style cell starts over the *occupied* flat ids.
        self._unique_flat, starts = np.unique(
            self._sorted_flat, return_index=True
        )
        self._starts = starts
        self._ends = np.append(starts[1:], len(flat))

    def _flatten(self, idx3: np.ndarray) -> np.ndarray:
        d = self.dims
        return (idx3[..., 0] * d[1] + idx3[..., 1]) * d[2] + idx3[..., 2]

    def _cell_members(self, flat_id: int) -> np.ndarray:
        pos = np.searchsorted(self._unique_flat, flat_id)
        if pos >= len(self._unique_flat) or self._unique_flat[pos] != flat_id:
            return np.empty(0, dtype=np.int64)
        return self._sorted_indices[self._starts[pos] : self._ends[pos]]

    def query(self, center, radius: float | None = None) -> np.ndarray:
        """Indices of stored points within ``radius`` of ``center``.

        ``radius`` defaults to ``cell_size``; larger radii widen the cell
        scan accordingly (still exact).
        """
        r = self.cell_size if radius is None else float(radius)
        c = np.asarray(center, dtype=float)
        lo = np.floor((c - r - self.origin) / self.cell_size).astype(np.int64)
        hi = np.floor((c + r - self.origin) / self.cell_size).astype(np.int64)
        lo = np.maximum(lo, 0)
        hi = np.minimum(hi, self.dims - 1)
        if (lo > hi).any():
            return np.empty(0, dtype=np.int64)
        cand_parts = []
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                base = (ix * self.dims[1] + iy) * self.dims[2]
                for iz in range(lo[2], hi[2] + 1):
                    members = self._cell_members(base + iz)
                    if members.size:
                        cand_parts.append(members)
        if not cand_parts:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(cand_parts)
        d2 = ((self.points[cand] - c) ** 2).sum(axis=1)
        return cand[d2 <= r * r]

    def query_many(self, centers: np.ndarray, radius: float | None = None) -> np.ndarray:
        """Union of :meth:`query` results over several centers (sorted)."""
        parts = [self.query(c, radius) for c in np.asarray(centers, float)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def __len__(self) -> int:
        return len(self.points)


def cutoff_pairs(
    cell_list: CellList, probe_points: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """All (stored_index, probe_index) pairs within ``radius``.

    Returned as two parallel index arrays usable for masked scoring.
    """
    stored_parts: list[np.ndarray] = []
    probe_parts: list[np.ndarray] = []
    for k, c in enumerate(np.asarray(probe_points, dtype=float)):
        hits = cell_list.query(c, radius)
        if hits.size:
            stored_parts.append(hits)
            probe_parts.append(np.full(hits.size, k, dtype=np.int64))
    if not stored_parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return np.concatenate(stored_parts), np.concatenate(probe_parts)
