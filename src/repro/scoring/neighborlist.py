"""Cell-list neighbor search for cutoff-based scoring.

The receptor is static throughout an episode, so its atoms are binned
into a uniform grid once; each ligand atom then only visits the 27
surrounding cells instead of all ~3k receptor atoms.  With the default
12 A cutoff this reduces the per-step pair count by roughly the ratio of
the receptor volume to the cutoff sphere -- the same locality optimization
METADOCK applies on the GPU ("dividing the whole protein surface into
independent regions").
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_CUTOFF


class CellList:
    """Uniform-grid spatial index over a static point set.

    Parameters
    ----------
    points:
        (n, 3) static coordinates (the receptor).
    cell_size:
        Edge length of the cubic cells; queries with ``radius <=
        cell_size`` are guaranteed complete by scanning 3x3x3 cells.
    """

    def __init__(self, points: np.ndarray, cell_size: float = DEFAULT_CUTOFF):
        pts = np.ascontiguousarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = pts
        self.cell_size = float(cell_size)
        self.origin = (
            pts.min(axis=0) - 1e-9 if len(pts) else np.zeros(3)
        )
        idx3 = np.floor((pts - self.origin) / self.cell_size).astype(np.int64)
        self.dims = idx3.max(axis=0) + 1 if len(pts) else np.ones(3, np.int64)
        flat = self._flatten(idx3)
        order = np.argsort(flat, kind="stable")
        self._sorted_indices = order
        self._sorted_flat = flat[order]
        # CSR-style cell starts over the *occupied* flat ids.
        self._unique_flat, starts = np.unique(
            self._sorted_flat, return_index=True
        )
        self._starts = starts
        self._ends = np.append(starts[1:], len(flat))

    def _flatten(self, idx3: np.ndarray) -> np.ndarray:
        d = self.dims
        return (idx3[..., 0] * d[1] + idx3[..., 1]) * d[2] + idx3[..., 2]

    def _cell_members(self, flat_id: int) -> np.ndarray:
        pos = np.searchsorted(self._unique_flat, flat_id)
        if pos >= len(self._unique_flat) or self._unique_flat[pos] != flat_id:
            return np.empty(0, dtype=np.int64)
        return self._sorted_indices[self._starts[pos] : self._ends[pos]]

    def query(self, center, radius: float | None = None) -> np.ndarray:
        """Indices of stored points within ``radius`` of ``center``.

        ``radius`` defaults to ``cell_size``; larger radii widen the cell
        scan accordingly (still exact).
        """
        c = np.asarray(center, dtype=float)
        stored, _ = query_pairs(self, c.reshape(1, 3), radius)
        return stored

    def query_many(self, centers: np.ndarray, radius: float | None = None) -> np.ndarray:
        """Union of :meth:`query` results over several centers (sorted)."""
        parts = [self.query(c, radius) for c in np.asarray(centers, float)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def __len__(self) -> int:
        return len(self.points)


def query_pairs(
    cell_list: CellList, probe_points: np.ndarray, radius: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """All (stored_index, probe_index) pairs within ``radius``, vectorized.

    One fused cell-range query over every probe at once: candidate cells
    for all probes are enumerated as a dense (k, span^3) block of flat
    cell ids, resolved against the occupied-cell CSR table with a single
    ``searchsorted``, and expanded to member indices without any
    Python-level loop over probes or cells.

    Pair order is canonical and *probe-major*: pairs of probe ``k`` come
    before those of probe ``k+1``; within a probe, cells are visited in
    ascending (ix, iy, iz) order and members within a cell in ascending
    stored order.  This order is independent of which probe positions the
    query is centered on (only membership changes), which the incremental
    scorer relies on for bit-stable rescoring (see
    :mod:`repro.scoring.incremental`).
    """
    r = cell_list.cell_size if radius is None else float(radius)
    probes = np.asarray(probe_points, dtype=float).reshape(-1, 3)
    k = probes.shape[0]
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if k == 0 or len(cell_list) == 0:
        return empty
    s = cell_list.cell_size
    dims = cell_list.dims
    lo = np.floor((probes - r - cell_list.origin) / s).astype(np.int64)
    hi = np.floor((probes + r - cell_list.origin) / s).astype(np.int64)
    # Fixed per-axis span covering [lo, hi] for every probe (cells past a
    # probe's own hi are masked out below, so the shared span is just the
    # widest probe's).
    span = int((hi - lo).max()) + 1
    ax = np.arange(span, dtype=np.int64)
    off = np.stack(
        np.meshgrid(ax, ax, ax, indexing="ij"), axis=-1
    ).reshape(-1, 3)  # ascending (dx, dy, dz) scan order
    cells = lo[:, None, :] + off[None, :, :]  # (k, span^3, 3)
    valid = (
        (cells >= 0) & (cells < dims) & (cells <= hi[:, None, :])
    ).all(axis=2)
    flat = cell_list._flatten(cells)  # (k, span^3); bogus where ~valid
    n_occ = len(cell_list._unique_flat)
    pos = np.searchsorted(cell_list._unique_flat, flat)
    np.minimum(pos, n_occ - 1, out=pos)
    found = valid & (cell_list._unique_flat[pos] == flat)
    starts = np.where(found, cell_list._starts[pos], 0).reshape(-1)
    counts = np.where(
        found, cell_list._ends[pos] - cell_list._starts[pos], 0
    ).reshape(-1)
    total = int(counts.sum())
    if total == 0:
        return empty
    # CSR expansion: slot id and within-slot rank for every member
    # (np.take throughout -- measured ~3x faster than fancy indexing).
    cum = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=cum[1:])
    rank = np.arange(total, dtype=np.int64)
    rank -= np.repeat(cum, counts)
    rank += np.repeat(starts, counts)
    cand = np.take(cell_list._sorted_indices, rank)
    slot = np.repeat(
        np.arange(counts.size, dtype=np.int64), counts
    )
    probe_of = slot // off.shape[0]
    diff = np.take(cell_list.points, cand, axis=0)
    diff -= np.take(probes, probe_of, axis=0)
    d2 = np.einsum("ij,ij->i", diff, diff)
    keep = d2 <= r * r
    return np.compress(keep, cand), np.compress(keep, probe_of)


def cutoff_pairs(
    cell_list: CellList, probe_points: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """All (stored_index, probe_index) pairs within ``radius``.

    Returned as two parallel index arrays usable for masked scoring.
    Delegates to the vectorized :func:`query_pairs` (pair order preserved
    from the historical per-probe implementation).
    """
    return query_pairs(cell_list, probe_points, radius)
