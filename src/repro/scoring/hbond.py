"""Hydrogen-bond term of Eq. 1 (Fabiola et al. 12-10 potential).

Per Eq. 1, each eligible donor-acceptor pair contributes::

    cos(theta) * (C/r^12 - D/r^10) + sin(theta) * 4 eps ((s/r)^12 - (s/r)^6)

i.e. a 12-10 hydrogen-bond well when the geometry is aligned
(theta -> 0) that degrades continuously into a plain Lennard-Jones
interaction when the alignment is poor (theta -> 90 deg).

``theta`` is approximated per pair as the angle between the donor atom's
outward direction (away from its bonded neighbors -- where its hydrogen
points; see :func:`repro.scoring.pairwise.direction_vectors`) and the
donor->acceptor vector.  Atoms without topology get ideal alignment.

``C`` and ``D`` are set so the 12-10 well has its minimum at ``r0`` with
depth ``eps_hb``: ``C = 5 eps_hb r0^12``, ``D = 6 eps_hb r0^10``.
"""

from __future__ import annotations

import numpy as np

#: Ideal hydrogen-bond heavy-atom distance, angstrom.
HBOND_R0: float = 2.9
#: Hydrogen-bond well depth, kcal/mol.
HBOND_DEPTH: float = 5.0


def hbond_coefficients(
    r0: float = HBOND_R0, depth: float = HBOND_DEPTH
) -> tuple[float, float]:
    """(C, D) of the 12-10 potential with minimum ``-depth`` at ``r0``."""
    return 5.0 * depth * r0**12, 6.0 * depth * r0**10


def eligible_pairs_mask(
    donor_a: np.ndarray,
    acceptor_a: np.ndarray,
    donor_b: np.ndarray,
    acceptor_b: np.ndarray,
) -> np.ndarray:
    """(n, m) mask of pairs where one side can donate and the other accept."""
    da = np.asarray(donor_a, dtype=bool)[:, None]
    aa = np.asarray(acceptor_a, dtype=bool)[:, None]
    db = np.asarray(donor_b, dtype=bool)[None, :]
    ab = np.asarray(acceptor_b, dtype=bool)[None, :]
    return (da & ab) | (aa & db)


def hbond_angle_factors(
    coords_a: np.ndarray,
    coords_b: np.ndarray,
    dir_a: np.ndarray,
    *,
    min_distance: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray]:
    """(cos_theta, sin_theta) matrices, with cos clamped to [0, 1].

    ``dir_a`` holds per-atom outward directions for the A-side atoms (the
    donor side of each pair is approximated as the A atom; symmetrizing
    over both directions changes the landscape negligibly and doubles
    cost).  Zero direction vectors yield ideal alignment (cos=1, sin=0).
    """
    pa = np.asarray(coords_a, dtype=float)
    pb = np.asarray(coords_b, dtype=float)
    diff = pb[None, :, :] - pa[:, None, :]  # (n, m, 3) donor->acceptor
    norm = np.linalg.norm(diff, axis=2)
    norm = np.maximum(norm, min_distance)
    unit = diff / norm[:, :, None]
    cos = np.einsum("nd,nmd->nm", np.asarray(dir_a, dtype=float), unit)
    isotropic = (np.abs(dir_a) < 1e-12).all(axis=1)
    cos[isotropic, :] = 1.0
    np.clip(cos, 0.0, 1.0, out=cos)
    sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
    return cos, sin


def hbond_angle_factors_batch(
    coords_a: np.ndarray,
    coords_b_batch: np.ndarray,
    dir_a: np.ndarray,
    *,
    min_distance: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`hbond_angle_factors` over (k, m, 3) B-coordinates.

    Returns (cos, sin) of shape (k, n, m).  Must agree with the
    single-pose function per slice (asserted by the parity tests).
    """
    pa = np.asarray(coords_a, dtype=float)
    bb = np.asarray(coords_b_batch, dtype=float)
    da = np.asarray(dir_a, dtype=float)
    # cos = dir_a . (b - a) / |b - a|, expanded so everything is (k, n, m)
    # GEMMs instead of a (k, n, m, 3) temporary.
    a2 = (pa * pa).sum(axis=1)[None, :, None]
    b2 = (bb * bb).sum(axis=2)[:, None, :]
    cross = np.einsum("nd,kmd->knm", pa, bb)
    d2 = a2 + b2 - 2.0 * cross
    norm = np.sqrt(np.maximum(d2, min_distance * min_distance))
    dot_b = np.einsum("nd,kmd->knm", da, bb)
    dot_a = (da * pa).sum(axis=1)[None, :, None]
    cos = (dot_b - dot_a) / norm
    isotropic = (np.abs(da) < 1e-12).all(axis=1)
    cos[:, isotropic, :] = 1.0
    np.clip(cos, 0.0, 1.0, out=cos)
    sin = np.sqrt(np.maximum(0.0, 1.0 - cos * cos))
    return cos, sin


def hbond_energy_matrix(
    distances: np.ndarray,
    mask: np.ndarray,
    cos_theta: np.ndarray,
    sin_theta: np.ndarray,
    sigma_pair: np.ndarray,
    eps_pair: np.ndarray,
    *,
    r0: float = HBOND_R0,
    depth: float = HBOND_DEPTH,
) -> np.ndarray:
    """Per-pair H-bond energies on masked pairs; zeros elsewhere.

    The returned matrix is meant to be *added* to the plain LJ matrix as a
    correction: on eligible pairs the plain LJ was already counted, so the
    correction replaces it with the Eq. 1 mixture::

        correction = cos * E_1210 + sin * E_LJ - E_LJ
                   = cos * E_1210 - (1 - sin) * E_LJ
    """
    d = np.asarray(distances, dtype=float)
    c_coef, d_coef = hbond_coefficients(r0, depth)
    inv = 1.0 / d
    inv2 = inv * inv
    inv10 = inv2**5
    inv12 = inv10 * inv2
    e_1210 = c_coef * inv12 - d_coef * inv10
    x = sigma_pair * inv
    x6 = x * x * x
    x6 *= x6
    e_lj = 4.0 * eps_pair * (x6 * x6 - x6)
    corr = cos_theta * e_1210 - (1.0 - sin_theta) * e_lj
    return np.where(mask, corr, 0.0)


def hbond_energy(
    distances: np.ndarray,
    mask: np.ndarray,
    cos_theta: np.ndarray,
    sin_theta: np.ndarray,
    sigma_pair: np.ndarray,
    eps_pair: np.ndarray,
    **kwargs,
) -> float:
    """Total H-bond correction energy, kcal/mol."""
    return float(
        hbond_energy_matrix(
            distances, mask, cos_theta, sin_theta, sigma_pair, eps_pair,
            **kwargs,
        ).sum()
    )


def hbond_1210_pair(r: float, r0: float = HBOND_R0, depth: float = HBOND_DEPTH) -> float:
    """Single-pair 12-10 energy (reference/tests)."""
    c, d = hbond_coefficients(r0, depth)
    return c / r**12 - d / r**10
