"""The METADOCK scoring function (paper Equation 1) and accelerators.

Three physical terms, each its own module so the benches can cost them
separately:

- :mod:`repro.scoring.electrostatics` -- Coulomb term ``k q_i q_j / r``;
- :mod:`repro.scoring.lennard_jones` -- 12-6 van-der-Waals (MMFF94-style);
- :mod:`repro.scoring.hbond` -- 12-10 hydrogen-bond term with the
  ``cos/sin`` angular mixing of Eq. 1.

:mod:`repro.scoring.composite` combines them into the METADOCK score
(*negated* total energy, so clashes are huge negatives and good poses
approach the paper's "+500 at most").  :mod:`repro.scoring.reference` is
the paper's sequential Algorithm 1, kept as the parity oracle and the
baseline for the vectorization speedup bench.  :mod:`repro.scoring.
neighborlist` and :mod:`repro.scoring.grid` are the cutoff and
precomputed-grid accelerations (BINDSURF-style).
"""

from repro.scoring.composite import (
    ScoreBreakdown,
    interaction_energy,
    interaction_score,
    score_pose_batch,
)
from repro.scoring.electrostatics import electrostatic_energy
from repro.scoring.lennard_jones import lennard_jones_energy
from repro.scoring.hbond import hbond_energy
from repro.scoring.neighborlist import CellList
from repro.scoring.grid import PotentialGrid
from repro.scoring.field import FieldMaps, FieldScorer, score_field_group
from repro.scoring.incremental import IncrementalScorer
from repro.scoring.reference import sequential_score_algorithm1
from repro.scoring.scorers import (
    SCORER_REGISTRY,
    SCORING_METHODS,
    CutoffScorer,
    ExactScorer,
    GridScorer,
    ScorerEntry,
    as_pose_batch,
    make_scorer,
    score_pose_group,
    validate_scoring_kwargs,
)

__all__ = [
    "ScoreBreakdown",
    "interaction_energy",
    "interaction_score",
    "score_pose_batch",
    "electrostatic_energy",
    "lennard_jones_energy",
    "hbond_energy",
    "CellList",
    "PotentialGrid",
    "FieldMaps",
    "FieldScorer",
    "score_field_group",
    "score_pose_group",
    "as_pose_batch",
    "sequential_score_algorithm1",
    "ExactScorer",
    "CutoffScorer",
    "GridScorer",
    "IncrementalScorer",
    "ScorerEntry",
    "SCORER_REGISTRY",
    "SCORING_METHODS",
    "make_scorer",
    "validate_scoring_kwargs",
]
