"""The composite METADOCK score (paper Equation 1).

Sign convention
---------------
Equation 1 sums interaction *energies* (kcal/mol; lower = better).  The
paper's narrative, however, describes a *score* that "goes from big
negative numbers (e.g. -4.5e+21) to 500 at most" and "drops sharply" on
electrostatic or steric clashes -- exactly the **negated** energy.  We
therefore expose both: :func:`interaction_energy` (physics sign) and
:func:`interaction_score` ``= -energy`` (the scalar METADOCK reports and
the RL reward derives from).  With distances clamped at ``MIN_DISTANCE =
0.05 A``, a fully overlapping atom pair contributes ``~(3.4/0.05)^12 ~
1e22`` -- reproducing the paper's quoted magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule
from repro.scoring import electrostatics as elec
from repro.scoring import hbond as hb
from repro.scoring import lennard_jones as lj
from repro.scoring.pairwise import (
    direction_vectors,
    pairwise_distances,
    pairwise_distances_batch,
)


@dataclass(frozen=True)
class ScoreBreakdown:
    """Per-term energies (kcal/mol, physics sign) and the final score."""

    electrostatic: float
    lennard_jones: float
    hydrogen_bond: float

    @property
    def energy(self) -> float:
        """Total interaction energy (lower = better)."""
        return self.electrostatic + self.lennard_jones + self.hydrogen_bond

    @property
    def score(self) -> float:
        """METADOCK score (higher = better): negated energy."""
        return -self.energy


def interaction_breakdown(
    receptor: Molecule,
    ligand: Molecule,
    *,
    distance_dependent_dielectric: bool = False,
) -> ScoreBreakdown:
    """Full Eq. 1 evaluation with per-term breakdown.

    The H-bond angular directions are taken from the *receptor* side
    topology (donor directions), matching the matrix layout receptor x
    ligand; ligand-side donors are handled by the eligibility mask, which
    is symmetric in donor/acceptor roles.
    """
    d = pairwise_distances(receptor.coords, ligand.coords)
    e_el = elec.electrostatic_energy(
        receptor.charges,
        ligand.charges,
        d,
        distance_dependent=distance_dependent_dielectric,
    )
    e_lj = lj.lennard_jones_energy(
        receptor.sigma, receptor.epsilon, ligand.sigma, ligand.epsilon, d
    )
    mask = hb.eligible_pairs_mask(
        receptor.hbond_donor,
        receptor.hbond_acceptor,
        ligand.hbond_donor,
        ligand.hbond_acceptor,
    )
    rows = mask.any(axis=1)
    if rows.any():
        # Only a small fraction of receptor atoms are donors/acceptors;
        # restricting the angular computation to their rows cuts the
        # H-bond cost by that fraction with identical results.
        dirs = direction_vectors(receptor.coords, receptor.bonds)[rows]
        cos_t, sin_t = hb.hbond_angle_factors(
            receptor.coords[rows], ligand.coords, dirs
        )
        sig_pair, eps_pair = lj.combine_lj(
            receptor.sigma[rows],
            receptor.epsilon[rows],
            ligand.sigma,
            ligand.epsilon,
        )
        e_hb = hb.hbond_energy(
            d[rows], mask[rows], cos_t, sin_t, sig_pair, eps_pair
        )
    else:
        e_hb = 0.0
    return ScoreBreakdown(
        electrostatic=e_el, lennard_jones=e_lj, hydrogen_bond=e_hb
    )


def interaction_energy(receptor: Molecule, ligand: Molecule, **kw) -> float:
    """Total Eq. 1 energy (kcal/mol; lower = better)."""
    return interaction_breakdown(receptor, ligand, **kw).energy


def interaction_score(receptor: Molecule, ligand: Molecule, **kw) -> float:
    """The METADOCK score: negated Eq. 1 energy (higher = better)."""
    return interaction_breakdown(receptor, ligand, **kw).score


def score_pose_batch(
    receptor: Molecule,
    ligand: Molecule,
    coords_batch: np.ndarray,
    *,
    include_hbond: bool = True,
    chunk: int = 16,
) -> np.ndarray:
    """Scores for ``k`` ligand coordinate sets against one receptor.

    ``coords_batch`` has shape (k, m, 3).  Evaluation is chunked so the
    (chunk, n, m) temporaries stay cache-resident; a sweep on an 800-atom
    receptor put the optimum near chunk=16 (larger chunks thrash L2,
    smaller ones pay per-call overhead).  Returns shape (k,) scores
    (higher = better).
    """
    cb = np.asarray(coords_batch, dtype=float)
    if cb.ndim != 3 or cb.shape[1:] != (ligand.n_atoms, 3):
        raise ValueError(
            f"coords_batch must have shape (k, {ligand.n_atoms}, 3)"
        )
    k = cb.shape[0]
    out = np.empty(k)
    mask = hb.eligible_pairs_mask(
        receptor.hbond_donor,
        receptor.hbond_acceptor,
        ligand.hbond_donor,
        ligand.hbond_acceptor,
    )
    rows = mask.any(axis=1)
    use_hb = include_hbond and bool(rows.any())
    if use_hb:
        rec_sub = receptor.coords[rows]
        dirs = direction_vectors(receptor.coords, receptor.bonds)[rows]
        sig_sub, eps_sub = lj.combine_lj(
            receptor.sigma[rows],
            receptor.epsilon[rows],
            ligand.sigma,
            ligand.epsilon,
        )
        mask_sub = mask[rows]
    for start in range(0, k, chunk):
        stop = min(start + chunk, k)
        d = pairwise_distances_batch(receptor.coords, cb[start:stop])
        e = elec.electrostatic_energy_batch(
            receptor.charges, ligand.charges, d
        )
        e += lj.lennard_jones_energy_batch(
            receptor.sigma,
            receptor.epsilon,
            ligand.sigma,
            ligand.epsilon,
            d,
        )
        if use_hb:
            cos_t, sin_t = hb.hbond_angle_factors_batch(
                rec_sub, cb[start:stop], dirs
            )
            # hbond_energy_matrix is elementwise: broadcasting the pair
            # parameters across the (chunk, rows, m) batch is exact.
            corr = hb.hbond_energy_matrix(
                d[:, rows, :], mask_sub[None, :, :], cos_t, sin_t,
                sig_sub[None, :, :], eps_sub[None, :, :],
            )
            e += corr.sum(axis=(1, 2))
        out[start:stop] = -e
    return out
