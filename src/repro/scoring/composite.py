"""The composite METADOCK score (paper Equation 1).

Sign convention
---------------
Equation 1 sums interaction *energies* (kcal/mol; lower = better).  The
paper's narrative, however, describes a *score* that "goes from big
negative numbers (e.g. -4.5e+21) to 500 at most" and "drops sharply" on
electrostatic or steric clashes -- exactly the **negated** energy.  We
therefore expose both: :func:`interaction_energy` (physics sign) and
:func:`interaction_score` ``= -energy`` (the scalar METADOCK reports and
the RL reward derives from).  With distances clamped at ``MIN_DISTANCE =
0.05 A``, a fully overlapping atom pair contributes ``~(3.4/0.05)^12 ~
1e22`` -- reproducing the paper's quoted magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule
from repro.scoring import electrostatics as elec
from repro.scoring import hbond as hb
from repro.scoring import lennard_jones as lj
from repro.scoring.pairwise import direction_vectors, pairwise_distances


@dataclass(frozen=True)
class ScoreBreakdown:
    """Per-term energies (kcal/mol, physics sign) and the final score."""

    electrostatic: float
    lennard_jones: float
    hydrogen_bond: float

    @property
    def energy(self) -> float:
        """Total interaction energy (lower = better)."""
        return self.electrostatic + self.lennard_jones + self.hydrogen_bond

    @property
    def score(self) -> float:
        """METADOCK score (higher = better): negated energy."""
        return -self.energy


@dataclass(frozen=True)
class ScoringTables:
    """Static-topology scoring tables for one (receptor, ligand) pair.

    Everything here depends only on topology — charges, LJ types, H-bond
    roles, receptor geometry — never on the ligand pose, so callers that
    score many poses (``ExactScorer``, the pose-batch path) build the
    tables once and pass them back in.  Results are **bit-identical** to
    the rebuild-every-call path: the cached arrays are the same floats
    the per-call code would recompute.
    """

    mask: np.ndarray  # (n, m) H-bond eligibility
    rows: np.ndarray  # (n,) receptor rows with any eligible pair
    rows_any: bool
    sig_full: np.ndarray  # (n, m) combined LJ sigma
    eps_full: np.ndarray  # (n, m) combined LJ epsilon
    # H-bond row-restricted views (empty when rows_any is False):
    rec_sub: np.ndarray  # (n_hb, 3) receptor coords on eligible rows
    dirs_sub: np.ndarray  # (n_hb, 3) donor directions on eligible rows
    mask_sub: np.ndarray  # (n_hb, m)
    sig_sub: np.ndarray  # (n_hb, m)
    eps_sub: np.ndarray  # (n_hb, m)

    @staticmethod
    def build(receptor: Molecule, ligand: Molecule) -> "ScoringTables":
        mask = hb.eligible_pairs_mask(
            receptor.hbond_donor,
            receptor.hbond_acceptor,
            ligand.hbond_donor,
            ligand.hbond_acceptor,
        )
        rows = mask.any(axis=1)
        rows_any = bool(rows.any())
        sig_full, eps_full = lj.combine_lj(
            receptor.sigma, receptor.epsilon, ligand.sigma, ligand.epsilon
        )
        if rows_any:
            dirs_sub = direction_vectors(receptor.coords, receptor.bonds)[
                rows
            ]
            sig_sub, eps_sub = lj.combine_lj(
                receptor.sigma[rows],
                receptor.epsilon[rows],
                ligand.sigma,
                ligand.epsilon,
            )
            rec_sub = receptor.coords[rows]
            mask_sub = mask[rows]
        else:
            rec_sub = np.empty((0, 3))
            dirs_sub = np.empty((0, 3))
            mask_sub = np.empty((0, ligand.n_atoms), dtype=bool)
            sig_sub = np.empty((0, ligand.n_atoms))
            eps_sub = np.empty((0, ligand.n_atoms))
        return ScoringTables(
            mask=mask,
            rows=rows,
            rows_any=rows_any,
            sig_full=sig_full,
            eps_full=eps_full,
            rec_sub=rec_sub,
            dirs_sub=dirs_sub,
            mask_sub=mask_sub,
            sig_sub=sig_sub,
            eps_sub=eps_sub,
        )


def interaction_breakdown(
    receptor: Molecule,
    ligand: Molecule,
    *,
    distance_dependent_dielectric: bool = False,
    tables: ScoringTables | None = None,
) -> ScoreBreakdown:
    """Full Eq. 1 evaluation with per-term breakdown.

    The H-bond angular directions are taken from the *receptor* side
    topology (donor directions), matching the matrix layout receptor x
    ligand; ligand-side donors are handled by the eligibility mask, which
    is symmetric in donor/acceptor roles.

    ``tables`` optionally supplies the static-topology arrays
    (:meth:`ScoringTables.build`); omitted, they are rebuilt for this
    call with identical results.
    """
    t = tables if tables is not None else ScoringTables.build(
        receptor, ligand
    )
    d = pairwise_distances(receptor.coords, ligand.coords)
    e_el = elec.electrostatic_energy(
        receptor.charges,
        ligand.charges,
        d,
        distance_dependent=distance_dependent_dielectric,
    )
    e_lj = lj.lennard_jones_energy_pre(t.sig_full, t.eps_full, d)
    if t.rows_any:
        # Only a small fraction of receptor atoms are donors/acceptors;
        # restricting the angular computation to their rows cuts the
        # H-bond cost by that fraction with identical results.
        cos_t, sin_t = hb.hbond_angle_factors(
            t.rec_sub, ligand.coords, t.dirs_sub
        )
        e_hb = hb.hbond_energy(
            d[t.rows], t.mask_sub, cos_t, sin_t, t.sig_sub, t.eps_sub
        )
    else:
        e_hb = 0.0
    return ScoreBreakdown(
        electrostatic=e_el, lennard_jones=e_lj, hydrogen_bond=e_hb
    )


def interaction_energy(receptor: Molecule, ligand: Molecule, **kw) -> float:
    """Total Eq. 1 energy (kcal/mol; lower = better)."""
    return interaction_breakdown(receptor, ligand, **kw).energy


def interaction_score(receptor: Molecule, ligand: Molecule, **kw) -> float:
    """The METADOCK score: negated Eq. 1 energy (higher = better)."""
    return interaction_breakdown(receptor, ligand, **kw).score


def score_pose_batch(
    receptor: Molecule,
    ligand: Molecule,
    coords_batch: np.ndarray,
    *,
    include_hbond: bool = True,
    chunk: int = 16,
    tables: ScoringTables | None = None,
) -> np.ndarray:
    """Scores for ``k`` ligand coordinate sets against one receptor.

    ``coords_batch`` has shape (k, m, 3); returns shape (k,) scores
    (higher = better).  The static-topology tables are built (or taken
    from ``tables``) once and each pose then runs through exactly the
    single-pose kernels — the same per-pose GEMM distance matrix and
    term reductions :func:`interaction_breakdown` uses — so every entry
    is **bitwise-equal** to ``interaction_score(receptor,
    ligand.with_coords(coords_batch[i]))`` while the per-call table
    construction (the dominant fixed cost of a singles loop) is
    amortized across the batch.  ``chunk`` is retained for API
    compatibility; evaluation is per pose.
    """
    del chunk  # bitwise-per-pose evaluation needs no chunked temporaries
    cb = np.asarray(coords_batch, dtype=float)
    if cb.ndim != 3 or cb.shape[1:] != (ligand.n_atoms, 3):
        raise ValueError(
            f"coords_batch must have shape (k, {ligand.n_atoms}, 3)"
        )
    k = cb.shape[0]
    out = np.empty(k)
    if k == 0:
        # Empty batch: short-circuit before building scoring tables.
        return out
    t = tables if tables is not None else ScoringTables.build(
        receptor, ligand
    )
    use_hb = include_hbond and t.rows_any
    for i in range(k):
        d = pairwise_distances(receptor.coords, cb[i])
        e = elec.electrostatic_energy(receptor.charges, ligand.charges, d)
        e += lj.lennard_jones_energy_pre(t.sig_full, t.eps_full, d)
        if use_hb:
            cos_t, sin_t = hb.hbond_angle_factors(
                t.rec_sub, cb[i], t.dirs_sub
            )
            e += hb.hbond_energy(
                d[t.rows], t.mask_sub, cos_t, sin_t, t.sig_sub, t.eps_sub
            )
        out[i] = -e
    return out
