"""Command-line interface: ``python -m repro <command>``.

One subcommand per experiment/driver so every paper artefact is
reproducible without writing Python:

- ``table1``        -- print the hyperparameter table (Table 1);
- ``geometry``      -- build + validate the synthetic complex (Figs 1/3);
- ``figure4``       -- train DQN-Docking and print the training curve;
- ``baselines``     -- DQN vs Monte Carlo vs metaheuristics (Section 4);
- ``comm-ablation`` -- RAM vs file engine<->agent channel (limitation 1);
- ``screen``        -- virtual-screen a synthetic ligand library;
- ``blind``         -- blind docking over receptor surface spots;
- ``curriculum``    -- multi-complex vectorized training (sync/async
  backend via ``--backend``, see docs/PARALLELISM.md);
- ``inspect``       -- summarize a telemetry run directory;
- ``resume``        -- continue an interrupted ``--log-dir`` run.

Every experiment subcommand accepts ``--log-dir DIR``: the run then
leaves ``manifest.json`` / ``events.jsonl`` / ``metrics.csv`` behind
(full per-step telemetry for ``figure4``, manifest + result events for
the rest), which ``repro inspect DIR`` renders without re-running
anything.

With ``--log-dir`` the run also gets a checkpointing runtime (see
docs/CHECKPOINTS.md): ``--checkpoint-every N`` snapshots full training
state every N episodes/steps, SIGINT/SIGTERM trigger one final snapshot
plus a manifest sealed with status ``interrupted`` (exit code 130), and
``repro resume DIR`` continues the run from where it stopped.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config import ci_scale_config
from repro.version import __version__


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument(
        "--log-dir",
        default=None,
        help="write telemetry (manifest.json/events.jsonl/metrics.csv) here",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="with --log-dir: snapshot full training state every N "
        "episodes (sequential trainers) or env steps (vector trainers); "
        "0 keeps only completion/shutdown snapshots",
    )


def _add_trainer(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trainer",
        default="sync",
        choices=["sync", "actor-learner"],
        help="training runtime (actor-learner = N actor processes "
        "feeding a shared-memory replay through lock-free rings; see "
        "docs/PARALLELISM.md, 'Actor/learner architecture')",
    )
    p.add_argument(
        "--num-actors",
        type=int,
        default=2,
        metavar="N",
        help="actor processes for --trainer actor-learner",
    )


def _add_scoring_method(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scoring-method",
        default="exact",
        choices=["exact", "cutoff", "grid", "incremental", "field"],
        help="pose-scoring kernel (incremental = Verlet-list scorer, "
        "field = hybrid precomputed-field scorer; see "
        "docs/PERFORMANCE.md, 'Scoring kernels')",
    )


def _open_telemetry(args, command: str, config=None):
    """A TelemetryRun for ``--log-dir`` (None when the flag is absent).

    The manifest's ``extra`` records the full CLI argument vector so
    ``repro resume`` can rebuild the invocation; ``resume`` itself
    threads lineage through the private ``_parent_run_id`` /
    ``_resume_step`` namespace attributes.
    """
    log_dir = getattr(args, "log_dir", None)
    if not log_dir:
        return None
    from repro.telemetry import TelemetryRun

    cli_args = {
        k: v for k, v in vars(args).items() if not k.startswith("_")
    }
    return TelemetryRun(
        log_dir,
        command=command,
        seed=getattr(args, "seed", None),
        config=config,
        parent_run_id=getattr(args, "_parent_run_id", None),
        resume_step=getattr(args, "_resume_step", None),
        extra={"cli_args": cli_args},
    )


def _telemetered(args, command: str, config, work) -> int:
    """Run ``work(telemetry, runtime)`` under an optional telemetry run.

    ``work`` returns ``(exit_code, summary_text)``.  With ``--log-dir``
    set, the manifest brackets the work, a ``result`` event records the
    summary, and a crash finalizes the manifest with status ``failed``
    before re-raising -- so every invocation leaves an inspectable
    record.  ``figure4`` additionally threads per-step telemetry
    through the trainer (see :func:`_cmd_figure4`).

    ``--log-dir`` also attaches the checkpointing runtime: a
    :class:`~repro.runtime.loop.RuntimeContext` rooted in the run dir
    plus a :class:`~repro.runtime.signals.ShutdownGuard` so
    SIGINT/SIGTERM stop the run at a safe boundary.  An interrupted run
    seals its manifest with status ``interrupted`` and exits 130; see
    ``repro resume``.
    """
    telemetry = _open_telemetry(args, command, config)
    if telemetry is None:
        code, _ = work(None, None)
        return code
    from repro.runtime import (
        INTERRUPT_EXIT_CODE,
        RunInterrupted,
        RuntimeContext,
        ShutdownGuard,
    )

    guard = ShutdownGuard()
    runtime = RuntimeContext(
        telemetry.dir,
        checkpoint_every=getattr(args, "checkpoint_every", 0) or 0,
        guard=guard,
        telemetry=telemetry,
    )
    try:
        with guard:
            code, summary = work(telemetry, runtime)
        telemetry.emit("result", ok=code == 0, summary=summary)
    except RunInterrupted as exc:
        telemetry.emit(
            "interrupted",
            phase=exc.phase,
            checkpoint=str(exc.checkpoint_path or ""),
        )
        telemetry.finalize("interrupted")
        print(
            f"[runtime] interrupted during {exc.phase!r}; "
            f"resume with: repro resume {telemetry.dir}",
            file=sys.stderr,
        )
        return INTERRUPT_EXIT_CODE
    except BaseException:
        telemetry.finalize("failed")
        raise
    telemetry.finalize("completed")
    print(f"[telemetry] wrote {telemetry.dir}")
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DQN-Docking reproduction (ICPP 2018)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print the Table 1 hyperparameters")

    p = sub.add_parser("geometry", help="build and report the complex")
    _add_common(p)
    p.add_argument("--receptor-atoms", type=int, default=300)
    p.add_argument("--ligand-atoms", type=int, default=14)

    p = sub.add_parser("figure4", help="train and plot the Figure 4 curve")
    _add_common(p)
    p.add_argument("--episodes", type=int, default=60)
    p.add_argument("--max-steps", type=int, default=60)
    p.add_argument(
        "--variant",
        default="dqn",
        choices=[
            "dqn", "ddqn", "dueling", "dueling-ddqn",
            "distributional", "rainbow",
        ],
    )
    p.add_argument("--learning-rate", type=float, default=0.002)
    p.add_argument(
        "--compact-states",
        action="store_true",
        help="store only the dynamic ligand tail in replay "
        "(float32 hot loop; see docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--observation-mode",
        default="raw",
        choices=["raw", "compact", "descriptor"],
        help="observation codec the env emits (descriptor = "
        "pocket-relative ligand features, ~60x smaller Q input; "
        "see docs/OBSERVATIONS.md)",
    )
    _add_trainer(p)
    _add_scoring_method(p)

    p = sub.add_parser("baselines", help="DQN vs MC vs metaheuristics")
    _add_common(p)
    p.add_argument("--budget", type=int, default=1200)

    p = sub.add_parser("comm-ablation", help="RAM vs file channel timing")
    _add_common(p)
    p.add_argument("--steps", type=int, default=200)

    p = sub.add_parser("screen", help="virtual-screen a ligand library")
    _add_common(p)
    p.add_argument("--ligands", type=int, default=6)
    p.add_argument("--budget", type=int, default=200)
    p.add_argument(
        "--strategy",
        default="scatter",
        choices=["ga", "local", "random", "scatter", "montecarlo", "policy"],
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >=2 fans shards over a pool "
        "(ranking is bitwise identical either way)",
    )
    p.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="ligands per shard (policy mode: the inference batch size)",
    )
    p.add_argument(
        "--top-k", type=int, default=None, help="print only the best K hits"
    )
    p.add_argument(
        "--policy",
        default=None,
        help="trained Q-net checkpoint for --strategy policy "
        "(a run --log-dir, a runtime .npz, or a save_network .npz)",
    )
    p.add_argument(
        "--policy-max-steps",
        type=int,
        default=120,
        help="greedy-rollout step cap per ligand in policy mode",
    )
    _add_scoring_method(p)

    p = sub.add_parser("blind", help="blind docking over surface spots")
    _add_common(p)
    p.add_argument("--spots", type=int, default=12)
    p.add_argument("--budget", type=int, default=200)
    p.add_argument("--workers", type=int, default=None)

    p = sub.add_parser(
        "report", help="run the full suite and emit EXPERIMENTS.md content"
    )
    p.add_argument("--full", action="store_true", help="larger budgets")
    p.add_argument("--output", default=None, help="write to file")

    p = sub.add_parser(
        "reward-ablation", help="compare reward schemes (Section 3 design)"
    )
    _add_common(p)
    p.add_argument("--episodes", type=int, default=25)
    p.add_argument(
        "--schemes",
        nargs="+",
        default=["sign", "clipped", "scaled", "potential"],
        choices=["sign", "clipped", "scaled", "potential"],
    )

    p = sub.add_parser(
        "sweep", help="sweep one config knob (e.g. target_update_steps)"
    )
    _add_common(p)
    p.add_argument("parameter", help="DQNDockingConfig field to sweep")
    p.add_argument(
        "values", nargs="+", help="values (parsed as float/int when numeric)"
    )
    p.add_argument("--episodes", type=int, default=15)

    p = sub.add_parser(
        "curriculum",
        help="multi-complex curriculum over a vector env backend",
    )
    _add_common(p)
    p.add_argument("--complexes", type=int, default=3)
    p.add_argument("--episodes", type=int, default=10)
    p.add_argument("--eval-episodes", type=int, default=2)
    p.add_argument(
        "--backend",
        default="sync",
        choices=["sync", "async", "auto"],
        help="vector-env backend (async = one worker process per env)",
    )
    p.add_argument(
        "--trainer",
        default="sync",
        choices=["sync", "actor-learner"],
        help="curriculum-phase runtime (actor-learner = one actor "
        "process per training complex; --backend then only affects "
        "the single-complex baseline)",
    )
    _add_scoring_method(p)

    p = sub.add_parser(
        "inspect", help="summarize a telemetry run directory"
    )
    p.add_argument("run_dir", help="directory written via --log-dir")

    p = sub.add_parser(
        "resume",
        help="continue an interrupted run from its --log-dir directory",
    )
    p.add_argument("run_dir", help="directory of the interrupted run")
    return parser


def _cmd_table1(_args) -> int:
    from repro.experiments.table1 import render_table1, verify_paper_defaults

    print(render_table1())
    problems = verify_paper_defaults()
    if problems:  # pragma: no cover - defaults are tested to match
        print("\nWARNING: defaults deviate from the paper:")
        for line in problems:
            print("  " + line)
        return 1
    print("\nAll defaults match the published Table 1.")
    return 0


def _cmd_geometry(args) -> int:
    from repro.config import ComplexConfig
    from repro.experiments.geometry import run_geometry_experiment

    cfg = ComplexConfig(
        receptor_atoms=args.receptor_atoms,
        ligand_atoms=args.ligand_atoms,
        receptor_radius=max(9.0, args.receptor_atoms ** (1 / 3) * 1.65),
        pocket_depth=4.0,
        initial_offset=8.0,
        rotatable_bonds=2,
        seed=args.seed + 2018,
    )

    def work(_telemetry, _runtime):
        report = run_geometry_experiment(cfg)
        text = report.summary()
        print(text)
        ok = report.pocket_is_optimum and report.overlap_is_catastrophic
        return (0 if ok else 1), text

    return _telemetered(args, "geometry", cfg, work)


def _cmd_figure4(args) -> int:
    from repro.experiments.figure4 import run_figure4_experiment

    try:
        cfg = ci_scale_config(
            episodes=args.episodes,
            seed=args.seed,
            max_steps=args.max_steps,
            learning_rate=args.learning_rate,
            variant=args.variant,
            compact_states=args.compact_states,
            # getattr: manifests from before the flags existed resume fine.
            scoring_method=getattr(args, "scoring_method", "exact"),
            observation_mode=getattr(args, "observation_mode", "raw"),
            trainer=getattr(args, "trainer", "sync"),
            num_actors=getattr(args, "num_actors", 2),
        )
    except ValueError as exc:
        print(f"figure4: {exc}", file=sys.stderr)
        return 2

    def work(telemetry, runtime):
        result = run_figure4_experiment(
            cfg, telemetry=telemetry, runtime=runtime
        )
        text = result.summary()
        print(text)
        return 0, text

    return _telemetered(args, "figure4", cfg, work)


def _cmd_baselines(args) -> int:
    from repro.experiments.baselines import run_baseline_comparison

    cfg = ci_scale_config(episodes=40, seed=args.seed, learning_rate=0.002)

    def work(_telemetry, runtime):
        comp = run_baseline_comparison(
            cfg, budget=args.budget, runtime=runtime
        )
        text = comp.summary()
        print(text)
        return 0, text

    return _telemetered(args, "baselines", cfg, work)


def _cmd_comm_ablation(args) -> int:
    from repro.experiments.ablations import run_comm_ablation

    cfg = ci_scale_config(episodes=4, seed=args.seed)

    def work(_telemetry, _runtime):
        text = run_comm_ablation(cfg, steps=args.steps).summary()
        print(text)
        return 0, text

    return _telemetered(args, "comm-ablation", cfg, work)


def _cmd_screen(args) -> int:
    from repro.chem.builders import build_complex
    from repro.metadock.library import generate_library
    from repro.screening import ScreeningConfig, run_screening

    cfg = ci_scale_config(episodes=1, seed=args.seed).complex
    try:
        # getattr: manifests from before these flags existed resume fine.
        screen_cfg = ScreeningConfig(
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            workers=getattr(args, "workers", 1) or 1,
            shard_size=getattr(args, "shard_size", 4) or 4,
            top_k=getattr(args, "top_k", None),
            scoring_method=getattr(args, "scoring_method", "exact"),
            policy_path=getattr(args, "policy", None),
            policy_max_steps=getattr(args, "policy_max_steps", 120) or 120,
        )
    except ValueError as exc:
        print(f"repro screen: {exc}", file=sys.stderr)
        return 2

    def work(telemetry, runtime):
        built = build_complex(cfg)
        library_kwargs = {}
        if screen_cfg.strategy == "policy":
            # The Q-net is sized for the training complex: cap library
            # compounds at the base ligand size so every state fits the
            # checkpoint's input dim (smaller ligands zero-pad).
            library_kwargs["max_atoms"] = cfg.ligand_atoms
        library = generate_library(
            cfg, args.ligands, seed=args.seed, **library_kwargs
        )
        result = run_screening(
            built,
            library,
            screen_cfg,
            telemetry=telemetry,
            runtime=runtime,
        )
        text = result.summary()
        print(text)
        return 0, text

    return _telemetered(args, "screen", cfg, work)


def _cmd_blind(args) -> int:
    from repro.chem.builders import build_complex
    from repro.metadock.blind import blind_dock

    cfg = ci_scale_config(episodes=1, seed=args.seed).complex

    def work(_telemetry, _runtime):
        built = build_complex(cfg)
        result = blind_dock(
            built,
            n_spots=args.spots,
            budget_per_spot=args.budget,
            seed=args.seed,
            n_workers=args.workers,
        )
        text = (
            result.summary()
            + f"\n\nbest site is {result.best.pocket_distance:.1f} A from "
            f"the true pocket center"
        )
        print(text)
        return 0, text

    return _telemetered(args, "blind", cfg, work)


def _cmd_curriculum(args) -> int:
    from repro.experiments.curriculum import run_curriculum_experiment

    cfg = ci_scale_config(
        episodes=args.episodes,
        seed=args.seed,
        learning_rate=0.002,
        scoring_method=getattr(args, "scoring_method", "exact"),
        trainer=getattr(args, "trainer", "sync"),
        # One actor per training complex; keeps config validation happy
        # and makes the broadcast alignment explicit in the manifest.
        num_actors=max(1, args.complexes),
    )

    def work(telemetry, runtime):
        result = run_curriculum_experiment(
            cfg,
            n_train_complexes=args.complexes,
            eval_episodes=args.eval_episodes,
            backend=args.backend,
            telemetry=telemetry,
            runtime=runtime,
        )
        text = result.summary()
        print(text)
        return 0, text

    return _telemetered(args, "curriculum", cfg, work)


def _cmd_reward_ablation(args) -> int:
    from repro.experiments.reward_ablation import run_reward_ablation

    cfg = ci_scale_config(
        episodes=args.episodes, seed=args.seed, learning_rate=0.002
    )

    def work(_telemetry, runtime):
        result = run_reward_ablation(
            cfg, schemes=tuple(args.schemes), runtime=runtime
        )
        text = result.summary()
        print(text)
        return 0, text

    return _telemetered(args, "reward-ablation", cfg, work)


def _parse_value(text: str):
    """CLI sweep values: int if possible, else float, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import run_sweep

    cfg = ci_scale_config(
        episodes=args.episodes, seed=args.seed, learning_rate=0.002
    )
    values = [_parse_value(v) for v in args.values]

    def work(_telemetry, runtime):
        result = run_sweep(cfg, args.parameter, values, runtime=runtime)
        text = (
            result.summary()
            + f"\n\nbest setting: {args.parameter} = {result.best_setting()}"
        )
        print(text)
        return 0, text

    return _telemetered(args, "sweep", cfg, work)


def _cmd_report(args) -> int:
    from repro.experiments.reporting import generate_report

    text = generate_report(quick=not args.full)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_inspect(args) -> int:
    from repro.telemetry.summary import render_summary

    try:
        print(render_summary(args.run_dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_resume(args) -> int:
    """Re-dispatch an interrupted run from its recorded CLI arguments.

    The run directory's manifest stores the original argument vector
    (``extra.cli_args``); we rebuild the namespace, point ``--log-dir``
    back at the same directory (checkpoints and result memos live
    there), and re-run the original command.  The new manifest records
    lineage: ``parent_run_id`` is the interrupted run's id and
    ``resume_step`` the global step of the newest checkpoint.
    """
    import json
    from pathlib import Path

    from repro.runtime import (
        CHECKPOINT_DIR_NAME,
        CheckpointReadError,
        latest_checkpoint,
        read_meta,
    )
    from repro.telemetry.manifest import MANIFEST_NAME

    run_dir = Path(args.run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    if not manifest_path.exists():
        print(f"error: no {MANIFEST_NAME} under {run_dir}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text())
    cli_args = (manifest.get("extra") or {}).get("cli_args") or {}
    command = cli_args.get("command")
    if command not in _COMMANDS or command == "resume":
        print(
            f"error: manifest records no resumable command "
            f"(got {command!r}); was the run started via the repro CLI "
            "with --log-dir?",
            file=sys.stderr,
        )
        return 1
    resume_step = None
    latest = latest_checkpoint(run_dir / CHECKPOINT_DIR_NAME)
    if latest is not None:
        try:
            resume_step = read_meta(latest).get("global_step")
        except CheckpointReadError as exc:
            print(f"warning: {exc}", file=sys.stderr)
    ns = argparse.Namespace(**cli_args)
    ns.log_dir = str(run_dir)
    ns._parent_run_id = manifest.get("run_id")
    ns._resume_step = resume_step
    at = f" (global step {resume_step})" if resume_step is not None else ""
    print(f"[runtime] resuming {command!r} in {run_dir}{at}")
    return _COMMANDS[command](ns)


_COMMANDS = {
    "table1": _cmd_table1,
    "geometry": _cmd_geometry,
    "figure4": _cmd_figure4,
    "baselines": _cmd_baselines,
    "comm-ablation": _cmd_comm_ablation,
    "screen": _cmd_screen,
    "blind": _cmd_blind,
    "curriculum": _cmd_curriculum,
    "report": _cmd_report,
    "reward-ablation": _cmd_reward_ablation,
    "sweep": _cmd_sweep,
    "inspect": _cmd_inspect,
    "resume": _cmd_resume,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
