"""Post-hoc analysis of training runs and docking trajectories."""

from repro.analysis.trajectories import (
    action_histogram,
    termination_breakdown,
    visitation_heatmap,
    TrajectoryReport,
    analyze_recorder,
)

__all__ = [
    "action_histogram",
    "termination_breakdown",
    "visitation_heatmap",
    "TrajectoryReport",
    "analyze_recorder",
]
