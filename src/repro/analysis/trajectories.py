"""Trajectory analysis: what the agent actually does in the pocket.

Consumes :class:`repro.env.wrappers.EpisodeRecorder` traces and
:class:`repro.rl.trainer.TrainingHistory` records to answer the
questions the paper's discussion raises qualitatively: does the ligand
loiter inside the receptor?  Which actions dominate?  How do episodes
end as training progresses?
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.utils.tables import render_table


def action_histogram(
    episodes: list[list[dict]], n_actions: int
) -> np.ndarray:
    """Normalized action frequencies over recorded episodes."""
    if n_actions < 1:
        raise ValueError("n_actions must be >= 1")
    counts = np.zeros(n_actions)
    for ep in episodes:
        for step in ep:
            a = int(step["action"])
            if not 0 <= a < n_actions:
                raise ValueError(f"action {a} outside 0..{n_actions - 1}")
            counts[a] += 1
    total = counts.sum()
    return counts / total if total else counts


def termination_breakdown(history) -> dict[str, int]:
    """Episode-termination reasons -> counts, from a TrainingHistory."""
    return dict(Counter(e.termination for e in history.episodes))


def visitation_heatmap(
    episodes: list[list[dict]],
    *,
    bins: int = 12,
) -> tuple[np.ndarray, tuple[float, float]]:
    """Histogram of visited receptor-ligand COM distances over time.

    Returns (heatmap, (d_min, d_max)) where heatmap[i, j] counts visits
    in distance-bin i during progress-decile j -- a compact picture of
    whether the agent spends training near the surface (useful) or
    drifting at the escape radius.
    """
    samples: list[tuple[float, float]] = []  # (progress, distance)
    for ep in episodes:
        n = len(ep)
        for k, step in enumerate(ep):
            d = step.get("com_distance")
            if d is None or not np.isfinite(d):
                continue
            samples.append((k / max(1, n - 1), float(d)))
    if not samples:
        return np.zeros((bins, 10)), (0.0, 0.0)
    arr = np.asarray(samples)
    d_min, d_max = float(arr[:, 1].min()), float(arr[:, 1].max())
    span = max(d_max - d_min, 1e-9)
    d_bin = np.minimum(
        ((arr[:, 1] - d_min) / span * bins).astype(int), bins - 1
    )
    p_bin = np.minimum((arr[:, 0] * 10).astype(int), 9)
    heat = np.zeros((bins, 10))
    np.add.at(heat, (d_bin, p_bin), 1.0)
    return heat, (d_min, d_max)


@dataclass
class TrajectoryReport:
    """Aggregated trajectory diagnostics."""

    action_freq: np.ndarray
    action_labels: list[str]
    terminations: dict[str, int]
    heatmap: np.ndarray
    distance_range: tuple[float, float]
    mean_episode_length: float

    def summary(self) -> str:
        """Readable multi-part report."""
        rows = [
            (label, f"{100 * freq:.1f}%")
            for label, freq in zip(self.action_labels, self.action_freq)
        ]
        parts = [
            render_table(
                ("action", "frequency"),
                rows,
                title="Action usage",
                align=("l", "r"),
            ),
            "",
            "Terminations: "
            + ", ".join(
                f"{k}: {v}" for k, v in sorted(self.terminations.items())
            ),
            f"Mean episode length: {self.mean_episode_length:.1f} steps",
        ]
        return "\n".join(parts)


def analyze_recorder(
    recorder,
    history,
    action_labels: list[str] | None = None,
) -> TrajectoryReport:
    """Build a :class:`TrajectoryReport` from a recorder + history pair."""
    episodes = list(recorder.episodes)
    if recorder._current:
        episodes.append(list(recorder._current))
    n_actions = recorder.n_actions
    labels = action_labels or [f"a{k}" for k in range(n_actions)]
    if len(labels) != n_actions:
        raise ValueError("label count must match the action space")
    heat, rng = visitation_heatmap(episodes)
    lengths = [len(ep) for ep in episodes] or [0]
    return TrajectoryReport(
        action_freq=action_histogram(episodes, n_actions),
        action_labels=labels,
        terminations=termination_breakdown(history),
        heatmap=heat,
        distance_range=rng,
        mean_episode_length=float(np.mean(lengths)),
    )
