"""Rigid-body transforms: rotation matrices, quaternions, rigid moves.

METADOCK explores translational and rotational degrees of freedom of the
ligand (paper Section 2.1).  The engine composes per-step rotations about
the ligand's center of mass, so rotations must compose exactly (no drift);
we keep orientation state as a unit quaternion and convert to a matrix
only when moving coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator

_AXES = {"x": 0, "y": 1, "z": 2}


def axis_angle_matrix(axis, angle_rad: float) -> np.ndarray:
    """Rotation matrix for ``angle_rad`` about ``axis`` (Rodrigues).

    ``axis`` is a 3-vector (normalized internally) or one of "x"/"y"/"z".
    """
    if isinstance(axis, str):
        v = np.zeros(3)
        try:
            v[_AXES[axis.lower()]] = 1.0
        except KeyError:
            raise ValueError(f"unknown axis name {axis!r}") from None
        axis = v
    a = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(a)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    a = a / norm
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    k = np.array(
        [[0, -a[2], a[1]], [a[2], 0, -a[0]], [-a[1], a[0], 0]]
    )
    return np.eye(3) + s * k + (1 - c) * (k @ k)


def rotation_matrix(rx: float, ry: float, rz: float) -> np.ndarray:
    """Composite rotation Rz @ Ry @ Rx from Euler angles in radians."""
    return (
        axis_angle_matrix("z", rz)
        @ axis_angle_matrix("y", ry)
        @ axis_angle_matrix("x", rx)
    )


@dataclass(frozen=True)
class Quaternion:
    """Unit quaternion (w, x, y, z) representing a rotation.

    Immutable; operations return new instances.  Construction does not
    normalize -- use :meth:`normalized` or the factory methods, which do.
    """

    w: float
    x: float
    y: float
    z: float

    # -- factories --------------------------------------------------------
    @staticmethod
    def identity() -> "Quaternion":
        """The no-rotation quaternion."""
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis, angle_rad: float) -> "Quaternion":
        """Quaternion rotating by ``angle_rad`` about ``axis``."""
        if isinstance(axis, str):
            v = np.zeros(3)
            try:
                v[_AXES[axis.lower()]] = 1.0
            except KeyError:
                raise ValueError(f"unknown axis name {axis!r}") from None
            axis = v
        a = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(a)
        if norm == 0:
            raise ValueError("rotation axis must be non-zero")
        a = a / norm
        half = angle_rad / 2.0
        s = math.sin(half)
        return Quaternion(math.cos(half), a[0] * s, a[1] * s, a[2] * s)

    @staticmethod
    def from_array(arr) -> "Quaternion":
        """Build from a length-4 (w, x, y, z) array, normalizing."""
        w, x, y, z = (float(v) for v in np.asarray(arr, dtype=float))
        return Quaternion(w, x, y, z).normalized()

    @staticmethod
    def random(rng: SeedLike = None) -> "Quaternion":
        """Uniform random rotation (Shoemake's subgroup algorithm)."""
        gen = as_generator(rng)
        u1, u2, u3 = gen.uniform(size=3)
        a, b = math.sqrt(1 - u1), math.sqrt(u1)
        return Quaternion(
            a * math.sin(2 * math.pi * u2),
            a * math.cos(2 * math.pi * u2),
            b * math.sin(2 * math.pi * u3),
            b * math.cos(2 * math.pi * u3),
        )

    # -- algebra -----------------------------------------------------------
    def normalized(self) -> "Quaternion":
        """Rescale to unit norm (raises on the zero quaternion)."""
        n = math.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)
        if n == 0:
            raise ValueError("cannot normalize zero quaternion")
        return Quaternion(self.w / n, self.x / n, self.y / n, self.z / n)

    def conjugate(self) -> "Quaternion":
        """Inverse rotation (for unit quaternions)."""
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        """Hamilton product: ``self * other`` applies ``other`` first."""
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def norm(self) -> float:
        """Euclidean norm of the 4-vector."""
        return math.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)

    def to_matrix(self) -> np.ndarray:
        """3x3 rotation matrix of the (normalized) quaternion."""
        q = self.normalized()
        w, x, y, z = q.w, q.x, q.y, q.z
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
                [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
                [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
            ]
        )

    def rotate(self, points: np.ndarray) -> np.ndarray:
        """Rotate an ``(n, 3)`` point array (or single 3-vector)."""
        pts = np.asarray(points, dtype=float)
        return pts @ self.to_matrix().T

    def to_array(self) -> np.ndarray:
        """(w, x, y, z) as a length-4 array."""
        return np.array([self.w, self.x, self.y, self.z])

    def angle(self) -> float:
        """Rotation angle in radians, in [0, pi]."""
        q = self.normalized()
        return 2.0 * math.acos(max(-1.0, min(1.0, abs(q.w))))

    def approx_equal(self, other: "Quaternion", tol: float = 1e-9) -> bool:
        """Equality as *rotations* (q and -q are the same rotation)."""
        d = abs(
            self.w * other.w + self.x * other.x
            + self.y * other.y + self.z * other.z
        )
        return abs(d - 1.0) <= tol


def random_rotation(rng: SeedLike = None) -> np.ndarray:
    """Uniformly random 3x3 rotation matrix."""
    return Quaternion.random(rng).to_matrix()


def rigid_transform(
    points: np.ndarray,
    rotation: np.ndarray | Quaternion | None = None,
    translation: np.ndarray | None = None,
    center: np.ndarray | None = None,
) -> np.ndarray:
    """Apply rotation about ``center`` followed by ``translation``.

    ``center`` defaults to the centroid of ``points`` -- the paper rotates
    the ligand about its own center of mass, so a rotation action never
    moves the center.
    """
    pts = np.asarray(points, dtype=float)
    out = pts
    if rotation is not None:
        mat = rotation.to_matrix() if isinstance(rotation, Quaternion) \
            else np.asarray(rotation, dtype=float)
        if mat.shape != (3, 3):
            raise ValueError("rotation must be a 3x3 matrix or Quaternion")
        c = pts.mean(axis=0) if center is None else np.asarray(center, float)
        out = (pts - c) @ mat.T + c
    if translation is not None:
        out = out + np.asarray(translation, dtype=float)
    return out


def kabsch_rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Minimum RMSD between point sets after optimal superposition.

    Used to measure how close a found pose is to the crystallographic one
    (the paper's success criterion for "discovering the solution").
    """
    p = np.asarray(a, dtype=float)
    q = np.asarray(b, dtype=float)
    if p.shape != q.shape or p.ndim != 2 or p.shape[1] != 3:
        raise ValueError("point sets must share shape (n, 3)")
    pc = p - p.mean(axis=0)
    qc = q - q.mean(axis=0)
    h = pc.T @ qc
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    rot = vt.T @ np.diag([1.0, 1.0, d]) @ u.T
    diff = pc @ rot.T - qc
    return float(np.sqrt((diff**2).sum() / p.shape[0]))


def rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Plain coordinate RMSD without superposition (pose-space distance)."""
    p = np.asarray(a, dtype=float)
    q = np.asarray(b, dtype=float)
    if p.shape != q.shape:
        raise ValueError("point sets must share shape")
    return float(np.sqrt(((p - q) ** 2).sum(axis=-1).mean()))
