"""Molecular descriptors for library characterization.

Virtual-screening pipelines filter and report compounds by cheap
physicochemical descriptors (the ZINC paper's "chemically diverse"
claim is made in these terms).  All descriptors here derive from the
information a :class:`~repro.chem.molecule.Molecule` carries -- no
external cheminformatics toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.topology import rotatable_bonds


@dataclass(frozen=True)
class Descriptors:
    """Lipinski-flavoured descriptor vector."""

    n_atoms: int
    n_heavy_atoms: int
    molecular_weight: float
    net_charge: float
    n_rotatable_bonds: int
    n_hbond_donors: int
    n_hbond_acceptors: int
    radius_of_gyration: float
    max_extent: float

    def lipinski_violations(self) -> int:
        """Count of rule-of-five violations (adapted to available data).

        Checks: MW <= 500, donors <= 5, acceptors <= 10.  (LogP is not
        derivable without fragment contributions, so the classic fourth
        rule is omitted -- documented deviation.)
        """
        violations = 0
        if self.molecular_weight > 500.0:
            violations += 1
        if self.n_hbond_donors > 5:
            violations += 1
        if self.n_hbond_acceptors > 10:
            violations += 1
        return violations

    def as_vector(self) -> np.ndarray:
        """Numeric descriptor vector (for similarity/diversity math)."""
        return np.array(
            [
                self.n_atoms,
                self.n_heavy_atoms,
                self.molecular_weight,
                self.net_charge,
                self.n_rotatable_bonds,
                self.n_hbond_donors,
                self.n_hbond_acceptors,
                self.radius_of_gyration,
                self.max_extent,
            ]
        )


def compute_descriptors(mol: Molecule) -> Descriptors:
    """Descriptor vector of one molecule."""
    heavy = [s != "H" for s in mol.symbols]
    rb = rotatable_bonds(mol.symbols, mol.coords, mol.bonds)
    centered = mol.coords - mol.centroid()
    extent = (
        float(np.linalg.norm(centered, axis=1).max()) if mol.n_atoms else 0.0
    )
    return Descriptors(
        n_atoms=mol.n_atoms,
        n_heavy_atoms=int(sum(heavy)),
        molecular_weight=float(mol.masses.sum()),
        net_charge=float(mol.charges.sum()),
        n_rotatable_bonds=len(rb),
        n_hbond_donors=int(mol.hbond_donor.sum()),
        n_hbond_acceptors=int(mol.hbond_acceptor.sum()),
        radius_of_gyration=mol.radius_of_gyration(),
        max_extent=extent,
    )


#: Pocket-frame global block: ligand COM offset from the pocket center
#: (3), its norm (1), and the ligand-receptor COM distance (1).
N_POCKET_GLOBALS = 5

#: Length of :meth:`Descriptors.as_vector`.
N_MOLECULE_DESCRIPTORS = 9


def pocket_feature_dim(n_atoms: int, n_bonds: int) -> int:
    """Length of the pocket-relative feature vector for one ligand.

    Pocket-frame atom coordinates (3 per atom) + bond vectors (3 per
    bond) + the global block + the molecular-descriptor vector.  At the
    paper's 2BSM scale (45 atoms, 44 bonds) this is 281 -- a ~60x
    reduction of the 16,599-dim raw state.
    """
    return (
        3 * int(n_atoms)
        + 3 * int(n_bonds)
        + N_POCKET_GLOBALS
        + N_MOLECULE_DESCRIPTORS
    )


def encode_pocket_features(
    coords: np.ndarray,
    bonds: np.ndarray,
    masses: np.ndarray,
    total_mass: float,
    pocket_center: np.ndarray,
    receptor_com: np.ndarray,
    *,
    out: np.ndarray,
) -> np.ndarray:
    """Write one pose's pocket-relative features into ``out``.

    The dynamic prefix of the ``descriptor`` observation mode (see
    :mod:`repro.env.observation`): atom coordinates relative to the
    pocket center, bond vectors, then the global block.  The trailing
    :data:`N_MOLECULE_DESCRIPTORS` entries of ``out`` (the constant
    per-ligand descriptor vector) are left untouched -- the caller
    fills them once.
    """
    from repro.chem.topology import bond_vector_state

    m = coords.shape[0]
    n = 3 * m
    out[:n] = (coords - pocket_center).reshape(-1)
    bv = bond_vector_state(coords, bonds)
    k = n + bv.size
    out[n:k] = bv
    com = masses @ coords / total_mass
    offset = com - pocket_center
    out[k : k + 3] = offset
    out[k + 3] = np.sqrt(offset @ offset)
    d = com - receptor_com
    out[k + 4] = np.sqrt(d @ d)
    return out


def library_diversity(mols: list[Molecule]) -> float:
    """Mean pairwise z-scored descriptor distance across a library.

    0 for libraries of identical compounds; grows with chemical spread.
    Descriptors are standardized per dimension so no single unit
    dominates.
    """
    if len(mols) < 2:
        return 0.0
    vecs = np.stack([compute_descriptors(m).as_vector() for m in mols])
    std = vecs.std(axis=0)
    std[std == 0] = 1.0
    z = (vecs - vecs.mean(axis=0)) / std
    total, count = 0.0, 0
    for i in range(len(mols)):
        for j in range(i + 1, len(mols)):
            total += float(np.linalg.norm(z[i] - z[j]))
            count += 1
    return total / count
