"""XYZ file format support (simple coordinate exchange).

XYZ carries only element symbols and coordinates; bonds and charges are
re-derived on read via :mod:`repro.chem.topology` and
:mod:`repro.chem.forcefield`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.chem.forcefield import assign_parameters
from repro.chem.molecule import Molecule
from repro.chem.topology import bonds_from_distance

PathLike = Union[str, Path]


def read_xyz(
    source: Union[PathLike, TextIO],
    *,
    perceive_bonds: bool = True,
    assign: bool = True,
) -> Molecule:
    """Read a single-frame XYZ file."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text()
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty XYZ input")
    try:
        n = int(lines[0].split()[0])
    except (ValueError, IndexError) as exc:
        raise ValueError("first XYZ line must be the atom count") from exc
    if len(lines) < n + 2:
        raise ValueError(f"expected {n} atom lines, file has {len(lines) - 2}")
    name = lines[1].strip()
    symbols: list[str] = []
    coords = np.empty((n, 3), dtype=float)
    for k in range(n):
        fields = lines[2 + k].split()
        if len(fields) < 4:
            raise ValueError(f"malformed XYZ atom line: {lines[2 + k]!r}")
        symbols.append(fields[0].upper())
        coords[k] = [float(fields[1]), float(fields[2]), float(fields[3])]
    bonds = (
        bonds_from_distance(symbols, coords)
        if perceive_bonds
        else np.empty((0, 2), dtype=np.int64)
    )
    mol = Molecule.from_symbols(symbols, coords, bonds=bonds, name=name)
    return assign_parameters(mol) if assign else mol


def write_xyz(mol: Molecule, target: Union[PathLike, TextIO]) -> None:
    """Write a Molecule to XYZ."""
    buf = io.StringIO()
    buf.write(f"{mol.n_atoms}\n{mol.name}\n")
    for sym, (x, y, z) in zip(mol.symbols, mol.coords):
        buf.write(f"{sym:<2} {x:15.8f} {y:15.8f} {z:15.8f}\n")
    text = buf.getvalue()
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text)


def to_xyz_string(mol: Molecule) -> str:
    """Render to an XYZ-format string."""
    buf = io.StringIO()
    write_xyz(mol, buf)
    return buf.getvalue()
