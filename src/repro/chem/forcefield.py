"""Force-field parameter assignment (MMFF94-flavoured).

The scoring function of Eq. 1 needs, per atom: a partial charge, LJ
``sigma``/``epsilon`` (Halgren's MMFF94 vdW parameterization is the
paper's citation [16]) and hydrogen-bond donor/acceptor roles (Fabiola et
al. [10]).  For structures read from plain PDB/XYZ files -- which carry no
charges -- this module assigns parameters from element identity plus a
bond-topology-aware charge model.
"""

from __future__ import annotations

import numpy as np

from repro.chem.elements import element
from repro.chem.molecule import Molecule
from repro.chem.topology import adjacency


#: Electronegativity (Pauling) used by the charge-equilibration model.
_ELECTRONEGATIVITY = {
    "H": 2.20, "C": 2.55, "N": 3.04, "O": 3.44, "F": 3.98,
    "P": 2.19, "S": 2.58, "CL": 3.16, "BR": 2.96, "I": 2.66,
    "FE": 1.83, "ZN": 1.65,
}


def assign_parameters(
    mol: Molecule,
    *,
    charge_model: str = "electronegativity",
    total_charge: float = 0.0,
) -> Molecule:
    """Return a copy of ``mol`` with charges and LJ parameters assigned.

    ``charge_model``:

    - ``"typical"`` -- per-element typical charges from the table;
    - ``"electronegativity"`` -- a one-pass bond-increment model: each bond
      shifts charge from the less to the more electronegative partner,
      then the total is normalized to ``total_charge``.  This produces
      chemically sensible alternating charges (e.g. carbonyl O negative,
      its C positive) sufficient for the electrostatic term's landscape.
    """
    out = mol.copy()
    n = out.n_atoms
    elems = [element(s) for s in out.symbols]
    out.sigma = np.array([e.sigma for e in elems])
    out.epsilon = np.array([e.epsilon for e in elems])
    out.hbond_donor = np.array([e.hbond_donor for e in elems])
    out.hbond_acceptor = np.array([e.hbond_acceptor for e in elems])

    if charge_model == "typical":
        q = np.array([e.typical_charge for e in elems])
    elif charge_model == "electronegativity":
        q = _bond_increment_charges(out)
    else:
        raise ValueError(f"unknown charge model {charge_model!r}")

    # Normalize to the requested net charge without changing the pattern.
    q = q + (total_charge - q.sum()) / max(n, 1)
    out.charges = q
    return out


def _bond_increment_charges(mol: Molecule, increment: float = 0.16) -> np.ndarray:
    """Bond-increment charges: per bond, shift ``increment * dEN`` charge."""
    n = mol.n_atoms
    q = np.zeros(n)
    en = np.array(
        [_ELECTRONEGATIVITY.get(s, 2.5) for s in mol.symbols]
    )
    for i, j in mol.bonds:
        # Electron density flows toward the more electronegative atom,
        # making it (more) negative and its partner (more) positive.
        delta = increment * (en[j] - en[i])
        q[i] += delta
        q[j] -= delta
    return q


def refine_hbond_roles(mol: Molecule) -> Molecule:
    """Restrict donor flags to heteroatoms that actually bear a hydrogen.

    The element table marks N/O/S as potential donors; with explicit
    hydrogens present we can check for an attached H, which sharpens the
    H-bond term (a donor with no H cannot donate).
    """
    out = mol.copy()
    if out.n_bonds == 0:
        return out
    adj = adjacency(out.n_atoms, out.bonds)
    has_h = np.array(
        [
            any(out.symbols[v] == "H" for v in adj[i])
            for i in range(out.n_atoms)
        ]
    )
    out.hbond_donor = out.hbond_donor & has_h
    return out


def formal_charge_sites(
    mol: Molecule, threshold: float = 0.35
) -> np.ndarray:
    """Indices of atoms whose assigned partial charge exceeds ``threshold``.

    Used by the builders to verify the synthetic pocket carries the
    charged contacts that generate the paper's "electrostatic repulsion"
    failure mode (two positives approaching).
    """
    return np.nonzero(np.abs(mol.charges) >= threshold)[0]
