"""Bond topology: distance-based bond perception, components, rotatable bonds.

The paper's state vector includes "the position of the atoms of the ligand
and receptor and their respective bonds", and the flexible-ligand extension
(Section 5) needs the ligand's rotatable bonds (2BSM's ligand "can fold in
6 bonds").  This module derives all of that from geometry.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.chem.elements import covalent_radii


def bonds_from_distance(
    symbols,
    coords: np.ndarray,
    tolerance: float = 0.45,
    max_coordination: int | None = None,
) -> np.ndarray:
    """Perceive bonds: i-j bonded iff ``d_ij <= r_i + r_j + tolerance``.

    Vectorized over all pairs.  ``max_coordination`` optionally drops the
    longest bonds of over-coordinated atoms (useful for dense synthetic
    receptors where the distance criterion alone over-connects).
    Returns an ``(m, 2)`` int64 array with ``i < j``.
    """
    pts = np.asarray(coords, dtype=float)
    n = pts.shape[0]
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    radii = covalent_radii(symbols)
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))
    limit = radii[:, None] + radii[None, :] + tolerance
    mask = np.triu(dist <= limit, k=1)
    ii, jj = np.nonzero(mask)
    bonds = np.stack([ii, jj], axis=1).astype(np.int64)
    if max_coordination is not None and bonds.size:
        bonds = _prune_coordination(bonds, dist, n, max_coordination)
    return bonds


def _prune_coordination(
    bonds: np.ndarray, dist: np.ndarray, n: int, max_coord: int
) -> np.ndarray:
    """Greedily keep shortest bonds until no atom exceeds ``max_coord``."""
    lengths = dist[bonds[:, 0], bonds[:, 1]]
    order = np.argsort(lengths)
    degree = np.zeros(n, dtype=np.int64)
    keep = []
    for k in order:
        i, j = bonds[k]
        if degree[i] < max_coord and degree[j] < max_coord:
            keep.append(k)
            degree[i] += 1
            degree[j] += 1
    keep_idx = np.sort(np.asarray(keep, dtype=np.int64))
    return bonds[keep_idx]


def adjacency(n_atoms: int, bonds: np.ndarray) -> list[list[int]]:
    """Adjacency lists from a bond array."""
    adj: list[list[int]] = [[] for _ in range(n_atoms)]
    for i, j in np.asarray(bonds, dtype=np.int64).reshape(-1, 2):
        adj[int(i)].append(int(j))
        adj[int(j)].append(int(i))
    return adj


def connected_components(n_atoms: int, bonds: np.ndarray) -> list[list[int]]:
    """Connected components of the bond graph (BFS), sorted by first atom."""
    adj = adjacency(n_atoms, bonds)
    seen = np.zeros(n_atoms, dtype=bool)
    comps: list[list[int]] = []
    for start in range(n_atoms):
        if seen[start]:
            continue
        comp = []
        q = deque([start])
        seen[start] = True
        while q:
            u = q.popleft()
            comp.append(u)
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    q.append(v)
        comps.append(sorted(comp))
    return comps


def ring_bonds(n_atoms: int, bonds: np.ndarray) -> set[tuple[int, int]]:
    """Bonds that belong to at least one cycle.

    A bond is a ring bond iff removing it leaves its endpoints connected.
    Computed via bridge-finding (iterative Tarjan lowlink): every non-bridge
    edge lies on a cycle.
    """
    bonds = np.asarray(bonds, dtype=np.int64).reshape(-1, 2)
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n_atoms)]
    for eid, (i, j) in enumerate(bonds):
        adj[int(i)].append((int(j), eid))
        adj[int(j)].append((int(i), eid))
    visited = [False] * n_atoms
    disc = [0] * n_atoms
    low = [0] * n_atoms
    bridge = [False] * len(bonds)
    timer = 0
    for root in range(n_atoms):
        if visited[root]:
            continue
        stack: list[tuple[int, int, int]] = [(root, -1, 0)]
        while stack:
            u, parent_eid, it = stack.pop()
            if it == 0:
                visited[u] = True
                disc[u] = low[u] = timer
                timer += 1
            if it < len(adj[u]):
                stack.append((u, parent_eid, it + 1))
                v, eid = adj[u][it]
                if eid == parent_eid:
                    continue
                if visited[v]:
                    low[u] = min(low[u], disc[v])
                else:
                    stack.append((v, eid, 0))
            else:
                if parent_eid >= 0:
                    i, j = bonds[parent_eid]
                    p = int(i) if int(j) == u else int(j)
                    low[p] = min(low[p], low[u])
                    if low[u] > disc[p]:
                        bridge[parent_eid] = True
    return {
        (int(min(i, j)), int(max(i, j)))
        for eid, (i, j) in enumerate(bonds)
        if not bridge[eid]
    }


def rotatable_bonds(
    symbols,
    coords: np.ndarray,
    bonds: np.ndarray,
) -> list[tuple[int, int]]:
    """Rotatable bonds: acyclic single bonds between non-terminal heavy atoms.

    This is the standard docking definition (Lipinski-style): a bond is
    rotatable when (a) it is not in a ring, (b) neither endpoint is a
    hydrogen, and (c) both endpoints have at least one additional heavy
    neighbor (rotating a terminal group is a no-op up to symmetry).
    """
    bonds = np.asarray(bonds, dtype=np.int64).reshape(-1, 2)
    n = len(symbols)
    syms = [str(s).strip().upper() for s in symbols]
    adj = adjacency(n, bonds)
    in_ring = ring_bonds(n, bonds)
    heavy = [s != "H" for s in syms]
    out: list[tuple[int, int]] = []
    for i, j in bonds:
        i, j = int(i), int(j)
        key = (min(i, j), max(i, j))
        if key in in_ring:
            continue
        if not (heavy[i] and heavy[j]):
            continue
        i_heavy_nbrs = sum(1 for v in adj[i] if heavy[v] and v != j)
        j_heavy_nbrs = sum(1 for v in adj[j] if heavy[v] and v != i)
        if i_heavy_nbrs >= 1 and j_heavy_nbrs >= 1:
            out.append(key)
    return sorted(set(out))


def torsion_partition(
    n_atoms: int, bonds: np.ndarray, bond: tuple[int, int]
) -> np.ndarray:
    """Atom indices on the ``j`` side of rotatable bond ``(i, j)``.

    Rotating a torsion moves exactly this side.  Raises ``ValueError`` if
    the bond is in a ring (both sides stay connected after removal).
    """
    i, j = int(bond[0]), int(bond[1])
    bonds = np.asarray(bonds, dtype=np.int64).reshape(-1, 2)
    adj = adjacency(n_atoms, bonds)
    # BFS from j over the graph with the (i, j) edge removed.
    seen = np.zeros(n_atoms, dtype=bool)
    q = deque([j])
    seen[j] = True
    side = [j]
    while q:
        u = q.popleft()
        for v in adj[u]:
            if (u == j and v == i) or (u == i and v == j):
                continue  # the removed edge
            if not seen[v]:
                seen[v] = True
                side.append(v)
                q.append(v)
    if seen[i]:
        raise ValueError(f"bond {bond} is in a ring; torsion undefined")
    return np.asarray(sorted(side), dtype=np.int64)


def bond_vector_state(coords: np.ndarray, bonds: np.ndarray) -> np.ndarray:
    """Flattened bond-vector features: for each bond, (dx, dy, dz).

    Part of the paper's raw state ("positions ... and their respective
    bonds").  ``(m, 2)`` bonds -> length ``3m`` vector.
    """
    bonds = np.asarray(bonds, dtype=np.int64).reshape(-1, 2)
    if bonds.size == 0:
        return np.zeros(0)
    pts = np.asarray(coords, dtype=float)
    vec = pts[bonds[:, 1]] - pts[bonds[:, 0]]
    return vec.reshape(-1)
