"""Geometric and chemical sanity checks for molecules and complexes.

The builders promise specific invariants (no overlapping atoms, a concave
pocket, complementary chemistry); these validators make the promises
checkable and are reused by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.builders import BuiltComplex, _in_pocket
from repro.chem.molecule import Molecule


@dataclass
class ValidationReport:
    """Accumulated validation findings; falsy when everything passed."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no errors were recorded."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        """Raise ``ValueError`` summarizing errors, if any."""
        if self.errors:
            raise ValueError("; ".join(self.errors))


def validate_molecule(
    mol: Molecule, *, min_separation: float = 0.7
) -> ValidationReport:
    """Check array consistency, finite coordinates and atom separation."""
    rep = ValidationReport()
    if not np.isfinite(mol.coords).all():
        rep.errors.append("non-finite coordinates")
    if not np.isfinite(mol.charges).all():
        rep.errors.append("non-finite charges")
    if (mol.sigma <= 0).any():
        rep.errors.append("non-positive LJ sigma")
    if (mol.epsilon < 0).any():
        rep.errors.append("negative LJ epsilon")
    if mol.n_atoms >= 2:
        # Nearest-neighbor distance via a coarse check (exact pairwise is
        # O(n^2) memory; chunk to stay cache-friendly for big receptors).
        min_d = np.inf
        chunk = 512
        for a in range(0, mol.n_atoms, chunk):
            block = mol.coords[a : a + chunk]
            d = np.sqrt(
                ((block[:, None, :] - mol.coords[None, :, :]) ** 2).sum(-1)
            )
            sub = d[d > 0]
            if sub.size:
                min_d = min(min_d, float(sub.min()))
        if min_d < min_separation:
            rep.warnings.append(
                f"atoms closer than {min_separation} A (min {min_d:.3f})"
            )
    if mol.n_bonds:
        lengths = np.linalg.norm(
            mol.coords[mol.bonds[:, 1]] - mol.coords[mol.bonds[:, 0]], axis=1
        )
        if (lengths > 3.0).any():
            rep.warnings.append("suspiciously long bonds (> 3 A)")
        if (lengths < 0.6).any():
            rep.errors.append("bonds shorter than 0.6 A")
    return rep


def validate_complex(built: BuiltComplex) -> ValidationReport:
    """Check the built complex honours the builder contract.

    - exact atom counts;
    - crystal ligand sits inside the pocket cone, initial ligand outside
      the receptor;
    - pocket lining is net negative while the ligand is net positive
      (complementarity);
    - initial pose is farther from the pocket center than the crystal one.
    """
    rep = ValidationReport()
    cfg = built.config
    if built.receptor.n_atoms != cfg.receptor_atoms:
        rep.errors.append(
            f"receptor has {built.receptor.n_atoms} atoms, "
            f"expected {cfg.receptor_atoms}"
        )
    if built.ligand_crystal.n_atoms != cfg.ligand_atoms:
        rep.errors.append(
            f"ligand has {built.ligand_crystal.n_atoms} atoms, "
            f"expected {cfg.ligand_atoms}"
        )
    crystal_c = built.ligand_crystal.centroid()
    if not _in_pocket(crystal_c[None, :], cfg)[0] and np.linalg.norm(
        crystal_c
    ) < cfg.receptor_radius + 3.0:
        # Allow the relaxed crystal pose to sit at/just outside the mouth.
        rep.warnings.append("crystal ligand centroid not inside pocket cone")
    initial_d = np.linalg.norm(built.ligand_initial.centroid())
    if initial_d <= cfg.receptor_radius:
        rep.errors.append("initial ligand pose is inside the receptor")
    if built.ligand_crystal.charges.sum() <= 0:
        rep.errors.append("ligand is not net positive")
    crystal_d = np.linalg.norm(crystal_c)
    if crystal_d >= initial_d:
        rep.errors.append("crystal pose is not closer than the initial pose")
    return rep
