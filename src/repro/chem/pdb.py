"""Minimal PDB reader/writer.

Supports the column-oriented ``ATOM``/``HETATM``/``CONECT`` records needed
to round-trip our molecules and to ingest real structures (e.g. an actual
2BSM download) in place of the synthetic complex.  Charges are not part of
PDB; :func:`repro.chem.forcefield.assign_parameters` fills them in after
reading.  A PDBQT-style ``read_pdbqt`` variant parses the partial-charge
column that AutoDock-family tools emit.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.chem.forcefield import assign_parameters
from repro.chem.molecule import Molecule

PathLike = Union[str, Path]


def _open_text(source: Union[PathLike, TextIO], mode: str = "r"):
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def read_pdb(source: Union[PathLike, TextIO], *, assign: bool = True) -> Molecule:
    """Parse ATOM/HETATM (+ optional CONECT) records into a Molecule.

    ``assign=True`` (default) runs force-field parameter assignment so the
    result is immediately scoreable.
    """
    fh, should_close = _open_text(source)
    try:
        symbols: list[str] = []
        coords: list[tuple[float, float, float]] = []
        serial_to_index: dict[int, int] = {}
        bonds: set[tuple[int, int]] = set()
        name = ""
        for line in fh:
            rec = line[:6].strip()
            if rec == "HEADER" and not name:
                name = line[62:66].strip() or line[10:50].strip()
            elif rec in ("ATOM", "HETATM"):
                try:
                    serial = int(line[6:11])
                    x = float(line[30:38])
                    y = float(line[38:46])
                    z = float(line[46:54])
                except ValueError as exc:
                    raise ValueError(f"malformed PDB atom line: {line!r}") from exc
                elem = line[76:78].strip()
                if not elem:
                    # Fall back to the atom-name column's leading letter(s).
                    atom_name = line[12:16].strip()
                    elem = "".join(c for c in atom_name if c.isalpha())[:1]
                serial_to_index[serial] = len(symbols)
                symbols.append(elem.upper())
                coords.append((x, y, z))
            elif rec == "CONECT":
                fields = line.split()[1:]
                if len(fields) >= 2:
                    base = int(fields[0])
                    for other in fields[1:]:
                        a, b = base, int(other)
                        if a in serial_to_index and b in serial_to_index:
                            i = serial_to_index[a]
                            j = serial_to_index[b]
                            if i != j:
                                bonds.add((min(i, j), max(i, j)))
        if not symbols:
            raise ValueError("no ATOM/HETATM records found")
        bond_arr = (
            np.asarray(sorted(bonds), dtype=np.int64)
            if bonds
            else np.empty((0, 2), dtype=np.int64)
        )
        mol = Molecule.from_symbols(
            symbols, np.asarray(coords), bonds=bond_arr, name=name
        )
        return assign_parameters(mol) if assign else mol
    finally:
        if should_close:
            fh.close()


def write_pdb(
    mol: Molecule, target: Union[PathLike, TextIO], *, hetatm: bool = False
) -> None:
    """Write a Molecule as PDB ATOM/HETATM + CONECT records."""
    fh, should_close = _open_text(target, "w")
    try:
        if mol.name:
            fh.write(f"HEADER    {mol.name[:40]:<40}\n")
        rec = "HETATM" if hetatm else "ATOM  "
        for i, (sym, (x, y, z)) in enumerate(
            zip(mol.symbols, mol.coords), start=1
        ):
            atom_name = f"{sym:<3}"[:4]
            fh.write(
                f"{rec}{i:>5} {atom_name:<4} MOL A   1    "
                f"{x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00          "
                f"{sym:>2}\n"
            )
        for i, j in mol.bonds:
            fh.write(f"CONECT{i + 1:>5}{j + 1:>5}\n")
        fh.write("END\n")
    finally:
        if should_close:
            fh.close()


def read_pdbqt(source: Union[PathLike, TextIO]) -> Molecule:
    """Parse a PDBQT file (AutoDock family), keeping the charge column.

    PDBQT stores the Gasteiger partial charge in columns 71-76 and the
    AutoDock atom type in 78-79; we map the type's leading element letters
    to our element table.
    """
    fh, should_close = _open_text(source)
    try:
        symbols: list[str] = []
        coords: list[tuple[float, float, float]] = []
        charges: list[float] = []
        for line in fh:
            rec = line[:6].strip()
            if rec in ("ATOM", "HETATM"):
                x = float(line[30:38])
                y = float(line[38:46])
                z = float(line[46:54])
                q = float(line[70:76])
                adtype = line[77:79].strip()
                elem = "".join(c for c in adtype if c.isalpha())
                if elem.upper() in ("A",):  # aromatic carbon type
                    elem = "C"
                if elem.upper() in ("OA", "NA", "SA"):
                    elem = elem[0]
                symbols.append(elem.upper())
                coords.append((x, y, z))
                charges.append(q)
        if not symbols:
            raise ValueError("no ATOM/HETATM records found")
        mol = Molecule.from_symbols(symbols, np.asarray(coords))
        mol.charges = np.asarray(charges, dtype=float)
        return mol
    finally:
        if should_close:
            fh.close()


def write_pdb_trajectory(
    frames: "list[np.ndarray]",
    template: Molecule,
    target: Union[PathLike, TextIO],
    *,
    hetatm: bool = False,
) -> None:
    """Write a multi-MODEL PDB trajectory (one MODEL per coordinate set).

    Standard molecular viewers animate MODEL records, so a docking
    episode recorded by the engine can be inspected visually.  All
    frames must match the template's atom count.
    """
    fh, should_close = _open_text(target, "w")
    try:
        if template.name:
            fh.write(f"HEADER    {template.name[:40]:<40}\n")
        rec = "HETATM" if hetatm else "ATOM  "
        for m, coords in enumerate(frames, start=1):
            pts = np.asarray(coords, dtype=float)
            if pts.shape != (template.n_atoms, 3):
                raise ValueError(
                    f"frame {m} has shape {pts.shape}, expected "
                    f"({template.n_atoms}, 3)"
                )
            fh.write(f"MODEL     {m:>4}\n")
            for i, (sym, (x, y, z)) in enumerate(
                zip(template.symbols, pts), start=1
            ):
                atom_name = f"{sym:<3}"[:4]
                fh.write(
                    f"{rec}{i:>5} {atom_name:<4} MOL A   1    "
                    f"{x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00          "
                    f"{sym:>2}\n"
                )
            fh.write("ENDMDL\n")
        fh.write("END\n")
    finally:
        if should_close:
            fh.close()


def read_pdb_models(source: Union[PathLike, TextIO]) -> list[np.ndarray]:
    """Read the coordinate frames of a multi-MODEL PDB trajectory."""
    fh, should_close = _open_text(source)
    try:
        frames: list[np.ndarray] = []
        current: list[tuple[float, float, float]] = []
        in_model = False
        for line in fh:
            rec = line[:6].strip()
            if rec == "MODEL":
                in_model = True
                current = []
            elif rec == "ENDMDL":
                frames.append(np.asarray(current))
                in_model = False
            elif rec in ("ATOM", "HETATM") and in_model:
                current.append(
                    (
                        float(line[30:38]),
                        float(line[38:46]),
                        float(line[46:54]),
                    )
                )
        if not frames:
            raise ValueError("no MODEL records found")
        return frames
    finally:
        if should_close:
            fh.close()


def to_pdb_string(mol: Molecule) -> str:
    """Render a molecule to a PDB-format string (round-trips read_pdb)."""
    buf = io.StringIO()
    write_pdb(mol, buf)
    return buf.getvalue()
