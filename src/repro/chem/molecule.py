"""Structure-of-arrays molecule representation.

Scoring dominates the run time of docking, so atom data lives in parallel
NumPy arrays (coordinates, charges, LJ parameters, H-bond flags) rather
than per-atom objects -- the guides' "vectorize, avoid copies" idiom.
Coordinates are C-contiguous ``(n, 3)`` float64 throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.chem import elements as el


@dataclass
class Molecule:
    """A molecule as parallel arrays plus a bond list.

    Attributes
    ----------
    symbols:
        Element symbols, length ``n``.
    coords:
        ``(n, 3)`` float64 positions in angstrom.
    charges:
        Partial charges in elementary charge units.
    sigma / epsilon:
        Per-atom Lennard-Jones parameters.
    hbond_donor / hbond_acceptor:
        Boolean masks for the hydrogen-bond term.
    bonds:
        ``(m, 2)`` int array of atom-index pairs (i < j).
    name:
        Free-form label ("receptor", "ligand", PDB id, ...).
    """

    symbols: list[str]
    coords: np.ndarray
    charges: np.ndarray
    sigma: np.ndarray
    epsilon: np.ndarray
    hbond_donor: np.ndarray
    hbond_acceptor: np.ndarray
    bonds: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    name: str = ""

    def __post_init__(self) -> None:
        n = len(self.symbols)
        self.coords = np.ascontiguousarray(self.coords, dtype=float)
        if self.coords.shape != (n, 3):
            raise ValueError(
                f"coords shape {self.coords.shape} != ({n}, 3)"
            )
        for attr in ("charges", "sigma", "epsilon"):
            arr = np.ascontiguousarray(getattr(self, attr), dtype=float)
            if arr.shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},)")
            setattr(self, attr, arr)
        for attr in ("hbond_donor", "hbond_acceptor"):
            arr = np.ascontiguousarray(getattr(self, attr), dtype=bool)
            if arr.shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},)")
            setattr(self, attr, arr)
        self.bonds = np.ascontiguousarray(self.bonds, dtype=np.int64)
        if self.bonds.size and (
            self.bonds.ndim != 2 or self.bonds.shape[1] != 2
        ):
            raise ValueError("bonds must have shape (m, 2)")
        if self.bonds.size:
            if self.bonds.min() < 0 or self.bonds.max() >= n:
                raise ValueError("bond indices out of range")
            if (self.bonds[:, 0] == self.bonds[:, 1]).any():
                raise ValueError("self-bonds are not allowed")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_symbols(
        cls,
        symbols: Sequence[str],
        coords,
        charges=None,
        bonds=None,
        name: str = "",
    ) -> "Molecule":
        """Build a molecule, pulling LJ/H-bond data from the element table.

        When ``charges`` is omitted, each atom receives its element's
        typical partial charge (a crude Gasteiger substitute adequate for
        synthetic systems).
        """
        syms = [str(s).strip().upper() for s in symbols]
        elems = [el.element(s) for s in syms]
        n = len(syms)
        coords = np.ascontiguousarray(coords, dtype=float).reshape(n, 3)
        if charges is None:
            charges = np.array([e.typical_charge for e in elems])
        sigma = np.array([e.sigma for e in elems])
        eps = np.array([e.epsilon for e in elems])
        donor = np.array([e.hbond_donor for e in elems])
        acceptor = np.array([e.hbond_acceptor for e in elems])
        if bonds is None:
            bonds = np.empty((0, 2), dtype=np.int64)
        return cls(
            symbols=syms,
            coords=coords,
            charges=np.asarray(charges, dtype=float),
            sigma=sigma,
            epsilon=eps,
            hbond_donor=donor,
            hbond_acceptor=acceptor,
            bonds=np.asarray(bonds, dtype=np.int64).reshape(-1, 2),
            name=name,
        )

    # -- geometry -----------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return len(self.symbols)

    @property
    def n_bonds(self) -> int:
        """Number of bonds."""
        return int(self.bonds.shape[0])

    @property
    def masses(self) -> np.ndarray:
        """Per-atom masses (amu)."""
        return el.masses(self.symbols)

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted centroid."""
        m = self.masses
        return (self.coords * m[:, None]).sum(axis=0) / m.sum()

    def centroid(self) -> np.ndarray:
        """Unweighted centroid."""
        return self.coords.mean(axis=0)

    def radius_of_gyration(self) -> float:
        """Mass-weighted radius of gyration."""
        m = self.masses
        com = self.center_of_mass()
        return float(
            np.sqrt((m * ((self.coords - com) ** 2).sum(axis=1)).sum() / m.sum())
        )

    def bounding_radius(self) -> float:
        """Max distance from centroid to any atom."""
        c = self.centroid()
        return float(np.linalg.norm(self.coords - c, axis=1).max())

    # -- editing -------------------------------------------------------------
    def with_coords(self, coords: np.ndarray) -> "Molecule":
        """Copy sharing parameters but with new coordinates.

        Parameter arrays are shared (read-only by convention) so building
        per-pose molecules during screening does not copy charge/LJ data.
        """
        coords = np.ascontiguousarray(coords, dtype=float)
        if coords.shape != self.coords.shape:
            raise ValueError("coords shape mismatch")
        return Molecule(
            symbols=self.symbols,
            coords=coords,
            charges=self.charges,
            sigma=self.sigma,
            epsilon=self.epsilon,
            hbond_donor=self.hbond_donor,
            hbond_acceptor=self.hbond_acceptor,
            bonds=self.bonds,
            name=self.name,
        )

    def translated(self, vec) -> "Molecule":
        """Copy translated by ``vec``."""
        return self.with_coords(self.coords + np.asarray(vec, dtype=float))

    def subset(self, indices: Iterable[int], name: str | None = None) -> "Molecule":
        """Extract the sub-molecule over ``indices`` (bonds remapped)."""
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_atoms):
            raise IndexError("subset indices out of range")
        remap = -np.ones(self.n_atoms, dtype=np.int64)
        remap[idx] = np.arange(idx.size)
        keep = np.all(remap[self.bonds] >= 0, axis=1) if self.bonds.size \
            else np.zeros(0, dtype=bool)
        new_bonds = remap[self.bonds[keep]] if self.bonds.size \
            else np.empty((0, 2), dtype=np.int64)
        return Molecule(
            symbols=[self.symbols[i] for i in idx],
            coords=self.coords[idx].copy(),
            charges=self.charges[idx].copy(),
            sigma=self.sigma[idx].copy(),
            epsilon=self.epsilon[idx].copy(),
            hbond_donor=self.hbond_donor[idx].copy(),
            hbond_acceptor=self.hbond_acceptor[idx].copy(),
            bonds=new_bonds,
            name=self.name if name is None else name,
        )

    @staticmethod
    def concatenate(mols: Sequence["Molecule"], name: str = "") -> "Molecule":
        """Join molecules into one (bond indices offset appropriately)."""
        if not mols:
            raise ValueError("cannot concatenate zero molecules")
        offset = 0
        bond_parts = []
        for m in mols:
            if m.n_bonds:
                bond_parts.append(m.bonds + offset)
            offset += m.n_atoms
        bonds = np.concatenate(bond_parts) if bond_parts \
            else np.empty((0, 2), dtype=np.int64)
        return Molecule(
            symbols=[s for m in mols for s in m.symbols],
            coords=np.concatenate([m.coords for m in mols]),
            charges=np.concatenate([m.charges for m in mols]),
            sigma=np.concatenate([m.sigma for m in mols]),
            epsilon=np.concatenate([m.epsilon for m in mols]),
            hbond_donor=np.concatenate([m.hbond_donor for m in mols]),
            hbond_acceptor=np.concatenate([m.hbond_acceptor for m in mols]),
            bonds=bonds,
            name=name,
        )

    def copy(self) -> "Molecule":
        """Deep copy (all arrays owned)."""
        return Molecule(
            symbols=list(self.symbols),
            coords=self.coords.copy(),
            charges=self.charges.copy(),
            sigma=self.sigma.copy(),
            epsilon=self.epsilon.copy(),
            hbond_donor=self.hbond_donor.copy(),
            hbond_acceptor=self.hbond_acceptor.copy(),
            bonds=self.bonds.copy(),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"Molecule(name={self.name!r}, atoms={self.n_atoms}, "
            f"bonds={self.n_bonds})"
        )
