"""Element data and van-der-Waals parameter tables.

The Lennard-Jones parameters (sigma, epsilon) are MMFF94/AMBER-flavoured
values adequate for the score *landscape* the RL agent experiences; the
paper cites Halgren's MMFF94 van-der-Waals parameterization [16] for this
term.  Values: sigma in angstrom, epsilon in kcal/mol, typical partial
charges in elementary charge units.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Element:
    """Static per-element data used by the scorer and builders."""

    symbol: str
    atomic_number: int
    mass: float  # atomic mass units
    #: Lennard-Jones collision diameter, angstrom.
    sigma: float
    #: Lennard-Jones well depth, kcal/mol.
    epsilon: float
    #: Covalent radius, angstrom (bond-detection heuristic).
    covalent_radius: float
    #: Typical magnitude of partial charge in organic context.
    typical_charge: float
    #: Can act as hydrogen-bond donor heavy atom.
    hbond_donor: bool
    #: Can act as hydrogen-bond acceptor.
    hbond_acceptor: bool


#: The biologically relevant subset: protein + drug-like ligand elements.
ELEMENTS: dict[str, Element] = {
    "H": Element("H", 1, 1.008, 2.50, 0.030, 0.31, 0.15, False, False),
    "C": Element("C", 6, 12.011, 3.40, 0.086, 0.76, -0.05, False, False),
    "N": Element("N", 7, 14.007, 3.25, 0.170, 0.71, -0.40, True, True),
    "O": Element("O", 8, 15.999, 3.12, 0.210, 0.66, -0.45, True, True),
    "F": Element("F", 9, 18.998, 3.00, 0.061, 0.57, -0.20, False, True),
    "P": Element("P", 15, 30.974, 3.74, 0.200, 1.07, 0.30, False, False),
    "S": Element("S", 16, 32.06, 3.56, 0.250, 1.05, -0.15, True, True),
    "CL": Element("CL", 17, 35.45, 3.47, 0.265, 1.02, -0.10, False, True),
    "BR": Element("BR", 35, 79.904, 3.65, 0.320, 1.20, -0.08, False, True),
    "I": Element("I", 53, 126.90, 3.88, 0.400, 1.39, -0.05, False, True),
    "FE": Element("FE", 26, 55.845, 2.59, 0.013, 1.32, 1.20, False, False),
    "ZN": Element("ZN", 30, 65.38, 1.96, 0.012, 1.22, 1.10, False, False),
}

_BY_NUMBER = {e.atomic_number: e for e in ELEMENTS.values()}


def element(symbol_or_number) -> Element:
    """Look up an element by symbol (case-insensitive) or atomic number."""
    if isinstance(symbol_or_number, int):
        try:
            return _BY_NUMBER[symbol_or_number]
        except KeyError:
            raise KeyError(
                f"no parameters for atomic number {symbol_or_number}"
            ) from None
    key = str(symbol_or_number).strip().upper()
    try:
        return ELEMENTS[key]
    except KeyError:
        raise KeyError(f"no parameters for element {symbol_or_number!r}") from None


def vdw_parameters(symbols) -> tuple["np.ndarray", "np.ndarray"]:
    """Vectorized (sigma, epsilon) lookup for a sequence of symbols."""
    import numpy as np

    elems = [element(s) for s in symbols]
    sigma = np.array([e.sigma for e in elems], dtype=float)
    eps = np.array([e.epsilon for e in elems], dtype=float)
    return sigma, eps


def masses(symbols) -> "np.ndarray":
    """Vectorized atomic-mass lookup."""
    import numpy as np

    return np.array([element(s).mass for s in symbols], dtype=float)


def covalent_radii(symbols) -> "np.ndarray":
    """Vectorized covalent-radius lookup."""
    import numpy as np

    return np.array([element(s).covalent_radius for s in symbols], dtype=float)
