"""Conformer generation: sampled torsion states of a flexible ligand.

Flexible-ligand screening (Section 5) needs internal conformations, not
just rigid placements.  :func:`generate_conformers` samples torsion
assignments about the ligand's rotatable bonds, rejects self-clashing
geometries, and returns centered coordinate sets ready for pose search
-- the ensemble-docking pattern (dock each conformer rigidly, keep the
best).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.topology import rotatable_bonds
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Conformer:
    """One internal conformation of a ligand."""

    coords: np.ndarray
    torsions: tuple[float, ...]
    #: Smallest non-bonded intra-ligand distance (self-clash indicator).
    min_nonbonded_distance: float


def _min_nonbonded_distance(mol: Molecule, coords: np.ndarray) -> float:
    """Minimum distance between atom pairs not directly bonded."""
    n = coords.shape[0]
    if n < 2:
        return float("inf")
    d = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
    excluded = np.eye(n, dtype=bool)
    for i, j in mol.bonds:
        excluded[i, j] = excluded[j, i] = True
    masked = np.where(excluded, np.inf, d)
    return float(masked.min())


def generate_conformers(
    ligand: Molecule,
    n_conformers: int,
    *,
    max_torsions: int | None = None,
    clash_distance: float = 0.9,
    max_attempts_factor: int = 16,
    rng: SeedLike = None,
) -> list[Conformer]:
    """Sample up to ``n_conformers`` self-avoiding torsion states.

    The identity conformation (all torsions zero) is always first.  If a
    ligand has no rotatable bonds the identity is the only conformer.
    Raises ``ValueError`` for a non-positive request; returns fewer than
    requested only when rejection sampling exhausts its attempt budget
    (heavily strained ligands).
    """
    if n_conformers < 1:
        raise ValueError("n_conformers must be >= 1")
    gen = as_generator(rng)
    centered = ligand.coords - ligand.coords.mean(axis=0)
    bonds = rotatable_bonds(ligand.symbols, ligand.coords, ligand.bonds)
    if max_torsions is not None:
        bonds = bonds[:max_torsions]
    out = [
        Conformer(
            coords=centered.copy(),
            torsions=(0.0,) * len(bonds),
            min_nonbonded_distance=_min_nonbonded_distance(ligand, centered),
        )
    ]
    if not bonds or n_conformers == 1:
        return out
    # Imported lazily: chem is a lower layer than metadock, and the
    # torsion machinery lives up there (it is pose infrastructure).
    from repro.metadock.pose import TorsionDriver

    driver = TorsionDriver(ligand.with_coords(centered), bonds)
    attempts = 0
    budget = max_attempts_factor * n_conformers
    while len(out) < n_conformers and attempts < budget:
        attempts += 1
        torsions = tuple(gen.uniform(-np.pi, np.pi, size=len(bonds)))
        coords = driver.apply(centered, torsions)
        coords = coords - coords.mean(axis=0)
        dmin = _min_nonbonded_distance(ligand, coords)
        if dmin < clash_distance:
            continue
        out.append(
            Conformer(
                coords=coords,
                torsions=torsions,
                min_nonbonded_distance=dmin,
            )
        )
    return out


def conformer_diversity(conformers: list[Conformer]) -> float:
    """Mean pairwise coordinate RMSD across the ensemble (0 for singletons)."""
    if len(conformers) < 2:
        return 0.0
    total, count = 0.0, 0
    for i in range(len(conformers)):
        for j in range(i + 1, len(conformers)):
            diff = conformers[i].coords - conformers[j].coords
            total += float(np.sqrt((diff**2).sum(axis=1).mean()))
            count += 1
    return total / count
