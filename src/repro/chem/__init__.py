"""Molecular substrate: atoms, molecules, force-field parameters, I/O.

The paper's METADOCK environment operates on a receptor-ligand pair with
per-atom partial charges, Lennard-Jones parameters and hydrogen-bond
roles.  This subpackage provides:

- :mod:`repro.chem.elements` -- element data and parameter tables;
- :mod:`repro.chem.molecule` -- the structure-of-arrays :class:`Molecule`;
- :mod:`repro.chem.topology` -- bond graphs and rotatable-bond detection;
- :mod:`repro.chem.transforms` -- rotations, quaternions, rigid moves;
- :mod:`repro.chem.forcefield` -- MMFF94-flavoured parameter assignment;
- :mod:`repro.chem.builders` -- deterministic synthetic 2BSM-scale
  complexes (the substitution for the wwPDB crystal structure);
- :mod:`repro.chem.pdb` / :mod:`repro.chem.xyz` -- file I/O.
"""

from repro.chem.elements import Element, ELEMENTS, vdw_parameters
from repro.chem.molecule import Molecule
from repro.chem.topology import (
    bonds_from_distance,
    connected_components,
    rotatable_bonds,
)
from repro.chem.transforms import (
    Quaternion,
    rotation_matrix,
    axis_angle_matrix,
    random_rotation,
    rigid_transform,
)
from repro.chem.builders import (
    build_complex,
    build_ligand,
    build_receptor,
    BuiltComplex,
)
from repro.chem.forcefield import assign_parameters
from repro.chem.conformers import Conformer, generate_conformers
from repro.chem.descriptors import (
    Descriptors,
    compute_descriptors,
    library_diversity,
)

__all__ = [
    "Element",
    "ELEMENTS",
    "vdw_parameters",
    "Molecule",
    "bonds_from_distance",
    "connected_components",
    "rotatable_bonds",
    "Quaternion",
    "rotation_matrix",
    "axis_angle_matrix",
    "random_rotation",
    "rigid_transform",
    "build_complex",
    "build_ligand",
    "build_receptor",
    "BuiltComplex",
    "assign_parameters",
    "Conformer",
    "generate_conformers",
    "Descriptors",
    "compute_descriptors",
    "library_diversity",
]
