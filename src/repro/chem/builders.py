"""Deterministic synthetic receptor-ligand complexes (the 2BSM stand-in).

The paper evaluates on the wwPDB pair 2BSM: a 3,264-atom receptor with a
single known crystallographic binding recess, and a 45-atom ligand that
starts displaced from the protein (Figure 3).  Offline we cannot fetch the
crystal structure, so this module *constructs* a complex with the same
learning-relevant properties:

- a globular receptor of the requested atom count with one concave
  binding pocket carved into its surface;
- pocket-lining atoms that are charge- and hydrogen-bond-complementary to
  the generated ligand, so the crystallographic pose is the global score
  maximum (score = negated interaction energy; see
  :mod:`repro.scoring.composite`);
- a steep steric wall inside the protein (the paper's "going deeper ...
  makes the scoring function dramatically decrease");
- a ligand with explicit bonds and at least the requested number of
  rotatable bonds (2BSM's ligand folds in 6);
- an initial pose displaced ``initial_offset`` angstroms from the pocket
  mouth along the pocket axis, like Figure 3's position (A).

Everything is a pure function of :class:`repro.config.ComplexConfig`,
including its seed, so every test/bench sees the identical complex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.topology import bonds_from_distance, rotatable_bonds
from repro.config import ComplexConfig
from repro.utils.rng import as_generator

#: Pocket axis is fixed to +z; rotations of the whole complex are applied
#: afterwards if isotropy is needed (tests rely on the fixed axis).
POCKET_AXIS = np.array([0.0, 0.0, 1.0])

#: Approximate receptor element composition (protein-like, explicit H).
_RECEPTOR_COMPOSITION = [
    ("H", 0.48), ("C", 0.32), ("N", 0.09), ("O", 0.095), ("S", 0.015),
]

_LATTICE_SPACING = 2.2  # angstrom between receptor lattice atoms


@dataclass(frozen=True)
class BuiltComplex:
    """A receptor plus the two reference ligand poses of Figure 3."""

    receptor: Molecule
    #: Ligand at the crystallographic pose (Figure 3, position B).
    ligand_crystal: Molecule
    #: Ligand at the initial displaced pose (Figure 3, position A).
    ligand_initial: Molecule
    #: Unit vector from receptor center through the pocket mouth.
    pocket_axis: np.ndarray
    #: Center of the binding recess (angstrom).
    pocket_center: np.ndarray
    config: ComplexConfig

    @property
    def initial_com_distance(self) -> float:
        """Distance between receptor and initial-ligand centers of mass --
        the quantity whose 4/3 multiple defines the escape radius."""
        return float(
            np.linalg.norm(
                self.ligand_initial.center_of_mass()
                - self.receptor.center_of_mass()
            )
        )


def _ball_lattice(radius: float, spacing: float) -> np.ndarray:
    """Jittered cubic lattice points inside a ball (deterministic layout)."""
    k = int(math.ceil(radius / spacing))
    axis = np.arange(-k, k + 1) * spacing
    xx, yy, zz = np.meshgrid(axis, axis, axis, indexing="ij")
    pts = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
    # Offset alternating planes for a denser, less axis-aligned packing.
    pts = pts + (np.abs(pts[:, 2:3] / spacing) % 2) * (spacing / 2) * np.array(
        [[1.0, 1.0, 0.0]]
    )
    inside = np.linalg.norm(pts, axis=1) <= radius
    return pts[inside]


def _in_pocket(points: np.ndarray, cfg: ComplexConfig) -> np.ndarray:
    """Mask of points inside the carved conical pocket region."""
    r = np.linalg.norm(points, axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        cosang = np.where(r > 0, points @ POCKET_AXIS / np.maximum(r, 1e-12), 1.0)
    ang = np.arccos(np.clip(cosang, -1.0, 1.0))
    return (ang <= cfg.pocket_aperture) & (
        r >= cfg.receptor_radius - cfg.pocket_depth
    )


def build_receptor(cfg: ComplexConfig) -> Molecule:
    """Construct the synthetic receptor with exactly ``cfg.receptor_atoms``.

    Lattice atoms fill a ball of ``cfg.receptor_radius``; the pocket cone
    is removed; the count is trimmed to the target by discarding the
    outermost non-pocket-lining atoms (keeping the pocket geometry intact)
    or, if short, by shrinking the lattice spacing and retrying.
    """
    rng = as_generator(cfg.seed)
    spacing = _LATTICE_SPACING
    for _attempt in range(8):
        pts = _ball_lattice(cfg.receptor_radius, spacing)
        pts = pts + rng.normal(scale=0.25, size=pts.shape)  # de-crystallize
        pts = pts[~_in_pocket(pts, cfg)]
        if len(pts) >= cfg.receptor_atoms:
            break
        spacing *= 0.85
    else:  # pragma: no cover - config would have to be pathological
        raise RuntimeError("could not pack enough receptor atoms")

    # Identify pocket-lining atoms (near the carved cone) and protect them
    # from trimming: they carry the complementary chemistry.
    lining = _pocket_lining_mask(pts, cfg)
    order = np.argsort(np.linalg.norm(pts, axis=1))  # innermost first
    protected = np.nonzero(lining)[0]
    unprotected = np.array(
        [i for i in order if not lining[i]], dtype=np.int64
    )
    n_needed = cfg.receptor_atoms - protected.size
    if n_needed < 0:
        # Pathologically small receptor: keep the innermost lining atoms.
        keep = protected[
            np.argsort(np.linalg.norm(pts[protected], axis=1))
        ][: cfg.receptor_atoms]
    else:
        keep = np.concatenate([protected, unprotected[:n_needed]])
    keep = np.sort(keep)
    pts = pts[keep]
    lining = lining[keep]

    symbols = _sample_composition(rng, len(pts))
    # Pocket lining: polar heavy atoms (O/N acceptors) with negative
    # charge, complementary to the positively charged ligand.
    lining_idx = np.nonzero(lining)[0]
    for rank, i in enumerate(lining_idx):
        symbols[i] = "O" if rank % 2 == 0 else "N"

    mol = Molecule.from_symbols(symbols, pts, name="receptor")
    charges = mol.charges.copy()
    charges[lining_idx] = -0.55
    # Sprinkle a few strongly positive surface sites away from the pocket:
    # these create the paper's "two positives too close" repulsion events.
    surface = np.nonzero(
        np.linalg.norm(pts, axis=1) >= cfg.receptor_radius - 2.5
    )[0]
    surface = np.setdiff1d(surface, lining_idx)
    if surface.size:
        n_pos = max(1, surface.size // 20)
        pos_sites = rng.choice(surface, size=n_pos, replace=False)
        charges[pos_sites] = +0.60
    # Keep the receptor roughly neutral overall.
    charges -= charges.mean()
    charges[lining_idx] = np.minimum(charges[lining_idx], -0.35)
    mol.charges = charges
    mol.hbond_acceptor = mol.hbond_acceptor.copy()
    mol.hbond_acceptor[lining_idx] = True
    return mol


def _pocket_lining_mask(pts: np.ndarray, cfg: ComplexConfig) -> np.ndarray:
    """Atoms within one shell of the pocket cone boundary."""
    r = np.linalg.norm(pts, axis=1)
    with np.errstate(invalid="ignore"):
        cosang = np.where(r > 0, pts @ POCKET_AXIS / np.maximum(r, 1e-12), 1.0)
    ang = np.arccos(np.clip(cosang, -1.0, 1.0))
    near_angle = np.abs(ang - cfg.pocket_aperture) <= 0.22
    deep_floor = (
        (ang <= cfg.pocket_aperture)
        & (np.abs(r - (cfg.receptor_radius - cfg.pocket_depth)) <= 1.8)
    )
    in_shell = (r >= cfg.receptor_radius - cfg.pocket_depth - 1.8) & (
        r <= cfg.receptor_radius + 0.5
    )
    return (near_angle & in_shell) | deep_floor


def _sample_composition(rng: np.random.Generator, n: int) -> list[str]:
    """Draw ``n`` element symbols from the protein-like composition."""
    syms = [s for s, _w in _RECEPTOR_COMPOSITION]
    weights = np.array([w for _s, w in _RECEPTOR_COMPOSITION])
    weights = weights / weights.sum()
    return list(rng.choice(syms, size=n, p=weights))


def build_ligand(cfg: ComplexConfig) -> Molecule:
    """Grow a branched, self-avoiding drug-like ligand of the target size.

    Heavy atoms are grown as a tree with ~1.5 angstrom bonds and
    tetrahedral-ish angles; hydrogens are appended to terminal positions to
    reach ``cfg.ligand_atoms`` exactly.  The growth guarantees at least
    ``cfg.rotatable_bonds`` rotatable bonds (the chain is kept long enough
    and acyclic).  Charges are biased positive so the anionic pocket
    attracts the ligand.
    """
    # Growth is stochastic; rarely a seed yields too few rotatable bonds.
    # Retry with derived sub-seeds (still a pure function of cfg.seed).
    last_error: RuntimeError | None = None
    for attempt in range(16):
        try:
            return _grow_ligand(cfg, cfg.seed + 1 + 1000003 * attempt)
        except RuntimeError as exc:
            last_error = exc
    raise RuntimeError(
        f"ligand growth failed after 16 attempts: {last_error}"
    )


def _grow_ligand(cfg: ComplexConfig, seed: int) -> Molecule:
    """One growth attempt (see :func:`build_ligand`)."""
    rng = as_generator(seed)
    n_total = cfg.ligand_atoms
    # Heavy-atom budget: enough chain for the rotatable-bond requirement,
    # roughly 40% of atoms heavy (drug-like with explicit H).
    n_heavy = max(cfg.rotatable_bonds + 3, int(round(n_total * 0.45)), 3)
    n_heavy = min(n_heavy, n_total - 1)

    bond_len = 1.5
    coords = [np.zeros(3)]
    parents = [-1]
    heavy_syms = ["C"]
    # Grow a mostly-linear tree: extend from the most recent atom with
    # high probability (long backbone => many rotatable bonds), branch
    # occasionally.
    while len(coords) < n_heavy:
        base = len(coords) - 1 if rng.uniform() < 0.8 else int(
            rng.integers(0, len(coords))
        )
        placed = False
        for _try in range(64):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            # Bias growth away from the parent to keep the chain extended.
            if parents[base] >= 0:
                away = coords[base] - coords[parents[base]]
                away /= max(np.linalg.norm(away), 1e-9)
                direction = direction + 1.2 * away
                direction /= np.linalg.norm(direction)
            cand = coords[base] + bond_len * direction
            dists = np.linalg.norm(np.asarray(coords) - cand, axis=1)
            if (dists > 1.25).all():
                coords.append(cand)
                parents.append(base)
                heavy_syms.append(
                    str(rng.choice(["C", "C", "C", "N", "O"]))
                )
                placed = True
                break
        if not placed:
            continue  # dead end: try again from a fresh random base

    heavy_coords = np.asarray(coords)
    bonds = [(parents[i], i) for i in range(1, n_heavy)]

    # Hydrogens: attach to heavy atoms with spare valence, round-robin.
    n_h = n_total - n_heavy
    coords_all = list(heavy_coords)
    syms_all = list(heavy_syms)
    h_host = list(range(n_heavy))
    rng.shuffle(h_host)
    hi = 0
    attached = 0
    while attached < n_h:
        host = h_host[hi % n_heavy]
        hi += 1
        for _try in range(32):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            cand = coords_all[host] + 1.05 * direction
            dists = np.linalg.norm(np.asarray(coords_all) - cand, axis=1)
            if (dists > 0.9).all():
                bonds.append((host, len(coords_all)))
                coords_all.append(cand)
                syms_all.append("H")
                attached += 1
                break
        else:  # pragma: no cover - extremely unlikely with 32 tries
            attached += 1  # skip rather than loop forever

    coords_arr = np.asarray(coords_all)[: n_total]
    syms_all = syms_all[: n_total]
    bonds_arr = np.asarray(
        [(min(i, j), max(i, j)) for i, j in bonds if j < n_total],
        dtype=np.int64,
    ).reshape(-1, 2)

    mol = Molecule.from_symbols(
        syms_all, coords_arr - coords_arr.mean(axis=0), bonds=bonds_arr,
        name="ligand",
    )
    # Positive net charge, concentrated on N atoms (protonated amines).
    charges = mol.charges.copy() * 0.3
    n_sites = [i for i, s in enumerate(mol.symbols) if s == "N"]
    for i in n_sites:
        charges[i] = +0.45
    charges += (1.0 - charges.sum()) / mol.n_atoms
    mol.charges = charges
    mol.hbond_donor = mol.hbond_donor.copy()
    heavy_idx = [i for i, s in enumerate(mol.symbols) if s != "H"]
    for i in heavy_idx:
        if mol.symbols[i] in ("N", "O"):
            mol.hbond_donor[i] = True
    rb = rotatable_bonds(mol.symbols, mol.coords, mol.bonds)
    if len(rb) < cfg.rotatable_bonds:
        # Deterministic fallback: relabel terminal Hs on the backbone to C
        # until enough internal single bonds qualify.  In practice the
        # growth above always satisfies the requirement.
        raise RuntimeError(
            f"ligand growth produced {len(rb)} rotatable bonds, "
            f"needed {cfg.rotatable_bonds}; adjust ComplexConfig"
        )
    return mol


def build_complex(cfg: ComplexConfig) -> BuiltComplex:
    """Build receptor + crystallographic and initial ligand poses.

    The crystal pose is found by sliding the ligand along the pocket axis
    and keeping the best-scoring depth (a cheap deterministic relaxation);
    the initial pose sits ``cfg.initial_offset`` angstroms beyond the
    receptor surface along the same axis, like Figure 3's position (A).
    """
    from repro.scoring.composite import interaction_score  # lazy: no cycle

    receptor = build_receptor(cfg)
    ligand = build_ligand(cfg)

    lig_centered = ligand.with_coords(ligand.coords - ligand.centroid())
    # Scan depths from pocket floor to just outside the mouth.
    floor = cfg.receptor_radius - cfg.pocket_depth
    best_score, best_depth = -math.inf, None
    for depth in np.linspace(
        floor + 0.5, cfg.receptor_radius + 2.0, 24
    ):
        cand = lig_centered.translated(POCKET_AXIS * depth)
        s = interaction_score(receptor, cand)
        if s > best_score:
            best_score, best_depth = s, float(depth)
    crystal = lig_centered.translated(POCKET_AXIS * best_depth)
    crystal.name = "ligand-crystal"

    initial = lig_centered.translated(
        POCKET_AXIS * (cfg.receptor_radius + cfg.initial_offset)
    )
    initial.name = "ligand-initial"

    pocket_center = POCKET_AXIS * (cfg.receptor_radius - cfg.pocket_depth / 2)
    return BuiltComplex(
        receptor=receptor,
        ligand_crystal=crystal,
        ligand_initial=initial,
        pocket_axis=POCKET_AXIS.copy(),
        pocket_center=pocket_center,
        config=cfg,
    )


def build_ligand_variant(
    cfg: ComplexConfig, variant_seed: int
) -> Molecule:
    """A ligand drawn with a different seed but the same size class.

    Used by the virtual-screening library generator to emulate a
    ZINC-like collection of chemically diverse candidates.
    """
    import dataclasses

    return build_ligand(dataclasses.replace(cfg, seed=cfg.seed + 7919 * (variant_seed + 1)))
