"""Cross-complex generalization: beyond a single receptor-ligand pair.

The paper trains and tests on one pair (2BSM) and names as its ultimate
goal "to make DQN-Docking scalable to any other scenario beyond 2BSM".
This experiment measures exactly that gap: an agent trained on one
synthetic complex is evaluated zero-shot on freshly generated complexes
of the same size class (same state dimensionality, different geometry
and chemistry), against two references per target:

- an *untrained* agent (the floor -- random-ish greedy walk);
- a *scratch* agent trained directly on the target (the ceiling within
  the training budget).

Transfer landing near the floor is the expected early-stage result --
the paper's single-complex training has nothing to generalize from --
and the experiment turns that expectation into a measured number.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.chem.builders import build_complex
from repro.config import DQNDockingConfig
from repro.env.factory import make_env
from repro.experiments.figure4 import (
    build_agent_for_env,
    run_figure4_experiment,
)
from repro.rl.evaluation import EvaluationResult, evaluate_policy
from repro.utils.tables import render_table


@dataclass(frozen=True)
class TransferOutcome:
    """One target complex's zero-shot / floor / ceiling triple."""

    target_seed: int
    transfer: EvaluationResult
    untrained: EvaluationResult
    scratch_best_score: float


@dataclass
class GeneralizationResult:
    """All targets plus the source-training record."""

    source_seed: int
    source_best_score: float
    outcomes: list[TransferOutcome] = field(default_factory=list)

    def summary(self) -> str:
        """Per-target comparison table."""
        rows = []
        for o in self.outcomes:
            rows.append(
                (
                    o.target_seed,
                    f"{o.transfer.mean_best_score:.2f}",
                    f"{o.untrained.mean_best_score:.2f}",
                    f"{o.scratch_best_score:.2f}",
                )
            )
        return render_table(
            ("target seed", "transfer", "untrained", "scratch-trained"),
            rows,
            title=(
                f"Zero-shot generalization (source seed "
                f"{self.source_seed}, source best "
                f"{self.source_best_score:.2f})"
            ),
            align=("r", "r", "r", "r"),
        )


def run_generalization_experiment(
    cfg: DQNDockingConfig,
    *,
    n_targets: int = 2,
    eval_episodes: int = 3,
    runtime=None,
) -> GeneralizationResult:
    """Train on the config's complex; evaluate zero-shot on new ones.

    Target complexes share the size class (receptor/ligand atom counts,
    hence state dimensionality) but differ in seed -- new pocket
    chemistry, new ligand, new geometry.

    With a :class:`~repro.runtime.loop.RuntimeContext`, the source and
    per-target scratch trainings checkpoint under their own phases and
    the (cheap but non-resumable) policy evaluations are memoized in
    ``results.json``, so the whole study survives interruption.
    """
    from repro.runtime.loop import memoized

    if n_targets < 1:
        raise ValueError("n_targets must be >= 1")
    source = run_figure4_experiment(
        cfg, runtime=runtime, phase="generalization-source"
    )
    agent = source.agent
    result = GeneralizationResult(
        source_seed=cfg.complex.seed,
        source_best_score=source.history.best_score,
    )
    decode_eval = lambda d: EvaluationResult(**d)  # noqa: E731
    for k in range(n_targets):
        if runtime is not None:
            runtime.check_interrupt(f"generalization-target-{k}")
        target_seed = cfg.complex.seed + 1000 * (k + 1)
        target_complex_cfg = dataclasses.replace(
            cfg.complex, seed=target_seed
        )
        target_cfg = cfg.replace(complex=target_complex_cfg)
        built = build_complex(target_complex_cfg)
        env = make_env(target_cfg, built)
        try:
            transfer = memoized(
                runtime,
                f"generalization/transfer-{k}",
                lambda: evaluate_policy(
                    env,
                    agent,
                    episodes=eval_episodes,
                    max_steps=cfg.max_steps_per_episode,
                    rng=cfg.seed + k,
                ),
                decode=decode_eval,
            )
            untrained = memoized(
                runtime,
                f"generalization/untrained-{k}",
                lambda: evaluate_policy(
                    env,
                    build_agent_for_env(target_cfg, env),
                    episodes=eval_episodes,
                    max_steps=cfg.max_steps_per_episode,
                    rng=cfg.seed + k,
                ),
                decode=decode_eval,
            )
        finally:
            env.close()
        scratch = run_figure4_experiment(
            target_cfg,
            runtime=runtime,
            phase=f"generalization-scratch-{k}",
        )
        result.outcomes.append(
            TransferOutcome(
                target_seed=target_seed,
                transfer=transfer,
                untrained=untrained,
                scratch_best_score=scratch.history.best_score,
            )
        )
    return result
