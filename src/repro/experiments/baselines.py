"""DQN vs Monte Carlo vs metaheuristics under an equal evaluation budget.

The paper's stated goal: discover "the crystallographic solution ... or
at least positions with similar scores as those obtained with
state-of-the-art Monte Carlo optimization methods".  This experiment
makes that comparison concrete: every method gets the same number of
score evaluations; we report the best score each finds, with the crystal
pose's score as the reference optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.builders import build_complex
from repro.config import DQNDockingConfig
from repro.env.factory import make_env
from repro.experiments.figure4 import build_agent_for_env
from repro.metadock.engine import MetadockEngine
from repro.metadock.metaheuristic import MetaheuristicSchema
from repro.metadock.montecarlo import MonteCarloConfig, MonteCarloOptimizer
from repro.metadock.strategies import STRATEGY_PRESETS
from repro.rl.trainer import Trainer, greedy_rollout
from repro.scoring.composite import interaction_score
from repro.utils.tables import render_table


@dataclass(frozen=True)
class MethodResult:
    """One optimizer's outcome under the shared budget."""

    method: str
    best_score: float
    evaluations: int


@dataclass
class BaselineComparison:
    """All methods' results plus the crystal reference."""

    crystal_score: float
    results: list[MethodResult]

    def best_method(self) -> MethodResult:
        """The winner by best score."""
        return max(self.results, key=lambda r: r.best_score)

    def result_for(self, method: str) -> MethodResult:
        """Look up one method's row."""
        for r in self.results:
            if r.method == method:
                return r
        raise KeyError(f"no result for method {method!r}")

    def summary(self) -> str:
        """Ranked comparison table."""
        rows = [
            (
                r.method,
                f"{r.best_score:.2f}",
                f"{100.0 * r.best_score / self.crystal_score:.1f}%"
                if self.crystal_score
                else "n/a",
                r.evaluations,
            )
            for r in sorted(
                self.results, key=lambda r: r.best_score, reverse=True
            )
        ]
        return render_table(
            ["method", "best score", "% of crystal", "evaluations"],
            rows,
            title=(
                f"Baseline comparison (crystal score "
                f"{self.crystal_score:.2f})"
            ),
            align=["l", "r", "r", "r"],
        )


def run_baseline_comparison(
    cfg: DQNDockingConfig,
    *,
    budget: int = 1500,
    strategies: tuple[str, ...] = ("montecarlo", "local", "scatter", "ga"),
    include_dqn: bool = True,
    dqn_rollout_steps: int = 200,
    runtime=None,
) -> BaselineComparison:
    """Run every optimizer with ``budget`` score evaluations.

    The DQN entry spends its budget on *training* environment steps
    (each step = one evaluation), then reports the best score over a
    greedy deployment rollout plus everything seen while training --
    matching how the paper frames DQN as an anytime learner.

    With a :class:`~repro.runtime.loop.RuntimeContext` attached, each
    finished optimizer's result is memoized in ``results.json`` and DQN
    training checkpoints under the ``baselines-dqn`` phase, so an
    interrupted comparison resumes where it stopped instead of
    re-running every method.
    """
    from repro.runtime.loop import RunLoop, memoized

    built = build_complex(cfg.complex)
    results: list[MethodResult] = []
    decode = lambda d: MethodResult(**d)  # noqa: E731 - local adapter

    for name in strategies:
        if runtime is not None:
            runtime.check_interrupt(f"baselines-{name}")

        def run_strategy(name=name) -> MethodResult:
            engine = MetadockEngine(
                built,
                shift_length=cfg.shift_length,
                rotation_angle_deg=cfg.rotation_angle_deg,
            )
            if name == "montecarlo":
                res = MonteCarloOptimizer(
                    engine,
                    MonteCarloConfig(steps=budget, restarts=3),
                    seed=cfg.seed,
                ).run()
                return MethodResult(
                    "montecarlo", res.best_score, res.evaluations
                )
            params = STRATEGY_PRESETS[name](budget)
            res = MetaheuristicSchema(engine, params, seed=cfg.seed).run()
            return MethodResult(
                f"metaheuristic-{name}", res.best_score, res.evaluations
            )

        results.append(
            memoized(
                runtime, f"baselines/{name}", run_strategy, decode=decode
            )
        )

    if include_dqn:
        env = make_env(cfg, built)
        try:
            agent = build_agent_for_env(cfg, env)
            max_steps = min(cfg.max_steps_per_episode, max(1, budget // 4))
            episodes = max(1, budget // max_steps)
            trainer = Trainer(
                env,
                agent,
                episodes=episodes,
                max_steps_per_episode=max_steps,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
            )
            history = RunLoop(runtime, phase="baselines-dqn").run_episodes(
                trainer
            )

            def run_rollout() -> MethodResult:
                rollout_best, _trace = greedy_rollout(
                    env, agent, dqn_rollout_steps
                )
                best = max(history.best_score, rollout_best)
                return MethodResult(
                    "dqn-docking",
                    best,
                    history.total_steps + dqn_rollout_steps,
                )

            results.append(
                memoized(
                    runtime, "baselines/dqn", run_rollout, decode=decode
                )
            )
        finally:
            env.close()

    crystal = interaction_score(built.receptor, built.ligand_crystal)
    return BaselineComparison(crystal_score=crystal, results=results)
