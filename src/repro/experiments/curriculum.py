"""Multi-complex curriculum: the training-side fix for generalization.

The zero-shot experiment (:mod:`repro.experiments.generalization`) shows
single-complex training transfers nothing.  The obvious remedy the
paper's "scalable to any other scenario" goal implies is training on
*many* complexes at once.  This driver trains one agent over N
same-size-class complexes stepped in lockstep
(:func:`repro.env.factory.make_vector_env` +
:class:`repro.rl.vector_trainer.VectorTrainer`) and evaluates on a
held-out complex, against a single-complex baseline trained with the
same total transition budget.  The ``backend`` knob selects the vector
backend ("sync", "async", or "auto"); the process-parallel async
backend steps the N complexes concurrently (see docs/PARALLELISM.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.chem.builders import build_complex
from repro.config import DQNDockingConfig
from repro.env.factory import make_env
from repro.env.factory import make_vector_env
from repro.experiments.figure4 import build_agent
from repro.rl.evaluation import EvaluationResult, evaluate_policy
from repro.rl.vector_trainer import VectorTrainer
from repro.utils.tables import render_table


@dataclass
class CurriculumResult:
    """Held-out evaluation of curriculum vs single-complex training."""

    n_train_complexes: int
    total_steps: int
    curriculum_eval: EvaluationResult
    single_eval: EvaluationResult
    untrained_eval: EvaluationResult

    def summary(self) -> str:
        """Comparison table on the held-out complex."""
        rows = [
            (
                f"curriculum ({self.n_train_complexes} complexes)",
                f"{self.curriculum_eval.mean_best_score:.2f}",
                f"{self.curriculum_eval.mean_min_rmsd:.2f}",
            ),
            (
                "single complex",
                f"{self.single_eval.mean_best_score:.2f}",
                f"{self.single_eval.mean_min_rmsd:.2f}",
            ),
            (
                "untrained",
                f"{self.untrained_eval.mean_best_score:.2f}",
                f"{self.untrained_eval.mean_min_rmsd:.2f}",
            ),
        ]
        return render_table(
            ("training regime", "held-out best score", "min RMSD"),
            rows,
            title=(
                f"Curriculum transfer ({self.total_steps} transitions "
                f"per regime)"
            ),
            align=("l", "r", "r"),
        )


def _complex_cfg(cfg: DQNDockingConfig, seed: int):
    return dataclasses.replace(cfg.complex, seed=seed)


def _train_curriculum_actor_learner(
    cfg: DQNDockingConfig,
    builts,
    steps: int,
    *,
    align: int,
    tracer=None,
    registry=None,
    runtime=None,
):
    """Curriculum phase on the actor/learner runtime; returns the agent.

    Each training complex gets its own actor process (the built complex
    is inherited through fork, so nothing re-builds in the workers);
    the learner consumes their interleaved transitions round-robin
    exactly like the lockstep vector path consumes env columns.
    ``steps`` must already be a multiple of ``align`` (the broadcast
    cadence ``n_complexes * actor_sync_every``).
    """
    from repro.experiments.figure4 import build_agent_for_env
    from repro.rl.distributed import ActorLearnerTrainer
    from repro.runtime.loop import RunLoop

    def _env_fn(built):
        return lambda: make_env(cfg, built)

    probe = make_env(cfg, builts[0])
    try:
        spec = getattr(probe, "observation_spec", None)
        state_dim = int(probe.state_dim)
        state_dtype = getattr(probe, "state_dtype", np.float64)
        agent = build_agent_for_env(cfg, probe)
    finally:
        probe.close()
    if tracer is not None:
        agent.tracer = tracer

    checkpoint_every = (
        runtime.checkpoint_every if runtime is not None else 0
    )
    if checkpoint_every > 0:
        # checkpoint_every counts env steps here; round to the cadence.
        segment_steps = max(
            align,
            ((checkpoint_every + align - 1) // align) * align,
        )
    else:
        segment_steps = None

    trainer = ActorLearnerTrainer(
        [_env_fn(b) for b in builts],
        agent,
        state_dim=state_dim,
        state_dtype=state_dtype,
        sync_every=cfg.actor_sync_every,
        ring_capacity=cfg.actor_ring_capacity,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
        observation_spec=spec,
        tracer=tracer,
        metrics=registry,
        seed=cfg.seed,
    )
    try:
        RunLoop(runtime, phase="curriculum").run_steps(
            trainer, steps, segment_steps=segment_steps
        )
    finally:
        trainer.close()
    return agent


def run_curriculum_experiment(
    cfg: DQNDockingConfig,
    *,
    n_train_complexes: int = 4,
    total_steps: int | None = None,
    eval_episodes: int = 3,
    backend: str = "sync",
    telemetry=None,
    runtime=None,
) -> CurriculumResult:
    """Train curriculum vs single-complex agents; evaluate held-out.

    The held-out complex's seed is disjoint from every training seed.
    Both regimes see exactly ``total_steps`` environment transitions
    (default: the config's episodes x max-steps budget; with the
    actor/learner runtime it rounds up to the broadcast cadence).
    ``backend`` selects the vector-env backend for the curriculum
    phase -- unless ``cfg.trainer == "actor-learner"``, which runs the
    curriculum phase on the multi-process actor/learner runtime with
    one actor per training complex (the single-complex baseline stays
    on the sync vector path either way); a
    :class:`repro.telemetry.TelemetryRun` passed as ``telemetry``
    receives the backend's spans and ``vector_env/*`` metrics.

    With a :class:`~repro.runtime.loop.RuntimeContext`, both training
    regimes run in checkpointed step segments (phases ``curriculum``
    and ``single``) and the held-out evaluations are memoized, so an
    interrupted study resumes where it stopped.
    """
    from repro.runtime.loop import RunLoop, memoized

    if n_train_complexes < 2:
        raise ValueError("curriculum needs at least 2 complexes")
    steps = total_steps or cfg.episodes * cfg.max_steps_per_episode
    actor_learner = cfg.trainer == "actor-learner"
    if actor_learner:
        # One actor process per training complex; the transition budget
        # rounds up to the weight-broadcast cadence so checkpoint
        # boundaries stay aligned (both regimes use the rounded budget
        # to keep the comparison fair).
        align = n_train_complexes * cfg.actor_sync_every
        steps = max(align, ((steps + align - 1) // align) * align)
    tracer = telemetry.tracer if telemetry is not None else None
    registry = telemetry.registry if telemetry is not None else None

    train_seeds = [
        cfg.complex.seed + 1000 * k for k in range(n_train_complexes)
    ]
    holdout_seed = cfg.complex.seed + 999999

    builts = [build_complex(_complex_cfg(cfg, s)) for s in train_seeds]
    if actor_learner:
        curriculum_agent = _train_curriculum_actor_learner(
            cfg,
            builts,
            steps,
            align=align,
            tracer=tracer,
            registry=registry,
            runtime=runtime,
        )
    else:
        # Curriculum agent: N complexes in lockstep.
        venv = make_vector_env(
            cfg,
            builts=builts,
            n_envs=n_train_complexes,
            backend=backend,
            tracer=tracer,
            metrics=registry,
        )
        try:
            curriculum_agent = build_agent(
                cfg, venv.state_dim, venv.n_actions
            )
            vtrainer = VectorTrainer(
                venv,
                curriculum_agent,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
                tracer=tracer,
            )
            RunLoop(runtime, phase="curriculum").run_steps(vtrainer, steps)
        finally:
            venv.close()

    # Single-complex baseline at the same budget (serial: one env).
    single_built = builts[0]
    single_venv = make_vector_env(
        cfg, builts=[single_built], backend="sync"
    )
    try:
        single_agent = build_agent(
            cfg, single_venv.state_dim, single_venv.n_actions
        )
        single_vtrainer = VectorTrainer(
            single_venv,
            single_agent,
            learning_start=cfg.learning_start,
            target_update_steps=cfg.target_update_steps,
            train_interval=cfg.train_interval,
        )
        RunLoop(runtime, phase="single").run_steps(single_vtrainer, steps)
    finally:
        single_venv.close()

    # Held-out evaluation.
    holdout_built = build_complex(_complex_cfg(cfg, holdout_seed))
    env = make_env(cfg, holdout_built)
    decode_eval = lambda d: EvaluationResult(**d)  # noqa: E731
    try:
        curriculum_eval = memoized(
            runtime,
            "curriculum/eval-curriculum",
            lambda: evaluate_policy(
                env, curriculum_agent, episodes=eval_episodes,
                max_steps=cfg.max_steps_per_episode, rng=cfg.seed,
            ),
            decode=decode_eval,
        )
        single_eval = memoized(
            runtime,
            "curriculum/eval-single",
            lambda: evaluate_policy(
                env, single_agent, episodes=eval_episodes,
                max_steps=cfg.max_steps_per_episode, rng=cfg.seed,
            ),
            decode=decode_eval,
        )
        untrained_eval = memoized(
            runtime,
            "curriculum/eval-untrained",
            lambda: evaluate_policy(
                env,
                build_agent(cfg, env.state_dim, env.n_actions),
                episodes=eval_episodes,
                max_steps=cfg.max_steps_per_episode,
                rng=cfg.seed,
            ),
            decode=decode_eval,
        )
    finally:
        env.close()
    return CurriculumResult(
        n_train_complexes=n_train_complexes,
        total_steps=steps,
        curriculum_eval=curriculum_eval,
        single_eval=single_eval,
        untrained_eval=untrained_eval,
    )
