"""Figure 4: the training curve of average max predicted Q per episode.

The paper trains 1,800 episodes on 2BSM and reports that the average
maximum predicted Q rises to ~35,000 around episode 500, then declines to
~27,000 by episode 1,800 -- non-convergence.  The absolute magnitudes are
artefacts of unnormalized raw-coordinate inputs; the reproducible
content is the *shape*: rise from the start of learning to an interior
peak, then decline.  :func:`curve_shape_metrics` quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DQNDockingConfig
from repro.env.factory import make_env
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.distributional import DistributionalDQNAgent
from repro.rl.trainer import Trainer, TrainingHistory


@dataclass(frozen=True)
class CurveShape:
    """Shape descriptors of a training curve."""

    first: float
    peak: float
    last: float
    peak_index: int
    n_points: int

    @property
    def rose(self) -> bool:
        """Did the curve rise meaningfully above its start?"""
        span = abs(self.peak - self.first)
        return self.peak > self.first and span > 1e-9

    @property
    def declined_after_peak(self) -> bool:
        """Did it come back down after the peak (non-convergence)?"""
        return self.last < self.peak

    @property
    def peak_interior(self) -> bool:
        """Is the peak strictly inside the run (not at either end)?"""
        return 0 < self.peak_index < self.n_points - 1

    @property
    def paper_shape(self) -> bool:
        """The Figure 4 signature: rise -> interior peak -> decline."""
        return self.rose and self.declined_after_peak and self.peak_interior


def curve_shape_metrics(series: np.ndarray, smooth: int = 5) -> CurveShape:
    """Shape metrics of a (possibly noisy) curve after box smoothing."""
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        return CurveShape(0.0, 0.0, 0.0, 0, 0)
    if smooth > 1 and arr.size >= smooth:
        kernel = np.ones(smooth) / smooth
        arr = np.convolve(arr, kernel, mode="valid")
    peak_idx = int(np.argmax(arr))
    return CurveShape(
        first=float(arr[0]),
        peak=float(arr[peak_idx]),
        last=float(arr[-1]),
        peak_index=peak_idx,
        n_points=int(arr.size),
    )


@dataclass
class Figure4Result:
    """Everything the Figure 4 reproduction produces."""

    config: DQNDockingConfig
    history: TrainingHistory
    #: The trained agent (for deployment rollouts); excluded from repr.
    agent: object = None

    @property
    def series(self) -> np.ndarray:
        """Average max predicted Q per (learning-active) episode."""
        return self.history.figure4_series()

    def shape(self, smooth: int = 5) -> CurveShape:
        """Shape metrics of the measured curve."""
        return curve_shape_metrics(self.series, smooth=smooth)

    def summary(self) -> str:
        """Run report with the ASCII curve."""
        s = self.shape()
        lines = [
            self.history.summary(),
            "",
            f"curve shape: first={s.first:.3f} peak={s.peak:.3f}"
            f"@{s.peak_index} last={s.last:.3f} "
            f"(rise={s.rose} decline={s.declined_after_peak})",
            "",
            self.history.figure4_plot(),
        ]
        return "\n".join(lines)


def build_agent(
    cfg: DQNDockingConfig,
    state_dim: int,
    n_actions: int,
    *,
    static_state=None,
):
    """Agent factory honouring the config's ``variant``.

    ``static_state`` (the constant receptor prefix from a compact-mode
    environment) switches the DQN agent to compact replay; ``state_dim``
    must then be the paper-shaped *full* dimension, not the emitted
    tail length.
    """
    agent_cfg = AgentConfig.from_run_config(cfg, state_dim, n_actions)
    if cfg.variant == "distributional":
        if static_state is not None:
            raise ValueError(
                "compact states are not supported with the "
                "distributional variant"
            )
        return DistributionalDQNAgent(agent_cfg)
    return DQNAgent(agent_cfg, static_state=static_state)


def build_agent_for_env(cfg: DQNDockingConfig, env):
    """Build the agent matched to ``env``'s observation codec.

    The env's :class:`~repro.env.observation.ObservationSpec` decides
    the Q-network input width: compact envs emit float32 dynamic tails,
    so the agent is built on the *full* paper-shaped dimension with the
    env's constant receptor prefix; descriptor envs consume the emitted
    vector directly; raw (and spec-less custom) envs get the classic
    pairing.  Works through :class:`repro.env.wrappers.Wrapper` chains
    (attribute delegation).
    """
    spec = getattr(env, "observation_spec", None)
    if spec is None:
        if getattr(env, "compact_states", False):
            return build_agent(
                cfg,
                env.full_state_dim,
                env.n_actions,
                static_state=env.static_state(),
            )
        return build_agent(cfg, env.state_dim, env.n_actions)
    if spec.mode == "compact":
        return build_agent(
            cfg,
            spec.full_dim,
            env.n_actions,
            static_state=env.static_state(),
        )
    return build_agent(cfg, spec.q_input_dim, env.n_actions)


def run_figure4_experiment(
    cfg: DQNDockingConfig,
    *,
    on_episode_end=None,
    telemetry=None,
    runtime=None,
    phase: str = "figure4",
) -> Figure4Result:
    """Train DQN-Docking per Algorithm 2 and collect the Figure 4 series.

    At :data:`repro.config.PAPER_CONFIG` scale this is the full Section 4
    experiment (hours); tests and benches use
    :func:`repro.config.ci_scale_config` presets.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.run.TelemetryRun`: its tracer is threaded
    through trainer, agent, environment, and engine (so spans nest as
    train/episode/env-step/engine-step/score), and its callback streams
    per-step/per-episode events.  The caller owns finalization.

    ``runtime`` is an optional
    :class:`~repro.runtime.loop.RuntimeContext`: training then runs
    through a checkpointing :class:`~repro.runtime.loop.RunLoop` under
    the phase name ``phase`` -- snapshots on cadence and shutdown, and
    on re-entry the run resumes (or short-circuits when the phase
    already completed).  ``None`` keeps the classic direct path.
    """
    from repro.runtime.loop import RunLoop

    if cfg.trainer == "actor-learner":
        return _run_figure4_actor_learner(
            cfg,
            on_episode_end=on_episode_end,
            telemetry=telemetry,
            runtime=runtime,
            phase=phase,
        )
    env = make_env(cfg)
    callbacks = []
    tracer = None
    if telemetry is not None:
        tracer = telemetry.tracer
        callbacks.append(telemetry.callback())
        env.tracer = tracer
        env.engine.tracer = tracer
        env.engine.metrics = telemetry.registry
    try:
        # Compact mode: the env emits float32 dynamic tails; the agent
        # gets the full paper-shaped dimension plus the constant
        # receptor prefix and reconstructs states on demand.
        agent = build_agent_for_env(cfg, env)
        if tracer is not None:
            agent.tracer = tracer
        trainer = Trainer(
            env,
            agent,
            episodes=cfg.episodes,
            max_steps_per_episode=cfg.max_steps_per_episode,
            learning_start=cfg.learning_start,
            target_update_steps=cfg.target_update_steps,
            train_interval=cfg.train_interval,
            on_episode_end=on_episode_end,
            callbacks=callbacks,
            tracer=tracer,
        )
        history = RunLoop(runtime, phase=phase).run_episodes(trainer)
    finally:
        env.close()
    return Figure4Result(config=cfg, history=history, agent=agent)


def aligned_step_budget(cfg: DQNDockingConfig) -> tuple[int, int]:
    """(total_steps, segment_steps) for an actor-learner figure4 run.

    The episode budget ``episodes * max_steps_per_episode`` becomes a
    transition budget, rounded up to a multiple of ``num_actors *
    actor_sync_every`` so every checkpoint boundary lands exactly on a
    weight-broadcast boundary (the alignment
    :meth:`~repro.rl.distributed.ActorLearnerTrainer.run` enforces).
    The segment length comes from the runtime's episode-denominated
    ``checkpoint_every``, converted and rounded the same way.
    """
    align = cfg.num_actors * cfg.actor_sync_every

    def round_up(steps: int) -> int:
        return max(align, ((steps + align - 1) // align) * align)

    total = round_up(cfg.episodes * cfg.max_steps_per_episode)
    return total, align


def _run_figure4_actor_learner(
    cfg: DQNDockingConfig,
    *,
    on_episode_end=None,
    telemetry=None,
    runtime=None,
    phase: str = "figure4",
) -> Figure4Result:
    """The figure4 experiment under the actor/learner runtime.

    N actor processes each own an env built by :func:`make_env` over
    one shared complex (inherited through fork, so the receptor builds
    once); the learner consumes their transitions round-robin and
    reconstructs the per-episode Figure 4 series from the ring payloads
    (see :mod:`repro.rl.distributed`).  Engine spans stay inside the
    actor processes and are not merged into the parent's telemetry;
    the per-actor throughput metrics cover that ground instead.
    """
    from repro.chem.builders import build_complex
    from repro.rl.distributed import ActorLearnerTrainer
    from repro.runtime.loop import RunLoop

    built = build_complex(cfg.complex)

    def env_fn():
        return make_env(cfg, built)

    # Probe once in the parent for the codec geometry the agent and the
    # transition rings must match; actors rebuild their own envs.
    probe = make_env(cfg, built)
    try:
        spec = getattr(probe, "observation_spec", None)
        state_dim = int(probe.state_dim)
        state_dtype = getattr(probe, "state_dtype", np.float64)
        agent = build_agent_for_env(cfg, probe)
    finally:
        probe.close()

    tracer = None
    metrics = None
    if telemetry is not None:
        tracer = telemetry.tracer
        metrics = telemetry.registry
        agent.tracer = tracer

    total_steps, segment_align = aligned_step_budget(cfg)
    checkpoint_every = (
        runtime.checkpoint_every if runtime is not None else 0
    )
    if checkpoint_every > 0:
        # The CLI flag counts episodes; convert and align.
        raw = checkpoint_every * cfg.max_steps_per_episode
        segment_steps = max(
            segment_align,
            ((raw + segment_align - 1) // segment_align) * segment_align,
        )
    else:
        segment_steps = None

    trainer = ActorLearnerTrainer(
        [env_fn] * cfg.num_actors,
        agent,
        state_dim=state_dim,
        state_dtype=state_dtype,
        sync_every=cfg.actor_sync_every,
        ring_capacity=cfg.actor_ring_capacity,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
        observation_spec=spec,
        tracer=tracer,
        metrics=metrics,
        seed=cfg.seed,
        on_episode_end=on_episode_end,
    )
    try:
        RunLoop(runtime, phase=phase).run_steps(
            trainer, total_steps, segment_steps=segment_steps
        )
    finally:
        trainer.close()
    return Figure4Result(config=cfg, history=trainer.history, agent=agent)
