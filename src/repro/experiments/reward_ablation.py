"""Reward-scheme ablation: probing the paper's reward transformation.

Section 3 fixes the reward to the *sign* of the score change.  That
choice discards magnitude information (a +400 jump into the pocket and a
+0.01 rotation jitter earn the same +1).  This experiment trains
identical agents under alternative reward functions:

- ``sign``       -- the paper's rule, sign(delta score);
- ``clipped``    -- delta score clipped to [-1, 1] (keeps magnitude
  information for small changes);
- ``scaled``     -- tanh(delta score / scale), a smooth clip;
- ``potential``  -- potential-based shaping on the distance to the
  crystallographic pose (gamma * phi(s') - phi(s), Ng et al. 1999):
  an upper-bound oracle that leaks the answer, included to calibrate
  how much headroom reward design leaves.

Each variant wraps the same environment; outcomes are compared on best
docking score and success rate, not on the (incomparable) rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.builders import build_complex
from repro.config import DQNDockingConfig
from repro.env.factory import make_env
from repro.env.wrappers import Wrapper
from repro.experiments.figure4 import build_agent_for_env
from repro.rl.trainer import Trainer, TrainingHistory
from repro.utils.tables import render_table


class RewardScheme(Wrapper):
    """Re-derive the reward from the info dict under a named scheme."""

    def __init__(self, env, scheme: str, *, scale: float = 50.0, gamma: float = 0.99):
        super().__init__(env)
        if scheme not in ("sign", "clipped", "scaled", "potential"):
            raise ValueError(f"unknown reward scheme {scheme!r}")
        self.scheme = scheme
        self.scale = float(scale)
        self.gamma = float(gamma)
        self._last_phi: float | None = None

    def _phi(self, info) -> float:
        # Negative distance to the crystal pose: higher is better.
        return -float(info.get("crystal_rmsd", 0.0))

    def reset(self):
        self._last_phi = None
        return self.env.reset()

    def step(self, action: int):
        state, _reward, done, info = self.env.step(action)
        delta = float(info.get("score_delta", 0.0))
        if self.scheme == "sign":
            reward = float(np.sign(delta))
        elif self.scheme == "clipped":
            reward = float(np.clip(delta, -1.0, 1.0))
        elif self.scheme == "scaled":
            reward = float(np.tanh(delta / self.scale))
        else:  # potential
            phi = self._phi(info)
            prev = phi if self._last_phi is None else self._last_phi
            reward = self.gamma * phi - prev
            self._last_phi = phi
        return state, reward, done, info


@dataclass
class RewardAblationResult:
    """Per-scheme training outcomes."""

    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def summary(self) -> str:
        """Comparison table on docking outcomes."""
        rows = []
        for name, h in self.histories.items():
            rows.append(
                (
                    name,
                    f"{h.best_score:.2f}",
                    f"{h.docking_success_rate(2.0):.1%}",
                    f"{np.nanmin(h.rmsd_series()):.2f}",
                )
            )
        rows.sort(key=lambda r: -float(r[1]))
        return render_table(
            ("reward scheme", "best score", "success@2A", "min RMSD"),
            rows,
            title="Reward-scheme ablation (identical agents/budgets)",
            align=("l", "r", "r", "r"),
        )


def run_reward_ablation(
    cfg: DQNDockingConfig,
    schemes: tuple[str, ...] = ("sign", "clipped", "scaled", "potential"),
    *,
    runtime=None,
) -> RewardAblationResult:
    """Train one agent per reward scheme on the identical complex.

    With a :class:`~repro.runtime.loop.RuntimeContext`, every scheme
    trains under its own checkpoint phase (``reward-<scheme>``):
    finished schemes short-circuit on resume, the in-flight one
    continues from its snapshot.
    """
    from repro.runtime.loop import RunLoop

    built = build_complex(cfg.complex)
    result = RewardAblationResult()
    for scheme in schemes:
        env = RewardScheme(
            make_env(cfg, built), scheme, gamma=cfg.gamma
        )
        try:
            agent = build_agent_for_env(cfg, env)
            trainer = Trainer(
                env,
                agent,
                episodes=cfg.episodes,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
            )
            history = RunLoop(
                runtime, phase=f"reward-{scheme}"
            ).run_episodes(trainer)
            result.histories[scheme] = history
        finally:
            env.close()
    return result
