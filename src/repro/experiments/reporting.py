"""Report generation: runs every experiment and emits EXPERIMENTS.md.

``python -m repro report`` (or :func:`generate_report`) executes the
whole reproduction suite at CI scale and renders a markdown document
with one paper-vs-measured section per table/figure.  EXPERIMENTS.md in
the repository root is this output (plus hand-written commentary), so
the document is regenerable by anyone.
"""

from __future__ import annotations

import time

import numpy as np

from repro.chem.builders import build_complex
from repro.config import ComplexConfig, ci_scale_config
from repro.experiments.ablations import run_comm_ablation
from repro.experiments.baselines import run_baseline_comparison
from repro.experiments.figure4 import run_figure4_experiment
from repro.experiments.geometry import run_geometry_experiment
from repro.experiments.table1 import render_table1, verify_paper_defaults
from repro.metadock.blind import blind_dock
from repro.scoring.composite import interaction_score
from repro.scoring.reference import sequential_score_algorithm1
from repro.telemetry.manifest import RunManifest


def _section_table1() -> str:
    problems = verify_paper_defaults()
    status = (
        "all 20 published values match the config defaults exactly"
        if not problems
        else "MISMATCHES: " + "; ".join(problems)
    )
    return (
        "## Table 1 — hyperparameters\n\n"
        f"**Paper:** 20 hyperparameter rows (14 RL + 6 DL).\n"
        f"**Measured:** {status}.\n\n"
        "```\n" + render_table1() + "\n```\n"
    )


def _section_geometry(cfg: ComplexConfig) -> str:
    report = run_geometry_experiment(cfg)
    return (
        "## Figures 1 & 3 — complex geometry\n\n"
        "**Paper:** 2BSM receptor–ligand pair; initial pose (A) displaced "
        "from the protein, crystallographic pose (B) in a recess; deep "
        "penetration drives the score below −100,000.\n"
        f"**Measured (synthetic {cfg.receptor_atoms}+{cfg.ligand_atoms}-atom "
        "complex):**\n\n"
        f"- crystal pose score {report.crystal.score:.2f} at "
        f"{report.crystal_distance:.1f} Å from the receptor center\n"
        f"- initial pose score {report.initial.score:.2f} at "
        f"{report.initial_distance:.1f} Å (crystal wins: "
        f"{report.pocket_is_optimum})\n"
        f"- deep-overlap score {report.overlap.score:.3e} "
        f"(< −100,000: {report.overlap_is_catastrophic})\n"
    )


def _section_scoring(cfg: ComplexConfig) -> str:
    built = build_complex(cfg)
    rec, lig = built.receptor, built.ligand_crystal
    t0 = time.perf_counter()
    seq = sequential_score_algorithm1(rec, lig)[0]
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    reps = 20
    for _ in range(reps):
        vec = interaction_score(rec, lig)
    t_vec = (time.perf_counter() - t0) / reps
    return (
        "## Equation 1 / Algorithm 1 — scoring function\n\n"
        "**Paper:** Eq. 1 = electrostatics + Lennard-Jones + H-bond; "
        "Algorithm 1 is the sequential baseline METADOCK parallelizes.\n"
        f"**Measured ({rec.n_atoms}×{lig.n_atoms} atom pairs):**\n\n"
        f"- parity: sequential {seq:.6f} vs vectorized {vec:.6f} "
        f"(relative error {abs(seq - vec) / abs(seq):.2e})\n"
        f"- sequential Algorithm 1: {t_seq * 1e3:.1f} ms/pose; vectorized: "
        f"{t_vec * 1e3:.3f} ms/pose — speedup {t_seq / t_vec:.0f}×\n"
    )


def _section_figure4(quick: bool) -> str:
    cfg = ci_scale_config(
        episodes=30 if quick else 100, seed=0, learning_rate=0.002
    )
    result = run_figure4_experiment(cfg)
    s = result.shape(smooth=5)
    return (
        "## Figure 4 — training curve (avg max predicted Q per episode)\n\n"
        "**Paper:** rises to ≈35,000 around episode 500 of 1,800, then "
        "declines to ≈27,000 — no convergence.\n"
        f"**Measured ({cfg.episodes} episodes, reduced scale):** first "
        f"{s.first:.2f} → peak {s.peak:.2f} at measured-episode "
        f"{s.peak_index} → final {s.last:.2f} "
        f"(rise: {s.rose}; decline after peak: {s.declined_after_peak}).\n\n"
        "```\n" + result.history.figure4_plot() + "\n```\n"
    )


def _section_baselines(quick: bool) -> str:
    cfg = ci_scale_config(episodes=40, seed=0, learning_rate=0.002)
    comp = run_baseline_comparison(
        cfg,
        budget=400 if quick else 1200,
        strategies=("montecarlo", "local", "scatter", "ga"),
    )
    return (
        "## Section 4 — DQN vs Monte Carlo vs metaheuristics\n\n"
        "**Paper:** goal is matching state-of-the-art Monte Carlo "
        "optimization; the honest result is that DQN-Docking is not "
        "there yet.\n"
        "**Measured (equal score-evaluation budgets):**\n\n"
        "```\n" + comp.summary() + "\n```\n"
    )


def _section_comm(quick: bool) -> str:
    cfg = ci_scale_config(episodes=4, seed=0)
    table = run_comm_ablation(cfg, steps=100 if quick else 300)
    return (
        "## Section 5 limitation 1 — engine↔agent communication\n\n"
        "**Paper:** state+score round-trip through two files on disk; a "
        "RAM-based channel is proposed as the fix.\n"
        "**Measured:**\n\n"
        "```\n" + table.summary() + "\n```\n"
    )


def _section_blind(cfg: ComplexConfig, quick: bool) -> str:
    built = build_complex(cfg)
    result = blind_dock(
        built,
        n_spots=8,
        budget_per_spot=100 if quick else 250,
        seed=0,
        n_workers=1,
    )
    return (
        "## METADOCK §2.1 — blind docking over surface spots\n\n"
        "**Paper (via METADOCK/BINDSURF):** the protein surface is "
        "divided into independent regions searched in parallel.\n"
        f"**Measured:** winning spot lands "
        f"{result.best.pocket_distance:.1f} Å from the true pocket "
        f"center.\n\n"
        "```\n" + result.summary() + "\n```\n"
    )


def generate_report(*, quick: bool = True) -> str:
    """Run the suite and return the markdown report."""
    geo_cfg = ComplexConfig(
        receptor_atoms=300,
        ligand_atoms=14,
        receptor_radius=11.0,
        pocket_depth=4.0,
        initial_offset=8.0,
        rotatable_bonds=2,
        seed=2018,
    )
    manifest = RunManifest.create(
        "report", seed=0, config={"quick": quick}
    )
    provenance = ", ".join(
        p
        for p in (
            f"repro {manifest.version}",
            f"run `{manifest.run_id}`",
            f"seed {manifest.seed}",
            f"git `{manifest.git_sha[:12]}`" if manifest.git_sha else None,
            f"started {manifest.started_at}",
        )
        if p
    )
    sections = [
        "# EXPERIMENTS — paper vs. measured\n\n"
        f"Generated by `python -m repro report` ({provenance}). "
        "All numbers below are measured at reduced (CI) scale; the "
        "paper-scale pipeline is exercised by `examples/paper_scale.py`. "
        "Shape agreement — who wins, what rises/declines, where "
        "catastrophes occur — is the reproduction target; absolute "
        "magnitudes differ (simulator substrate, reduced scale; see "
        "DESIGN.md §5).\n",
        _section_table1(),
        _section_geometry(geo_cfg),
        _section_scoring(geo_cfg),
        _section_figure4(quick),
        _section_baselines(quick),
        _section_comm(quick),
        _section_blind(geo_cfg, quick),
    ]
    manifest.finalize()
    sections.append(
        f"\n---\nrun `{manifest.run_id}` finished {manifest.finished_at}; "
        f"report wall time: {manifest.duration_seconds:.1f}s\n"
    )
    return "\n".join(sections)
