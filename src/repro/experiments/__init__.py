"""Experiment drivers: one module per paper table/figure plus ablations.

Each driver is a pure function from a config to a result object with a
``summary()`` string, so tests assert on the result and benches time the
run while humans read the report.  The experiment <-> module map lives in
DESIGN.md; paper-vs-measured numbers land in EXPERIMENTS.md.
"""

from repro.experiments.table1 import render_table1, verify_paper_defaults
from repro.experiments.figure4 import (
    Figure4Result,
    run_figure4_experiment,
    curve_shape_metrics,
)
from repro.experiments.geometry import GeometryReport, run_geometry_experiment
from repro.experiments.baselines import (
    BaselineComparison,
    run_baseline_comparison,
)
from repro.experiments.ablations import (
    AblationResult,
    run_comm_ablation,
    run_variant_ablation,
)
from repro.experiments.reward_ablation import (
    RewardAblationResult,
    RewardScheme,
    run_reward_ablation,
)
from repro.experiments.sweep import SweepResult, run_sweep
from repro.experiments.generalization import (
    GeneralizationResult,
    run_generalization_experiment,
)
from repro.experiments.curriculum import (
    CurriculumResult,
    run_curriculum_experiment,
)
from repro.experiments.reporting import generate_report

__all__ = [
    "render_table1",
    "verify_paper_defaults",
    "Figure4Result",
    "run_figure4_experiment",
    "curve_shape_metrics",
    "GeometryReport",
    "run_geometry_experiment",
    "BaselineComparison",
    "run_baseline_comparison",
    "AblationResult",
    "run_comm_ablation",
    "run_variant_ablation",
    "RewardAblationResult",
    "RewardScheme",
    "run_reward_ablation",
    "SweepResult",
    "run_sweep",
    "GeneralizationResult",
    "run_generalization_experiment",
    "CurriculumResult",
    "run_curriculum_experiment",
    "generate_report",
]
