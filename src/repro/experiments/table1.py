"""Table 1: the hyperparameter table, regenerated from the config.

The defaults of :class:`repro.config.DQNDockingConfig` *are* the paper's
Table 1; :func:`verify_paper_defaults` asserts every published value, and
:func:`render_table1` prints the table in the paper's layout.
"""

from __future__ import annotations

from repro.config import DQNDockingConfig, PAPER_CONFIG
from repro.utils.tables import render_table

#: The published values, transcribed from the paper (key -> value).
PAPER_TABLE1 = {
    "episodes": 1800,
    "max_steps_per_episode": 1000,
    "state_space": 16599,
    "action_space": 12,
    "shift_length": 1.0,
    "rotation_angle_deg": 0.5,
    "initial_exploration_steps": 20000,
    "epsilon_start": 1.0,
    "epsilon_final": 0.05,
    "epsilon_decay": 4.5e-5,
    "gamma": 0.99,
    "replay_capacity": 400000,
    "learning_start": 10000,
    "target_update_steps": 1000,
    "hidden_layers": 2,
    "hidden_size": 135,
    "activation": "relu",
    "update_rule": "rmsprop",
    "learning_rate": 0.00025,
    "minibatch_size": 32,
}


def verify_paper_defaults(cfg: DQNDockingConfig | None = None) -> list[str]:
    """Return mismatches between ``cfg`` and the published Table 1.

    An empty list means exact agreement (the tests require this for
    :data:`repro.config.PAPER_CONFIG`).
    """
    cfg = cfg or PAPER_CONFIG
    mismatches = []
    for key, expected in PAPER_TABLE1.items():
        actual = getattr(cfg, key)
        if actual != expected:
            mismatches.append(f"{key}: paper={expected!r} config={actual!r}")
    return mismatches


def render_table1(cfg: DQNDockingConfig | None = None) -> str:
    """The hyperparameter table in the paper's row order."""
    cfg = cfg or PAPER_CONFIG
    return render_table(
        ["Hyperparameter", "Value", "Description"],
        cfg.table1_rows(),
        title="Table 1: Values of the hyperparameters used in DQN-Docking",
        align=["l", "r", "l"],
    )
