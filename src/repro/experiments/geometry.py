"""Figures 1 & 3: the 2BSM complex geometry and the two reference poses.

These figures are molecular renderings; their quantitative content --
which this experiment reproduces and asserts -- is:

- the complex has the paper's atom counts (receptor 3,264 / ligand 45 at
  full scale);
- the crystallographic pose (Figure 3 B) sits in a receptor recess and
  scores far better than the displaced initial pose (Figure 3 A);
- moving *through* the receptor produces the catastrophic negative
  scores that motivate the deep-penetration rule.

The report renders a coarse ASCII depth-map projection of the complex so
the pocket is visible in terminal logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.builders import BuiltComplex, build_complex
from repro.config import ComplexConfig
from repro.scoring.composite import ScoreBreakdown, interaction_breakdown


@dataclass
class GeometryReport:
    """Scores and distances characterizing the built complex."""

    built: BuiltComplex
    crystal: ScoreBreakdown
    initial: ScoreBreakdown
    overlap: ScoreBreakdown
    crystal_distance: float
    initial_distance: float

    @property
    def pocket_is_optimum(self) -> bool:
        """Crystal pose must beat the displaced pose decisively."""
        return self.crystal.score > self.initial.score

    @property
    def overlap_is_catastrophic(self) -> bool:
        """Deep penetration must score far below the paper's -100k rule."""
        return self.overlap.score < -100000.0

    def summary(self) -> str:
        """Human-readable report with the ASCII projection."""
        lines = [
            f"receptor atoms: {self.built.receptor.n_atoms}   "
            f"ligand atoms: {self.built.ligand_crystal.n_atoms}",
            f"crystal pose:  score {self.crystal.score:12.2f}  "
            f"(elec {self.crystal.electrostatic:.1f}, "
            f"LJ {self.crystal.lennard_jones:.1f}, "
            f"HB {self.crystal.hydrogen_bond:.1f})  "
            f"dist {self.crystal_distance:.1f} A",
            f"initial pose:  score {self.initial.score:12.2f}  "
            f"dist {self.initial_distance:.1f} A",
            f"overlap pose:  score {self.overlap.score:12.3e}",
            "",
            ascii_projection(self.built),
        ]
        return "\n".join(lines)


def ascii_projection(
    built: BuiltComplex, width: int = 64, height: int = 28
) -> str:
    """Coarse x-z projection: receptor '.', pocket lining ':', ligand
    crystal 'B', ligand initial 'A' (Figure 3's labelling)."""
    rec = built.receptor.coords
    all_pts = np.concatenate(
        [rec, built.ligand_crystal.coords, built.ligand_initial.coords]
    )
    lo = all_pts.min(axis=0)
    hi = all_pts.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)

    grid = [[" "] * width for _ in range(height)]

    def plot(points: np.ndarray, ch: str) -> None:
        xs = ((points[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int)
        zs = ((points[:, 2] - lo[2]) / span[2] * (height - 1)).astype(int)
        for x, z in zip(xs, zs):
            grid[height - 1 - z][x] = ch

    plot(rec, ".")
    lining = np.abs(built.receptor.charges + 0.55) < 0.25
    plot(rec[lining], ":")
    plot(built.ligand_crystal.coords, "B")
    plot(built.ligand_initial.coords, "A")
    return "\n".join("".join(row) for row in grid)


def run_geometry_experiment(cfg: ComplexConfig) -> GeometryReport:
    """Build the complex and score the three reference poses."""
    built = build_complex(cfg)
    crystal = interaction_breakdown(built.receptor, built.ligand_crystal)
    initial = interaction_breakdown(built.receptor, built.ligand_initial)
    # Deep-penetration pose: crystal pose pushed toward the receptor core.
    depth = cfg.pocket_depth + 0.6 * cfg.receptor_radius
    overlap_lig = built.ligand_crystal.translated(-built.pocket_axis * depth)
    overlap = interaction_breakdown(built.receptor, overlap_lig)
    center = built.receptor.center_of_mass()
    return GeometryReport(
        built=built,
        crystal=crystal,
        initial=initial,
        overlap=overlap,
        crystal_distance=float(
            np.linalg.norm(built.ligand_crystal.center_of_mass() - center)
        ),
        initial_distance=float(
            np.linalg.norm(built.ligand_initial.center_of_mass() - center)
        ),
    )
