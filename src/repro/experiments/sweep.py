"""Hyperparameter sweeps over the "set empirically" knobs.

Table 1 annotates several values as empirical choices (target-network
period C, activation, learning rate).  This driver sweeps one knob at a
time with everything else pinned, reporting the training-curve shape and
docking outcomes per setting -- the study the paper defers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.config import DQNDockingConfig
from repro.experiments.figure4 import (
    CurveShape,
    Figure4Result,
    run_figure4_experiment,
)
from repro.utils.tables import render_table


@dataclass
class SweepResult:
    """Outcomes per swept value."""

    parameter: str
    results: dict[Any, Figure4Result] = field(default_factory=dict)

    def shapes(self) -> dict[Any, CurveShape]:
        """Curve-shape metrics per setting."""
        return {v: r.shape() for v, r in self.results.items()}

    def best_setting(self) -> Any:
        """The swept value with the highest best docking score."""
        return max(
            self.results, key=lambda v: self.results[v].history.best_score
        )

    def summary(self) -> str:
        """Comparison table across the sweep."""
        rows = []
        for value, result in self.results.items():
            s = result.shape()
            h = result.history
            rows.append(
                (
                    str(value),
                    f"{h.best_score:.2f}",
                    f"{s.peak:.2f}",
                    f"{s.last:.2f}",
                    f"{h.docking_success_rate(2.0):.0%}",
                )
            )
        return render_table(
            (self.parameter, "best score", "peak Q", "final Q", "success@2A"),
            rows,
            title=f"Sweep over {self.parameter}",
            align=("l", "r", "r", "r", "r"),
        )


def run_sweep(
    base: DQNDockingConfig,
    parameter: str,
    values: Sequence[Any],
    *,
    runtime=None,
) -> SweepResult:
    """Train one agent per value of ``parameter`` (other knobs pinned).

    ``parameter`` must be a field of :class:`DQNDockingConfig`; unknown
    names raise immediately rather than silently sweeping nothing.
    With a :class:`~repro.runtime.loop.RuntimeContext`, each setting
    trains under its own ``sweep-<parameter>-<value>`` checkpoint
    phase, so an interrupted sweep resumes at the setting it stopped in.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if not hasattr(base, parameter):
        raise ValueError(f"unknown config field {parameter!r}")
    out = SweepResult(parameter=parameter)
    for value in values:
        cfg = base.replace(**{parameter: value})
        out.results[value] = run_figure4_experiment(
            cfg, runtime=runtime, phase=f"sweep-{parameter}-{value}"
        )
    return out
