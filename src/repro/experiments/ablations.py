"""Ablations over the paper's design choices and future-work variants.

Two families:

- :func:`run_comm_ablation` -- RAM vs file engine<->agent communication
  (the paper's limitation #1): steps/sec with each channel;
- :func:`run_variant_ablation` -- DQN vs DDQN vs dueling vs
  distributional (Section 5's list), trained identically and compared on
  final performance and curve shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.chem.builders import build_complex
from repro.config import DQNDockingConfig
from repro.env.comm import FileComm, RamComm
from repro.env.factory import make_env
from repro.experiments.figure4 import (
    Figure4Result,
    run_figure4_experiment,
)
from repro.utils.tables import render_table


@dataclass
class AblationResult:
    """Named measurements with a tabular summary."""

    title: str
    rows: list[tuple] = field(default_factory=list)
    headers: tuple = ()

    def summary(self) -> str:
        """Render as a table."""
        return render_table(self.headers, self.rows, title=self.title)


def run_comm_ablation(
    cfg: DQNDockingConfig, *, steps: int = 300
) -> AblationResult:
    """Measure environment steps/sec with RAM vs file communication.

    Uses a fixed random action sequence on identical environments so the
    only difference is the channel.  ``fsync`` mode is included to bound
    the worst case.
    """
    built = build_complex(cfg.complex)
    rng = np.random.default_rng(cfg.seed)
    rows = []
    for label, comm_factory in (
        ("ram", RamComm),
        ("file", lambda: FileComm()),
        ("file+fsync", lambda: FileComm(fsync=True)),
    ):
        env = make_env(cfg, built, comm=comm_factory())
        try:
            env.reset()
            actions = rng.integers(0, env.n_actions, size=steps)
            t0 = time.perf_counter()
            for a in actions:
                _s, _r, done, _info = env.step(int(a))
                if done:
                    env.reset()
            elapsed = time.perf_counter() - t0
        finally:
            env.close()
        rows.append(
            (label, f"{steps / elapsed:10.1f}", f"{1e3 * elapsed / steps:8.3f}")
        )
    return AblationResult(
        title="Comm-layer ablation (paper limitation #1)",
        headers=("channel", "steps/sec", "ms/step"),
        rows=rows,
    )


def run_variant_ablation(
    cfg: DQNDockingConfig,
    variants: tuple[str, ...] = ("dqn", "ddqn", "dueling", "dueling-ddqn"),
) -> tuple[AblationResult, dict[str, Figure4Result]]:
    """Train each algorithmic variant with identical settings.

    Returns the comparison table and the per-variant results (so callers
    can inspect curves).  Variants see identical seeds, environments and
    budgets; differences are purely algorithmic.
    """
    rows = []
    details: dict[str, Figure4Result] = {}
    for variant in variants:
        result = run_figure4_experiment(cfg.replace(variant=variant))
        details[variant] = result
        shape = result.shape()
        rows.append(
            (
                variant,
                f"{result.history.best_score:.2f}",
                f"{shape.peak:.3f}",
                f"{shape.last:.3f}",
                "yes" if shape.paper_shape else "no",
            )
        )
    table = AblationResult(
        title="Algorithm-variant ablation (Section 5 future work)",
        headers=("variant", "best score", "peak avg-max-Q", "final avg-max-Q", "rise+decline"),
        rows=rows,
    )
    return table, details
