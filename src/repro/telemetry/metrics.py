"""Metrics registry: counters, gauges, and streaming histograms.

The registry is the in-process aggregation point for everything a run
measures: step counts, scores, rewards, Q-values, losses.  Histograms
combine Welford moments (:class:`repro.utils.running_stats.RunningStats`)
with a fixed-size reservoir sample (Vitter's algorithm R, deterministic
per metric name) so quantiles stay available for streams of millions of
observations in O(reservoir) memory.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.utils.running_stats import RunningStats

#: Columns of the metrics.csv snapshot, shared by sink and inspector.
SNAPSHOT_COLUMNS = (
    "name", "kind", "count", "value", "mean", "std",
    "min", "max", "p50", "p90", "p99",
)


class Counter:
    """Monotonic accumulator (step counts, evaluations, events)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-value-wins metric (epsilon, replay fill, best score)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Streaming distribution: exact moments + reservoir quantiles.

    Moments (count/mean/std/min/max) are exact over the full stream;
    quantiles come from a uniform reservoir sample, which is exact until
    the reservoir overflows and an unbiased estimate after.  The
    reservoir RNG is seeded from the metric name so runs are
    reproducible.
    """

    def __init__(self, name: str, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self._stats = RunningStats()
        self._reservoir = np.empty(reservoir_size, dtype=float)
        self._rng = np.random.default_rng(zlib.crc32(name.encode()))
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        x = float(value)
        self._stats.update(x)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        n = self._stats.count
        size = self._reservoir.size
        if n <= size:
            self._reservoir[n - 1] = x
        else:
            j = int(self._rng.integers(n))
            if j < size:
                self._reservoir[j] = x

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._stats.count

    @property
    def mean(self) -> float:
        """Exact stream mean."""
        return self._stats.mean

    @property
    def std(self) -> float:
        """Exact stream standard deviation (population)."""
        return self._stats.std

    def sample(self) -> np.ndarray:
        """The current reservoir contents (copy)."""
        return self._reservoir[: min(self.count, self._reservoir.size)].copy()

    def quantile(self, q: Union[float, Sequence[float]]):
        """Quantile(s) of the stream (NaN before any observation).

        Matches ``numpy.quantile`` exactly while the stream fits in the
        reservoir; afterwards it is the sample quantile of the reservoir.
        """
        if self.count == 0:
            qs = np.atleast_1d(np.asarray(q, dtype=float))
            out = np.full(qs.shape, float("nan"))
            return float(out[0]) if np.isscalar(q) else out
        result = np.quantile(self.sample(), q)
        return float(result) if np.isscalar(q) else result


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Producers ask for a metric by name and kind; asking for an existing
    name with a different kind is an error (one name, one meaning).
    """

    def __init__(self, reservoir_size: int = 512) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._reservoir_size = int(reservoir_size)

    def _get_or_create(self, name: str, cls, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, self._reservoir_size)
        )

    # -- one-shot conveniences ---------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name``."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # -- introspection -----------------------------------------------------
    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name`` (None if absent)."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """Counter and gauge values for run checkpoints.

        Histograms are excluded: their reservoirs are statistical
        samples whose RNG position is not worth pinning -- resumed runs
        re-accumulate them, and docs/CHECKPOINTS.md documents them as
        not bit-stable.
        """
        counters = {}
        gauges = {}
        for name, m in self._metrics.items():
            if isinstance(m, Counter):
                counters[name] = m.value
            elif isinstance(m, Gauge):
                gauges[name] = {"value": m.value, "updates": m.updates}
        return {"counters": counters, "gauges": gauges}

    def load_state_dict(self, state: dict) -> None:
        """Restore counters/gauges captured by :meth:`state_dict`."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = float(value)
        for name, payload in state.get("gauges", {}).items():
            g = self.gauge(name)
            g.value = float(payload["value"])
            g.updates = int(payload["updates"])

    def snapshot_rows(self) -> List[dict]:
        """One dict per metric with :data:`SNAPSHOT_COLUMNS` keys.

        This is the metrics.csv payload; unused cells are empty strings
        so the CSV stays rectangular.
        """
        rows: List[dict] = []
        for name in self.names():
            m = self._metrics[name]
            row = {c: "" for c in SNAPSHOT_COLUMNS}
            row["name"] = name
            if isinstance(m, Counter):
                row["kind"] = "counter"
                row["count"] = int(m.value)
                row["value"] = m.value
            elif isinstance(m, Gauge):
                row["kind"] = "gauge"
                row["count"] = m.updates
                row["value"] = m.value
            else:
                row["kind"] = "histogram"
                row["count"] = m.count
                if m.count:
                    p50, p90, p99 = m.quantile([0.5, 0.9, 0.99])
                    row.update(
                        mean=m.mean, std=m.std, min=m.min, max=m.max,
                        p50=float(p50), p90=float(p90), p99=float(p99),
                    )
            rows.append(row)
        return rows

    def merge_span_rows(self, span_rows: Iterable[dict]) -> List[dict]:
        """Snapshot rows plus span rows rendered in the same schema."""
        rows = self.snapshot_rows()
        for s in span_rows:
            row = {c: "" for c in SNAPSHOT_COLUMNS}
            row.update(
                name=f"span/{s['path']}",
                kind="span",
                count=s["count"],
                value=s["total_seconds"],
                mean=s["mean_seconds"],
            )
            rows.append(row)
        return rows
