"""Pluggable telemetry sinks with buffered, crash-safe flushing.

A sink receives flat dict records and owns their persistence.  Three
implementations cover the run/inspect/test triangle:

- :class:`JsonlEventSink` -- append-only ``events.jsonl``, one JSON
  object per line (the structured event log);
- :class:`CsvMetricsSink` -- rectangular ``metrics.csv`` in the
  registry's snapshot schema;
- :class:`MemorySink` -- in-process list for unit tests.

Producers never format records themselves; everything that reaches a
sink is made JSON-safe here (NaN/Inf become ``null`` so every emitted
line is strict JSON any tool can parse).
"""

from __future__ import annotations

import csv
import json
import math
import os
from pathlib import Path
from typing import Any, Iterable, List, Protocol, Union, runtime_checkable

from repro.telemetry.metrics import SNAPSHOT_COLUMNS

PathLike = Union[str, Path]


@runtime_checkable
class TelemetrySink(Protocol):
    """What the run layer requires from any sink."""

    def emit(self, record: dict) -> None:
        """Accept one flat record."""
        ...

    def flush(self) -> None:
        """Persist everything buffered so far."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...


def json_safe(obj: Any) -> Any:
    """Recursively convert a record to strict-JSON-safe values.

    Non-finite floats become None, numpy scalars/arrays become Python
    numbers/lists, tuples become lists.
    """
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array or scalar
        return json_safe(obj.tolist())
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


class MemorySink:
    """Keeps records in a list; the test double."""

    def __init__(self) -> None:
        self.records: List[dict] = []
        self.flush_calls = 0
        self.closed = False

    def emit(self, record: dict) -> None:
        if self.closed:
            raise RuntimeError("emit() on a closed sink")
        self.records.append(json_safe(record))

    def flush(self) -> None:
        self.flush_calls += 1

    def close(self) -> None:
        self.closed = True


class NullSink:
    """Discards everything (the disabled-telemetry fast path)."""

    def emit(self, record: dict) -> None:  # noqa: D102 - protocol impl
        pass

    def flush(self) -> None:  # noqa: D102
        pass

    def close(self) -> None:  # noqa: D102
        pass


class JsonlEventSink:
    """Append-only JSON-lines file with bounded in-memory buffering.

    Records are buffered and written every ``buffer_size`` emits, with
    an OS-level flush per write so a crash loses at most one buffer.
    """

    def __init__(self, path: PathLike, *, buffer_size: int = 64) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.buffer_size = int(buffer_size)
        self._buffer: List[str] = []
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def emit(self, record: dict) -> None:
        """Buffer one event; auto-flush when the buffer is full."""
        if self._closed:
            raise RuntimeError(f"emit() on closed sink {self.path}")
        self._buffer.append(json.dumps(json_safe(record), allow_nan=False))
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines through to the OS (fsync'd).

        The fsync makes every flushed event durable, so a SIGKILL after
        a checkpoint flush cannot roll the event log back behind the
        checkpoint it describes.
        """
        if self._closed or not self._buffer:
            return
        self._file.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:  # pragma: no cover - fs without fsync support
            pass

    def close(self) -> None:
        """Flush, fsync, and close the file (idempotent)."""
        if self._closed:
            return
        self.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:  # pragma: no cover - fs without fsync support
            pass
        self._file.close()
        self._closed = True

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: PathLike) -> List[dict]:
    """Load every event from a ``events.jsonl`` file, in emit order.

    A torn final line (the process was killed mid-append) is skipped
    rather than raised, so logs from interrupted runs stay readable --
    everything before the tear is intact because flushes are whole-line.
    """
    out: List[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return out


class CsvMetricsSink:
    """Rectangular CSV in the registry snapshot schema.

    Each emitted record is one row; keys outside
    :data:`~repro.telemetry.metrics.SNAPSHOT_COLUMNS` are dropped,
    missing keys become empty cells.
    """

    def __init__(
        self, path: PathLike, *, columns: Iterable[str] = SNAPSHOT_COLUMNS
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.columns = list(columns)
        self._file = open(self.path, "w", encoding="utf-8", newline="")
        self._writer = csv.DictWriter(
            self._file, fieldnames=self.columns, extrasaction="ignore"
        )
        self._writer.writeheader()
        self._closed = False

    def emit(self, record: dict) -> None:
        """Write one metric row."""
        if self._closed:
            raise RuntimeError(f"emit() on closed sink {self.path}")
        safe = {k: json_safe(v) for k, v in record.items()}
        self._writer.writerow({c: safe.get(c, "") for c in self.columns})

    def write_rows(self, rows: Iterable[dict]) -> None:
        """Emit many rows (registry snapshot helper)."""
        for row in rows:
            self.emit(row)

    def flush(self) -> None:
        """Push buffered rows to the OS."""
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "CsvMetricsSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_metrics_csv(path: PathLike) -> List[dict]:
    """Load ``metrics.csv`` rows with numeric cells coerced to float."""
    rows: List[dict] = []
    with open(path, encoding="utf-8", newline="") as fh:
        for raw in csv.DictReader(fh):
            row: dict = {}
            for key, cell in raw.items():
                if cell is None or cell == "":
                    row[key] = None
                else:
                    try:
                        row[key] = float(cell)
                    except ValueError:
                        row[key] = cell
            rows.append(row)
    return rows
