"""One run, one directory: the orchestration layer of the telemetry stack.

:class:`TelemetryRun` ties the pieces together for a single run
directory::

    run-dir/
      manifest.json   # written at start, finalized at exit
      events.jsonl    # structured event log (JsonlEventSink)
      metrics.csv     # final registry + span snapshot (CsvMetricsSink)

Producers talk to the :class:`~repro.telemetry.metrics.MetricsRegistry`
and :class:`~repro.telemetry.spans.SpanTracer` it owns, or emit events
directly; :meth:`TelemetryRun.finalize` writes the snapshot and closes
everything.  ``repro inspect <run-dir>`` renders a summary from these
three files alone.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.telemetry.callbacks import StepInfo, TrainerCallback
from repro.telemetry.manifest import MANIFEST_NAME, RunManifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import CsvMetricsSink, JsonlEventSink, TelemetrySink
from repro.telemetry.spans import SpanTracer

PathLike = Union[str, Path]

#: Canonical event-log / metrics file names inside a run directory.
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.csv"


class TelemetryRun:
    """Owns the run directory, manifest, registry, tracer, and sinks.

    Usable as a context manager: a clean exit finalizes with status
    ``completed``, an exception with ``failed`` (re-raised).

    Parameters
    ----------
    log_dir:
        Run directory; created if missing.
    command / seed / config:
        Manifest provenance fields (config may be a dataclass).
    step_interval:
        Emit only every k-th ``step`` event (1 = every step).  Episode
        and span records are unaffected, so coarse step logging still
        yields a complete episode table.
    sinks:
        Extra sinks that receive every event alongside the JSONL log.
    """

    def __init__(
        self,
        log_dir: PathLike,
        *,
        command: str = "run",
        seed: int | None = None,
        config: Any = None,
        run_id: str | None = None,
        parent_run_id: str | None = None,
        resume_step: int | None = None,
        extra: Optional[dict] = None,
        step_interval: int = 1,
        event_buffer: int = 64,
        sinks: Optional[List[TelemetrySink]] = None,
    ) -> None:
        if step_interval < 1:
            raise ValueError("step_interval must be >= 1")
        self.dir = Path(log_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.step_interval = int(step_interval)
        self.manifest = RunManifest.create(
            command,
            seed=seed,
            config=config,
            run_id=run_id,
            parent_run_id=parent_run_id,
            resume_step=resume_step,
            extra=extra,
        )
        self.manifest.write(self.dir / MANIFEST_NAME)
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer()
        self._events = JsonlEventSink(
            self.dir / EVENTS_NAME, buffer_size=event_buffer
        )
        self._extra_sinks: List[TelemetrySink] = list(sinks or [])
        self._t0 = time.perf_counter()
        self._finalized = False
        self.emit(
            "run_start",
            run_id=self.manifest.run_id,
            command=command,
            seed=seed,
        )

    # -- event log ---------------------------------------------------------
    def emit(self, event: str, **payload: Any) -> None:
        """Append one event (``event`` type + wall offset + payload)."""
        if self._finalized:
            return
        record = {
            "event": event,
            "t": round(time.perf_counter() - self._t0, 6),
            **payload,
        }
        self._events.emit(record)
        for sink in self._extra_sinks:
            sink.emit(record)

    def callback(self) -> "TelemetryCallback":
        """A trainer callback bound to this run."""
        return TelemetryCallback(self)

    def flush(self) -> None:
        """Flush all sinks without closing them."""
        self._events.flush()
        for sink in self._extra_sinks:
            sink.flush()

    # -- lifecycle ---------------------------------------------------------
    def finalize(self, status: str = "completed") -> None:
        """Write span summary + metrics snapshot, close sinks, seal
        the manifest (idempotent)."""
        if self._finalized:
            return
        span_rows = self.tracer.as_rows()
        if span_rows:
            self.emit("span_summary", spans=span_rows)
        self.emit("run_end", status=status)
        self._finalized = True
        self._events.close()
        with CsvMetricsSink(self.dir / METRICS_NAME) as csv_sink:
            csv_sink.write_rows(self.registry.merge_span_rows(span_rows))
        for sink in self._extra_sinks:
            sink.close()
        self.manifest.finalize(status)
        self.manifest.write(self.dir / MANIFEST_NAME)

    def __enter__(self) -> "TelemetryRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize("failed" if exc_type is not None else "completed")


class TelemetryCallback(TrainerCallback):
    """Routes trainer hooks into a :class:`TelemetryRun`.

    Per-step data lands both in the event log (throttled by the run's
    ``step_interval``) and in the registry's counters/histograms, so
    quantiles survive even when step events are sampled.
    """

    def __init__(self, run: TelemetryRun) -> None:
        self.run = run
        self._agent: Any = None

    def on_train_start(self, trainer: Any = None) -> None:
        # Remember the agent (when the trainer hands itself over) so
        # episode ends can snapshot its replay footprint.
        self._agent = getattr(trainer, "agent", None)
        self.run.emit("train_start")

    def on_episode_start(self, episode: int) -> None:
        self.run.emit("episode_start", episode=episode)

    def on_step(self, info: StepInfo) -> None:
        reg = self.run.registry
        reg.inc("steps")
        reg.observe("reward", info.reward)
        reg.observe("max_q", info.max_q)
        reg.set("epsilon", info.epsilon)
        if info.score == info.score:  # skip NaN
            reg.observe("score", info.score)
        if info.loss == info.loss:
            reg.inc("learn_steps")
            reg.observe("loss", info.loss)
        if info.global_step % self.run.step_interval == 0:
            self.run.emit(
                "step",
                episode=info.episode,
                step=info.step,
                global_step=info.global_step,
                action=info.action,
                reward=info.reward,
                score=info.score,
                max_q=info.max_q,
                epsilon=info.epsilon,
                loss=info.loss,
                done=info.done,
            )

    def on_episode_end(self, stats: Any) -> None:
        import dataclasses

        payload = (
            dataclasses.asdict(stats)
            if dataclasses.is_dataclass(stats) and not isinstance(stats, type)
            else dict(vars(stats))
        )
        self.run.emit("episode_end", **payload)
        reg = self.run.registry
        reg.inc("episodes")
        reward = payload.get("total_reward")
        if reward is not None:
            reg.observe("episode_reward", float(reward))
        best = payload.get("best_score")
        if best is not None and best == best and best != float("-inf"):
            gauge = reg.gauge("best_score")
            if gauge.value != gauge.value or best > gauge.value:
                gauge.set(best)
        replay = getattr(self._agent, "replay", None)
        nbytes = getattr(replay, "nbytes", None)
        if callable(nbytes):
            reg.set("replay_bytes", float(nbytes()))
            reg.set("replay_size", float(len(replay)))
        # Keep the event log durable at episode granularity.
        self.run.flush()

    def on_train_end(self, history: Any) -> None:
        payload: dict[str, Any] = {}
        for name in ("total_steps", "wall_seconds"):
            value = getattr(history, name, None)
            if value is not None:
                payload[name] = value
        best = getattr(history, "best_score", None)
        if best is not None:
            payload["best_score"] = best
        self.run.emit("train_end", **payload)
        self.run.flush()
