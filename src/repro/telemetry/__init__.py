"""Run-wide observability: metrics, spans, event logs, run manifests.

The telemetry stack is the substrate every performance claim in this
repo is measured against (the paper's own headline limitation is
wall-clock cost).  It has four layers, composable bottom-up:

- :mod:`repro.telemetry.metrics` -- counters, gauges, streaming
  histograms behind a :class:`MetricsRegistry`;
- :mod:`repro.telemetry.spans` -- nested wall-time spans with
  parent/child attribution (subsumes the old ``Timer``);
- :mod:`repro.telemetry.sinks` -- pluggable persistence
  (:class:`JsonlEventSink`, :class:`CsvMetricsSink`,
  :class:`MemorySink`) behind the :class:`TelemetrySink` protocol;
- :mod:`repro.telemetry.run` -- :class:`TelemetryRun` ties a run
  directory (manifest.json / events.jsonl / metrics.csv) together and
  exposes a :class:`TrainerCallback` for the training loops.

``repro inspect <run-dir>`` (:mod:`repro.telemetry.summary`) renders a
report from the emitted files alone.
"""

from repro.telemetry.callbacks import (
    CallbackList,
    RecordingCallback,
    StepInfo,
    TrainerCallback,
)
from repro.telemetry.manifest import MANIFEST_NAME, RunManifest, git_revision
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_COLUMNS,
)
from repro.telemetry.run import (
    EVENTS_NAME,
    METRICS_NAME,
    TelemetryCallback,
    TelemetryRun,
)
from repro.telemetry.sinks import (
    CsvMetricsSink,
    JsonlEventSink,
    MemorySink,
    NullSink,
    TelemetrySink,
    read_events,
    read_metrics_csv,
)
from repro.telemetry.spans import SpanStats, SpanTracer
from repro.telemetry.summary import RunRecord, load_run, render_summary

__all__ = [
    "CallbackList",
    "Counter",
    "CsvMetricsSink",
    "EVENTS_NAME",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "RecordingCallback",
    "RunManifest",
    "RunRecord",
    "SNAPSHOT_COLUMNS",
    "SpanStats",
    "SpanTracer",
    "StepInfo",
    "TelemetryCallback",
    "TelemetryRun",
    "TelemetrySink",
    "TrainerCallback",
    "git_revision",
    "load_run",
    "read_events",
    "read_metrics_csv",
    "render_summary",
]
