"""Trainer callback protocol: how training loops report without coupling.

The trainer calls these hooks at well-defined points; what happens to
the data (registry, sinks, progress bars) is entirely the callback's
business.  The trainer never imports a sink and pays nothing when no
callback is registered.

Hook order per run::

    on_train_start
      (per episode) on_episode_start -> on_step* -> on_episode_end
    on_train_end
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class StepInfo:
    """Everything one environment step produced, for callbacks."""

    episode: int
    #: Step index within the episode (0-based).
    step: int
    #: Global environment-step counter across the run (1-based, i.e.
    #: the value *after* this step).
    global_step: int
    action: int
    reward: float
    #: Engine score after the step (NaN when unavailable).
    score: float
    #: ``max_a Q(s_t, a)`` of the acting forward pass (Figure 4's raw).
    max_q: float
    epsilon: float
    #: Loss of the gradient step taken at this step (NaN if none ran).
    loss: float
    done: bool


class TrainerCallback:
    """No-op base class; override the hooks you care about."""

    def on_train_start(self, trainer: Any = None) -> None:
        """Called once before the first episode."""

    def on_episode_start(self, episode: int) -> None:
        """Called before each episode's reset."""

    def on_step(self, info: StepInfo) -> None:
        """Called after each environment step (and any learn step)."""

    def on_episode_end(self, stats: Any) -> None:
        """Called with the episode's ``EpisodeStats``."""

    def on_train_end(self, history: Any) -> None:
        """Called once with the final ``TrainingHistory``."""


class CallbackList(TrainerCallback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(
        self, callbacks: Optional[Iterable[TrainerCallback]] = None
    ) -> None:
        self.callbacks: List[TrainerCallback] = [
            c for c in (callbacks or []) if c is not None
        ]

    def __len__(self) -> int:
        return len(self.callbacks)

    def append(self, callback: TrainerCallback) -> None:
        """Register one more callback."""
        self.callbacks.append(callback)

    def on_train_start(self, trainer: Any = None) -> None:
        for c in self.callbacks:
            c.on_train_start(trainer)

    def on_episode_start(self, episode: int) -> None:
        for c in self.callbacks:
            c.on_episode_start(episode)

    def on_step(self, info: StepInfo) -> None:
        for c in self.callbacks:
            c.on_step(info)

    def on_episode_end(self, stats: Any) -> None:
        for c in self.callbacks:
            c.on_episode_end(stats)

    def on_train_end(self, history: Any) -> None:
        for c in self.callbacks:
            c.on_train_end(history)


class RecordingCallback(TrainerCallback):
    """Records ``(hook_name, payload)`` tuples; the test double."""

    def __init__(self) -> None:
        self.calls: List[Tuple[str, Any]] = []

    def on_train_start(self, trainer: Any = None) -> None:
        self.calls.append(("train_start", trainer))

    def on_episode_start(self, episode: int) -> None:
        self.calls.append(("episode_start", episode))

    def on_step(self, info: StepInfo) -> None:
        self.calls.append(("step", info))

    def on_episode_end(self, stats: Any) -> None:
        self.calls.append(("episode_end", stats))

    def on_train_end(self, history: Any) -> None:
        self.calls.append(("train_end", history))

    def hook_sequence(self) -> List[str]:
        """Just the hook names, in call order."""
        return [name for name, _ in self.calls]
