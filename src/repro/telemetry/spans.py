"""Nested span tracing: wall time with parent/child attribution.

A :class:`SpanTracer` subsumes the old flat ``Timer``: entering a span
while another is open records the new span *under* the open one, so a
run's time decomposes into a tree ("train" -> "episode" -> "env-step"
-> "score") instead of a flat bag of names.  That is exactly what the
paper's limitation analysis needs: "engine step" vs "Q-network forward"
vs "replay sample" time is first-class, with self-time (time in a span
minus time in its children) computed per node.

Spans are identified by slash-joined paths.  The same leaf name can
appear under several parents; :meth:`SpanTracer.total` and
:meth:`SpanTracer.totals_by_name` aggregate across paths, which is the
old ``Timer`` view.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List

#: Path separator between a parent span and its child.
SEP = "/"


@dataclass
class SpanStats:
    """Accumulated statistics of one span path."""

    path: str
    name: str
    parent: str | None
    total: float = 0.0
    count: int = 0

    @property
    def mean(self) -> float:
        """Mean seconds per entry."""
        return self.total / self.count if self.count else 0.0

    @property
    def depth(self) -> int:
        """Nesting depth (0 = root span)."""
        return self.path.count(SEP)


class SpanTracer:
    """Collects nested timing spans; the single timing implementation.

    >>> tracer = SpanTracer()
    >>> with tracer.span("train"):
    ...     with tracer.span("act"):
    ...         pass
    >>> sorted(s.path for s in tracer.spans())
    ['train', 'train/act']
    """

    def __init__(self) -> None:
        self._stats: Dict[str, SpanStats] = {}
        self._stack: List[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a section; nests under whichever span is currently open."""
        if SEP in name:
            raise ValueError(f"span name may not contain {SEP!r}: {name!r}")
        parent = self._stack[-1] if self._stack else None
        path = f"{parent}{SEP}{name}" if parent else name
        self._stack.append(path)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            st = self._stats.get(path)
            if st is None:
                st = self._stats[path] = SpanStats(
                    path=path, name=name, parent=parent
                )
            st.total += elapsed
            st.count += 1

    # ``Timer``-flavoured alias so call sites read either way.
    section = span

    # -- queries -----------------------------------------------------------
    def spans(self) -> List[SpanStats]:
        """All recorded spans in first-completed order."""
        return list(self._stats.values())

    def get(self, path: str) -> SpanStats | None:
        """Stats of one exact path (None if never entered)."""
        return self._stats.get(path)

    def children(self, path: str) -> List[SpanStats]:
        """Direct children of ``path``."""
        return [s for s in self._stats.values() if s.parent == path]

    def self_time(self, path: str) -> float:
        """Time spent in ``path`` itself, excluding its children."""
        st = self._stats.get(path)
        if st is None:
            return 0.0
        return st.total - sum(c.total for c in self.children(path))

    def totals_by_name(self) -> Dict[str, float]:
        """Leaf-name -> total seconds, aggregated across parents."""
        out: Dict[str, float] = {}
        for s in self._stats.values():
            out[s.name] = out.get(s.name, 0.0) + s.total
        return out

    def counts_by_name(self) -> Dict[str, int]:
        """Leaf-name -> entry count, aggregated across parents."""
        out: Dict[str, int] = {}
        for s in self._stats.values():
            out[s.name] = out.get(s.name, 0) + s.count
        return out

    def total(self, name: str) -> float:
        """Total seconds for leaf name ``name`` across all parents."""
        return self.totals_by_name().get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry of leaf name ``name``."""
        n = self.counts_by_name().get(name, 0)
        return self.total(name) / n if n else 0.0

    # -- export -------------------------------------------------------------
    def as_rows(self) -> List[dict]:
        """Span tree as JSON-safe dicts (sink/manifest payload)."""
        return [
            {
                "path": s.path,
                "name": s.name,
                "parent": s.parent,
                "count": s.count,
                "total_seconds": round(s.total, 6),
                "mean_seconds": round(s.mean, 9),
                "self_seconds": round(self.self_time(s.path), 6),
            }
            for s in sorted(self._stats.values(), key=lambda s: s.path)
        ]

    def report(self) -> str:
        """Human-readable tree breakdown, children indented under parents."""
        if not self._stats:
            return "(no timed sections)"
        ordered = sorted(self._stats.values(), key=lambda s: s.path)
        width = max(2 * s.depth + len(s.name) for s in ordered)
        lines = []
        for s in ordered:
            label = "  " * s.depth + s.name
            lines.append(
                f"{label:<{width}}  total={s.total:9.4f}s  "
                f"calls={s.count:>6}  "
                f"mean={s.mean * 1e3:9.4f}ms  "
                f"self={self.self_time(s.path):9.4f}s"
            )
        return "\n".join(lines)

    def flat_report(self) -> str:
        """Old ``Timer``-style flat report aggregated by leaf name."""
        totals = self.totals_by_name()
        if not totals:
            return "(no timed sections)"
        counts = self.counts_by_name()
        width = max(len(k) for k in totals)
        lines = []
        for name in sorted(totals, key=totals.get, reverse=True):
            n = counts[name]
            mean = totals[name] / n if n else 0.0
            lines.append(
                f"{name:<{width}}  total={totals[name]:9.4f}s  "
                f"calls={n:>6}  "
                f"mean={mean * 1e3:9.4f}ms"
            )
        return "\n".join(lines)
