"""Run manifests: the who/what/when record every run leaves behind.

``manifest.json`` is written the moment a run starts (status
``running``) and rewritten at exit (``completed`` / ``failed``), so a
crashed run is distinguishable from a finished one by its manifest
alone.  The manifest carries everything needed to reproduce the run:
seed, full config dict, package version, interpreter/platform, git
revision when available, and wall-clock bounds.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.version import __version__

PathLike = Union[str, Path]

#: Canonical manifest file name inside a run directory.
MANIFEST_NAME = "manifest.json"


def git_revision(cwd: PathLike | None = None) -> str | None:
    """Current git commit SHA, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd else None,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _config_dict(config: Any) -> Dict[str, Any] | None:
    """Normalize a config (dataclass or mapping) to a plain dict."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    if not isinstance(config, dict):
        return {"value": str(config)}
    from repro.telemetry.sinks import json_safe

    return json_safe(config)


def _utc_iso(epoch: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(epoch))


@dataclass
class RunManifest:
    """Machine-readable identity card of one run."""

    run_id: str
    command: str
    seed: int | None
    config: Dict[str, Any] | None
    version: str
    python_version: str
    platform: str
    numpy_version: str
    git_sha: str | None
    started_at: str
    started_unix: float
    finished_at: str | None = None
    duration_seconds: float | None = None
    status: str = "running"
    #: Checkpoint lineage: the run_id this run resumed from (None for a
    #: fresh run) and the global step / phase the resume started at.
    parent_run_id: str | None = None
    resume_step: int | None = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        command: str,
        *,
        seed: int | None = None,
        config: Any = None,
        run_id: str | None = None,
        parent_run_id: str | None = None,
        resume_step: int | None = None,
        extra: Dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Stamp a new manifest for a run starting now."""
        now = time.time()
        return cls(
            run_id=run_id
            or f"{command}-{time.strftime('%Y%m%d-%H%M%S', time.gmtime(now))}"
            f"-{uuid.uuid4().hex[:6]}",
            command=command,
            seed=seed,
            config=_config_dict(config),
            version=__version__,
            python_version=platform.python_version(),
            platform=f"{platform.system()}-{platform.machine()}",
            numpy_version=np.__version__,
            git_sha=git_revision(),
            started_at=_utc_iso(now),
            started_unix=now,
            parent_run_id=parent_run_id,
            resume_step=resume_step,
            extra=dict(extra) if extra else {},
        )

    def finalize(self, status: str = "completed") -> "RunManifest":
        """Close the manifest: end time, duration, final status."""
        now = time.time()
        self.finished_at = _utc_iso(now)
        self.duration_seconds = round(max(0.0, now - self.started_unix), 3)
        self.status = status
        return self

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def write(self, path: PathLike) -> None:
        """Atomically write the manifest JSON to ``path``."""
        from repro.utils.serialization import atomic_write

        atomic_write(path, json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        """Read a manifest back from disk."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- display -----------------------------------------------------------
    def header(self) -> str:
        """One-line provenance summary (report headers, inspect)."""
        parts = [
            f"run `{self.run_id}`",
            f"repro {self.version}",
            f"seed {self.seed}" if self.seed is not None else None,
            f"git `{self.git_sha[:12]}`" if self.git_sha else None,
            f"started {self.started_at}",
            f"status {self.status}",
            (
                f"resumed from `{self.parent_run_id}`"
                if self.parent_run_id
                else None
            ),
        ]
        return ", ".join(p for p in parts if p)
