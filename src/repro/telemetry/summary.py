"""``repro inspect``: render a run summary from emitted files alone.

Reads ``manifest.json`` / ``events.jsonl`` / ``metrics.csv`` out of a
run directory and renders the episode table, the Figure-4 series, the
span breakdown, and the metric snapshot -- no in-process state, so any
archived run directory is inspectable forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from repro.telemetry.manifest import MANIFEST_NAME, RunManifest
from repro.telemetry.run import EVENTS_NAME, METRICS_NAME
from repro.telemetry.sinks import read_events, read_metrics_csv
from repro.utils.ascii_plot import ascii_line_plot, sparkline
from repro.utils.tables import render_table

PathLike = Union[str, Path]


@dataclass
class RunRecord:
    """Everything read back from one run directory."""

    path: Path
    manifest: RunManifest
    events: List[dict] = field(default_factory=list)
    metrics: List[dict] = field(default_factory=list)

    def events_of(self, kind: str) -> List[dict]:
        """All events of one type, in emit order."""
        return [e for e in self.events if e.get("event") == kind]


def load_run(run_dir: PathLike) -> RunRecord:
    """Read a run directory back into memory.

    The manifest is required; the event log and metrics snapshot are
    optional (a crashed run may not have a metrics.csv yet).
    """
    path = Path(run_dir)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path} not found -- is {path} a telemetry run dir?"
        )
    record = RunRecord(path=path, manifest=RunManifest.load(manifest_path))
    events_path = path / EVENTS_NAME
    if events_path.exists():
        record.events = read_events(events_path)
    metrics_path = path / METRICS_NAME
    if metrics_path.exists():
        record.metrics = read_metrics_csv(metrics_path)
    return record


def _fmt(value, spec: str = ".3f") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:
            return "-"
        return format(value, spec)
    return str(value)


def _episode_section(record: RunRecord) -> str:
    episodes = record.events_of("episode_end")
    if not episodes:
        return "(no episode records)"
    rows = [
        (
            ep.get("episode"),
            ep.get("steps"),
            _fmt(ep.get("total_reward"), ".1f"),
            _fmt(ep.get("avg_max_q")),
            _fmt(ep.get("best_score"), ".2f"),
            _fmt(ep.get("epsilon")),
            _fmt(ep.get("mean_loss"), ".4f"),
            ep.get("termination") or "-",
        )
        for ep in episodes
    ]
    return render_table(
        ["ep", "steps", "reward", "avg max Q", "best score",
         "eps", "loss", "termination"],
        rows,
        title="Episodes",
        align=["r", "r", "r", "r", "r", "r", "r", "l"],
    )


def _figure4_section(record: RunRecord) -> str:
    episodes = record.events_of("episode_end")
    series = [
        float(ep["avg_max_q"])
        for ep in episodes
        if ep.get("learning_active") and ep.get("avg_max_q") is not None
    ]
    if not series:
        return "(no learning-active episodes -- no Figure 4 series)"
    lines = [
        f"Figure 4 series ({len(series)} learning-active episodes): "
        f"first {series[0]:.3f}  "
        f"peak {max(series):.3f}  last {series[-1]:.3f}",
        "Q curve: " + sparkline(series),
    ]
    if len(series) >= 3:
        lines.append(
            ascii_line_plot(
                series, title="avg max predicted Q per episode"
            )
        )
    return "\n".join(lines)


def _span_section(record: RunRecord) -> str:
    spans = [m for m in record.metrics if m.get("kind") == "span"]
    if not spans:
        # Fall back to the event log's span summary (crash before csv).
        summaries = record.events_of("span_summary")
        if not summaries:
            return "(no span records)"
        spans = [
            {
                "name": "span/" + s["path"],
                "count": s["count"],
                "value": s["total_seconds"],
                "mean": s["mean_seconds"],
            }
            for s in summaries[-1].get("spans", [])
        ]
    rows = []
    for s in sorted(spans, key=lambda s: str(s["name"])):
        path = str(s["name"])[len("span/"):]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        rows.append(
            (
                label,
                int(s["count"] or 0),
                _fmt(s["value"], ".4f"),
                _fmt(1e3 * s["mean"] if s["mean"] is not None else None,
                     ".4f"),
            )
        )
    return render_table(
        ["span", "calls", "total s", "mean ms"],
        rows,
        title="Span breakdown",
        align=["l", "r", "r", "r"],
    )


def _metrics_section(record: RunRecord) -> str:
    rows = [
        (
            m["name"],
            m["kind"],
            int(m["count"] or 0),
            _fmt(m.get("value"), "g"),
            _fmt(m.get("mean"), ".4g"),
            _fmt(m.get("min"), ".4g"),
            _fmt(m.get("max"), ".4g"),
            _fmt(m.get("p50"), ".4g"),
            _fmt(m.get("p99"), ".4g"),
        )
        for m in record.metrics
        if m.get("kind") in ("counter", "gauge", "histogram")
    ]
    if not rows:
        return "(no metrics snapshot)"
    return render_table(
        ["metric", "kind", "count", "value", "mean", "min", "max",
         "p50", "p99"],
        rows,
        title="Metrics",
        align=["l", "l", "r", "r", "r", "r", "r", "r", "r"],
    )


def _field_section(record: RunRecord) -> str:
    """Render field-scorer telemetry when a run used ``--scoring-method
    field``: total precomputed-map storage and the fraction of ligand
    atoms that fell in the exact near-field regime (see
    :mod:`repro.scoring.field`)."""
    by_name = {m.get("name"): m for m in record.metrics}
    size = by_name.get("scoring/field_bytes")
    near = by_name.get("scoring/near_field_fraction")
    if size is None and near is None:
        return ""
    lines = ["Field scorer"]
    if size is not None and size.get("value") is not None:
        lines.append(
            f"  precomputed maps: {size['value'] / (1024 * 1024):.1f} MiB"
        )
    if near is not None:
        mean = near.get("mean")
        mx = near.get("max")
        lines.append(
            "  near-field (exact-path) atom fraction: "
            f"mean {_fmt(mean, '.3f')}  max {_fmt(mx, '.3f')} "
            f"over {int(near.get('count') or 0)} score calls"
        )
    return "\n".join(lines)


def _checkpoint_section(record: RunRecord) -> str:
    """Render the per-phase checkpoint files, newest last.

    Reads only each checkpoint's metadata (``read_meta``) -- the array
    payloads stay on disk, so inspecting a multi-GB run dir is cheap.
    """
    from repro.runtime.checkpoint import (
        CheckpointReadError,
        checkpoint_info,
    )
    from repro.runtime.loop import CHECKPOINT_DIR_NAME

    ckpt_dir = record.path / CHECKPOINT_DIR_NAME
    if not ckpt_dir.is_dir():
        return ""
    paths = sorted(
        ckpt_dir.glob("*.npz"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    if not paths:
        return ""
    rows = []
    for path in paths:
        try:
            info = checkpoint_info(path)
        except CheckpointReadError:
            rows.append((path.name, "-", "-", "-", "-", "unreadable"))
            continue
        meta = info["meta"]
        mode = meta.get("mode", "-")
        if mode == "episodes":
            progress = (
                f"{meta.get('next_episode', '?')}"
                f"/{meta.get('episodes_target', '?')} ep"
            )
        elif mode == "steps":
            progress = (
                f"{meta.get('next_step', '?')}"
                f"/{meta.get('steps_target', '?')} steps"
            )
        else:
            progress = "-"
        rows.append(
            (
                path.name,
                str(meta.get("phase", "-")),
                progress,
                "yes" if meta.get("complete") else "no",
                f"{info['n_arrays']}",
                f"{info['file_bytes'] / 1024:.1f} KiB",
            )
        )
    return render_table(
        ["file", "phase", "progress", "complete", "arrays", "size"],
        rows,
        title="Checkpoints",
        align=["l", "l", "r", "l", "r", "r"],
    )


#: Benchmark artifacts rendered by ``repro inspect`` when dropped into
#: the run directory (each is a flat JSON object of named numbers).
BENCH_ARTIFACTS = (
    "BENCH_train_step.json",
    "BENCH_vector_env.json",
    "BENCH_score_step.json",
    "BENCH_screening.json",
    "BENCH_observation.json",
    "BENCH_actor_learner.json",
)


def _actor_learner_section(record: RunRecord) -> str:
    """Render per-actor telemetry of an actor/learner run.

    Built from the ``actor_learner/*`` metric snapshot the trainer
    records at the end of every segment: a per-actor row (transitions
    pushed, push throughput, ring depth at snapshot, backpressure
    waits) plus the learner-side gauges (idle fraction while starved
    for transitions, the broadcast weight version, and the
    weight-staleness histogram).  See docs/PARALLELISM.md,
    "Actor/learner architecture".
    """
    by_name = {m.get("name"): m for m in record.metrics}
    prefix = "actor_learner/"
    num_actors = by_name.get(prefix + "num-actors")
    if num_actors is None or not num_actors.get("value"):
        return ""
    n = int(num_actors["value"])
    lines = ["Actor/learner runtime"]
    rows = []
    for i in range(n):
        pushed = by_name.get(f"{prefix}transitions-actor{i}", {})
        rate = by_name.get(f"{prefix}transitions-per-second-actor{i}", {})
        depth = by_name.get(f"{prefix}ring-depth-actor{i}", {})
        waits = by_name.get(f"{prefix}ring-full-waits-actor{i}", {})
        rows.append(
            (
                i,
                _fmt(pushed.get("value"), "g"),
                _fmt(rate.get("value"), ".1f"),
                _fmt(depth.get("value"), "g"),
                _fmt(waits.get("value"), "g"),
            )
        )
    lines.append(
        render_table(
            ["actor", "transitions", "trans/s", "ring depth",
             "full waits"],
            rows,
            align=["r", "r", "r", "r", "r"],
        )
    )
    consumed = by_name.get(prefix + "consumed-transitions")
    idle = by_name.get(prefix + "learner-idle-fraction")
    version = by_name.get(prefix + "weight-version")
    detail = []
    if consumed is not None:
        detail.append(f"consumed {_fmt(consumed.get('value'), 'g')}")
    if version is not None:
        detail.append(f"weight version {_fmt(version.get('value'), 'g')}")
    if idle is not None:
        detail.append(
            f"learner idle fraction {_fmt(idle.get('value'), '.3f')}"
        )
    if detail:
        lines.append("  learner: " + "  ".join(detail))
    staleness = by_name.get(prefix + "weight-staleness-steps")
    if staleness is not None:
        lines.append(
            "  weight staleness (steps): "
            f"mean {_fmt(staleness.get('mean'), '.1f')}  "
            f"p50 {_fmt(staleness.get('p50'), '.1f')}  "
            f"p99 {_fmt(staleness.get('p99'), '.1f')}  "
            f"max {_fmt(staleness.get('max'), '.1f')}"
        )
    return "\n".join(lines)


def _screening_section(record: RunRecord) -> str:
    """Render shard progress and top hits of a screening run.

    Built from the event log plus the ``screen_ranking.json`` artifact
    the driver writes, so interrupted screens render their partial
    progress too.
    """
    starts = record.events_of("screen_start")
    shards = record.events_of("shard")
    ends = record.events_of("screen_end")
    ranking_path = record.path / "screen_ranking.json"
    if not (starts or shards or ends or ranking_path.exists()):
        return ""
    lines = ["Screening"]
    if starts:
        s = starts[-1]
        lines.append(
            f"  {s.get('ligands', '?')} ligands in "
            f"{s.get('shards', '?')} shards "
            f"({s.get('cached_shards', 0)} cached), "
            f"strategy={s.get('strategy', '?')}, "
            f"workers={s.get('workers', '?')}, "
            f"shard_size={s.get('shard_size', '?')}, "
            f"scoring={s.get('scoring_method', '?')}"
        )
    if shards:
        total = starts[-1].get("shards") if starts else None
        done = len(shards)
        fresh = sum(1 for s in shards if not s.get("cached"))
        last = shards[-1]
        progress = f"{done}/{total}" if total is not None else str(done)
        lines.append(
            f"  shards done: {progress} ({fresh} computed this run), "
            f"last throughput "
            f"{_fmt(last.get('ligands_per_min'), '.1f')} ligands/min"
        )
    if ends:
        e = ends[-1]
        lines.append(
            f"  completed: {e.get('ligands', '?')} ligands in "
            f"{_fmt(e.get('wall_seconds'), '.2f')}s "
            f"({_fmt(e.get('ligands_per_min'), '.1f')} ligands/min)"
        )
        if e.get("policy_forward_passes") or e.get("score_batch_calls"):
            lines.append(
                f"  policy batching: "
                f"{e.get('policy_forward_passes', 0)} forward passes, "
                f"{e.get('score_batch_calls', 0)} score-batch calls"
            )
    if ranking_path.exists():
        try:
            hits = json.loads(ranking_path.read_text()).get("hits", [])
        except (OSError, ValueError):
            hits = []
        if hits:
            rows = [
                (
                    h.get("rank"),
                    h.get("compound_id"),
                    h.get("n_atoms"),
                    _fmt(h.get("best_score"), ".2f"),
                )
                for h in hits[:10]
            ]
            lines.append(
                render_table(
                    ["rank", "compound", "atoms", "best score"],
                    rows,
                    title="Top hits",
                    align=["r", "l", "r", "r"],
                )
            )
    return "\n".join(lines)


def _bench_section(record: RunRecord) -> str:
    """Render any benchmark artifacts living next to the run files."""
    sections = []
    for name in BENCH_ARTIFACTS:
        path = record.path / name
        if not path.exists():
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            sections.append(f"({name}: unreadable)")
            continue
        rows = [
            (key, _fmt(value, ",.6g") if isinstance(value, float)
             else f"{value:,}" if isinstance(value, int) else str(value))
            for key, value in payload.items()
        ]
        sections.append(
            render_table(
                ["measurement", "value"], rows, title=name,
                align=["l", "r"],
            )
        )
    return "\n\n".join(sections)


def render_summary(run_dir: PathLike) -> str:
    """The full ``repro inspect`` report for one run directory."""
    record = load_run(run_dir)
    m = record.manifest
    header = [
        f"# Run {m.run_id}",
        m.header(),
        f"command: {m.command}   python {m.python_version} on {m.platform}"
        f"   numpy {m.numpy_version}",
    ]
    if m.finished_at:
        header.append(
            f"finished: {m.finished_at}   "
            f"duration: {m.duration_seconds:.1f}s"
        )
    n_events = len(record.events)
    n_steps = len(record.events_of("step"))
    header.append(f"events: {n_events} total, {n_steps} step records")
    sections = [
        "\n".join(header),
        _episode_section(record),
        _figure4_section(record),
        _span_section(record),
        _metrics_section(record),
    ]
    field_tel = _field_section(record)
    if field_tel:
        sections.append(field_tel)
    actor_learner = _actor_learner_section(record)
    if actor_learner:
        sections.append(actor_learner)
    screening = _screening_section(record)
    if screening:
        sections.append(screening)
    checkpoints = _checkpoint_section(record)
    if checkpoints:
        sections.append(checkpoints)
    bench = _bench_section(record)
    if bench:
        sections.append(bench)
    return "\n\n".join(sections)
