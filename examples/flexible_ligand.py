#!/usr/bin/env python
"""Flexible-ligand docking: the Section 5 extension, working.

The paper notes the 2BSM ligand "can fold in 6 bonds" and that a flexible
treatment would enlarge the action space to 18.  This example trains the
rigid 12-action agent and the flexible agent on the same complex and
compares what each can reach; it also shows the torsion machinery
directly by sweeping one rotatable bond and printing the score profile.

Run:
    python examples/flexible_ligand.py [--episodes N]
"""

from __future__ import annotations

import argparse
import math

from repro.chem.builders import build_complex
from repro.config import ci_scale_config
from repro.env.flexible_env import FlexibleDockingEnv
from repro.env.docking_env import make_env
from repro.env.wrappers import TimeLimit
from repro.experiments.figure4 import build_agent
from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import Pose
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.trainer import Trainer
from repro.utils.ascii_plot import sparkline


def torsion_sweep(built) -> None:
    """Score the crystal-area pose as one torsion sweeps 360 degrees."""
    engine = MetadockEngine(built, n_torsions=2)
    base = Pose(
        built.ligand_crystal.centroid(),
        Pose.identity().orientation,
        (0.0, 0.0),
    )
    scores = []
    for k in range(36):
        angle = -math.pi + k * (2 * math.pi / 36)
        pose = Pose(base.translation, base.orientation, (angle, 0.0))
        scores.append(engine.score_pose(pose))
    print("torsion sweep (bond 0, -180..180 deg):", sparkline(scores))
    best = max(range(36), key=lambda k: scores[k])
    print(
        f"  best angle {-180 + best * 10} deg, score {scores[best]:.2f} "
        f"(vs {scores[18]:.2f} at 0 deg)"
    )


def train(env, cfg, label: str) -> float:
    agent_cfg = AgentConfig.from_run_config(cfg, env.state_dim, env.n_actions)
    agent = DQNAgent(agent_cfg)
    trainer = Trainer(
        env,
        agent,
        episodes=cfg.episodes,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
    )
    history = trainer.run()
    print(
        f"{label:>8}: actions={env.n_actions:2d}  "
        f"best score {history.best_score:8.2f}  "
        f"steps {history.total_steps}"
    )
    return history.best_score


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = ci_scale_config(
        episodes=args.episodes,
        seed=args.seed,
        ligand_atoms=12,
        learning_rate=0.002,
    )
    built = build_complex(cfg.complex)

    print("Torsion machinery demonstration:")
    torsion_sweep(built)
    print()

    print("Training rigid (12 actions) vs flexible agents:")
    rigid_env = make_env(cfg, built)
    try:
        train(rigid_env, cfg, "rigid")
    finally:
        rigid_env.close()

    flex_env = TimeLimit(
        FlexibleDockingEnv(
            built,
            n_torsions=cfg.complex.rotatable_bonds,
            shift_length=cfg.shift_length,
            rotation_angle_deg=cfg.rotation_angle_deg,
        ),
        cfg.max_steps_per_episode,
    )
    try:
        train(flex_env, cfg, "flexible")
    finally:
        flex_env.close()


if __name__ == "__main__":
    main()
