#!/usr/bin/env python
"""Quickstart: train a small DQN-Docking agent end to end.

Builds a reduced synthetic receptor-ligand complex (same structure as the
paper's 2BSM setting), trains DQN per Algorithm 2 for a few seconds of
CPU, prints the Figure 4 training curve, then deploys the trained policy
greedily -- the paper's end goal of cheap docking once the NN is trained.

Run:
    python examples/quickstart.py [--episodes N] [--seed S]
"""

from __future__ import annotations

import argparse

from repro.config import ci_scale_config
from repro.env.docking_env import make_env
from repro.experiments.figure4 import build_agent, run_figure4_experiment
from repro.rl.trainer import greedy_rollout


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = ci_scale_config(
        episodes=args.episodes, seed=args.seed, learning_rate=0.002
    )
    print("Training DQN-Docking...")
    print(
        f"  complex: {cfg.complex.receptor_atoms}-atom receptor, "
        f"{cfg.complex.ligand_atoms}-atom ligand"
    )
    print(f"  {cfg.episodes} episodes x up to {cfg.max_steps_per_episode} steps\n")

    result = run_figure4_experiment(cfg)
    print(result.summary())

    print("\nGreedy deployment rollouts (epsilon = 0):")
    env = make_env(cfg)
    try:
        untrained = build_agent(cfg, env.state_dim, env.n_actions)
        best_untrained, _ = greedy_rollout(
            env, untrained, cfg.max_steps_per_episode
        )
        best_trained, trace = greedy_rollout(
            env, result.agent, cfg.max_steps_per_episode
        )
        print(f"  untrained agent best score: {best_untrained:10.2f}")
        print(
            f"  trained agent best score:   {best_trained:10.2f}  "
            f"({len(trace)} steps)"
        )
    finally:
        env.close()


if __name__ == "__main__":
    main()
