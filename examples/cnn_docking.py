#!/usr/bin/env python
"""CNN-DQN docking: the paper's proposed image-state extension, working.

Section 5 observes that raw coordinate states grow with molecule size
and proposes "substituting those internal states by a stack of
receptor-ligand images and then use a convolutional NN instead of a
MLP".  This example trains exactly that: a 6-channel projection stack
(3 receptor + 3 ligand views) through a small CNN, side by side with the
MLP baseline on the same complex -- and prints the state-size comparison
that motivates the whole idea.

Run:
    python examples/cnn_docking.py [--episodes N] [--resolution R]
"""

from __future__ import annotations

import argparse

from repro.chem.builders import build_complex
from repro.config import ci_scale_config
from repro.env.docking_env import make_env
from repro.env.image_state import ImageStateEnv
from repro.env.wrappers import TimeLimit
from repro.metadock.engine import MetadockEngine
from repro.env.docking_env import DockingEnv
from repro.nn.conv import build_cnn
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.trainer import Trainer


def train(env, agent, cfg, label: str) -> None:
    history = Trainer(
        env,
        agent,
        episodes=cfg.episodes,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
    ).run()
    print(
        f"{label:>4}: state dim {env.state_dim:>6,}  "
        f"params {agent.q_net.n_parameters():>9,}  "
        f"best score {history.best_score:8.2f}  "
        f"success@2A {history.docking_success_rate(2.0):5.1%}  "
        f"({history.wall_seconds:.1f}s)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=30)
    parser.add_argument("--resolution", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = ci_scale_config(
        episodes=args.episodes, seed=args.seed, learning_rate=0.002
    )
    built = build_complex(cfg.complex)
    print(
        f"complex: {cfg.complex.receptor_atoms}-atom receptor / "
        f"{cfg.complex.ligand_atoms}-atom ligand\n"
    )

    # MLP baseline on raw coordinates (the paper's setting).
    mlp_env = make_env(cfg, built)
    try:
        mlp_agent = DQNAgent(
            AgentConfig.from_run_config(cfg, mlp_env.state_dim, mlp_env.n_actions)
        )
        train(mlp_env, mlp_agent, cfg, "MLP")
    finally:
        mlp_env.close()

    # CNN on image states (the Section 5 proposal).
    engine = MetadockEngine(
        built,
        shift_length=cfg.shift_length,
        rotation_angle_deg=cfg.rotation_angle_deg,
    )
    cnn_env = TimeLimit(
        ImageStateEnv(
            DockingEnv(
                engine,
                escape_factor=cfg.escape_factor,
                low_score_patience=cfg.low_score_patience,
                low_score_threshold=cfg.low_score_threshold,
            ),
            resolution=args.resolution,
        ),
        cfg.max_steps_per_episode,
    )
    try:
        net = build_cnn(
            cnn_env.image_shape,
            cnn_env.n_actions,
            conv_channels=(8, 16),
            hidden=64,
            rng=cfg.seed,
        )
        cnn_agent = DQNAgent(
            AgentConfig.from_run_config(
                cfg, cnn_env.state_dim, cnn_env.n_actions
            ),
            network=net,
        )
        train(cnn_env, cnn_agent, cfg, "CNN")
    finally:
        cnn_env.close()

    print(
        "\nNote: the CNN state size is fixed by the image resolution -- "
        "it does not grow with the number of atoms, which is the "
        "scalability problem Section 5 raises for the raw-state MLP."
    )


if __name__ == "__main__":
    main()
