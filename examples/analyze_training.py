#!/usr/bin/env python
"""Training diagnostics: what does the agent actually do in the pocket?

Trains DQN-Docking with an episode recorder and a periodic frozen-policy
evaluator attached, then prints the full diagnostic stack: the Figure 4
curve, action-usage histogram, termination breakdown, visitation
summary, and the evaluation-score trajectory.  The run record is saved
to JSON so it can be re-analyzed without retraining.

Run:
    python examples/analyze_training.py [--episodes N] [--out run.json]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.trajectories import analyze_recorder
from repro.chem.builders import build_complex
from repro.config import ci_scale_config
from repro.env.docking_env import make_env
from repro.env.wrappers import EpisodeRecorder
from repro.experiments.figure4 import build_agent
from repro.rl.evaluation import PeriodicEvaluator
from repro.rl.trainer import Trainer
from repro.utils.ascii_plot import sparkline
from repro.utils.serialization import save_history


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="save history JSON here")
    args = parser.parse_args()

    cfg = ci_scale_config(
        episodes=args.episodes, seed=args.seed, learning_rate=0.002
    )
    built = build_complex(cfg.complex)
    env = EpisodeRecorder(make_env(cfg, built), keep_episodes=args.episodes)
    eval_env = make_env(cfg, built)
    try:
        agent = build_agent(cfg, env.state_dim, env.n_actions)
        evaluator = PeriodicEvaluator(
            eval_env,
            agent,
            every=max(2, args.episodes // 6),
            episodes=2,
            max_steps=cfg.max_steps_per_episode,
            seed=args.seed,
        )
        print(f"Training {cfg.episodes} episodes with diagnostics attached...\n")
        history = Trainer(
            env,
            agent,
            episodes=cfg.episodes,
            max_steps_per_episode=cfg.max_steps_per_episode,
            learning_start=cfg.learning_start,
            target_update_steps=cfg.target_update_steps,
            on_episode_end=evaluator,
        ).run()

        print(history.summary())
        print(
            f"docking success@2A over training: "
            f"{history.docking_success_rate(2.0):.1%}"
        )
        print()
        report = analyze_recorder(
            env, history, action_labels=env.engine.action_labels()
        )
        print(report.summary())
        if evaluator.results:
            print(
                "\nfrozen-policy eval (mean best score): "
                + sparkline(evaluator.score_series())
            )
            for ep, res in evaluator.results:
                print(f"  after episode {ep:>3}: {res.summary()}")
        if args.out:
            save_history(history, args.out)
            print(f"\nrun record saved to {args.out}")
    finally:
        env.close()
        eval_env.close()


if __name__ == "__main__":
    main()
