#!/usr/bin/env python
"""Virtual screening: rank a synthetic ligand library against a receptor.

This is the workload the paper's introduction motivates -- filtering a
library of candidate compounds by docking score.  A ZINC-like library is
generated, every compound's pose is optimized with a METADOCK
metaheuristic strategy, and the ranked hit list plus per-strategy
comparison is printed.

Run:
    python examples/virtual_screening.py [--ligands N] [--budget E]
"""

from __future__ import annotations

import argparse

from repro.chem.builders import build_complex
from repro.config import ComplexConfig
from repro.metadock.library import generate_library
from repro.metadock.screening import screen_library
from repro.utils.tables import render_table
from repro.utils.timers import WallClock


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ligands", type=int, default=8)
    parser.add_argument("--budget", type=int, default=250)
    parser.add_argument(
        "--strategy",
        default="scatter",
        choices=["ga", "local", "random", "scatter", "montecarlo"],
    )
    args = parser.parse_args()

    cfg = ComplexConfig(
        receptor_atoms=300,
        ligand_atoms=14,
        receptor_radius=11.0,
        pocket_depth=4.0,
        initial_offset=8.0,
        rotatable_bonds=2,
        seed=11,
    )
    print(f"Building receptor ({cfg.receptor_atoms} atoms) ...")
    built = build_complex(cfg)

    print(f"Generating {args.ligands}-compound library ...")
    library = generate_library(cfg, args.ligands, seed=42)

    clock = WallClock()
    print(
        f"Screening with strategy={args.strategy!r}, "
        f"budget={args.budget} evaluations/compound ..."
    )
    hits = screen_library(
        built, library, strategy=args.strategy, budget=args.budget, seed=7
    )
    elapsed = clock.elapsed()

    rows = [
        (rank + 1, h.compound_id, h.n_atoms, f"{h.best_score:.2f}", h.evaluations)
        for rank, h in enumerate(hits)
    ]
    print()
    print(
        render_table(
            ["rank", "compound", "atoms", "best score", "evaluations"],
            rows,
            title=f"Screening results ({elapsed:.1f}s total)",
            align=["r", "l", "r", "r", "r"],
        )
    )


if __name__ == "__main__":
    main()
