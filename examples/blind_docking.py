#!/usr/bin/env python
"""Blind docking: find the binding site with no prior knowledge.

Decomposes the receptor surface into spots (the METADOCK/BINDSURF
pattern), runs an independent pose search at each in parallel, refines
the winner with deterministic pattern search, and reports how close the
result lands to the true pocket -- plus an exported multi-MODEL PDB of
the top poses for molecular viewers.

Run:
    python examples/blind_docking.py [--spots N] [--budget E] [--out FILE]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.chem.builders import build_complex
from repro.chem.pdb import write_pdb_trajectory
from repro.config import ComplexConfig
from repro.metadock.blind import blind_dock
from repro.metadock.engine import MetadockEngine
from repro.metadock.pose import apply_pose
from repro.metadock.refinement import refine_pose


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spots", type=int, default=10)
    parser.add_argument("--budget", type=int, default=200)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="PDB trajectory output")
    args = parser.parse_args()

    cfg = ComplexConfig(
        receptor_atoms=400,
        ligand_atoms=14,
        receptor_radius=12.0,
        pocket_depth=4.5,
        initial_offset=8.0,
        rotatable_bonds=2,
        seed=args.seed + 2018,
    )
    print(f"Building {cfg.receptor_atoms}-atom receptor ...")
    built = build_complex(cfg)

    print(
        f"Blind docking over {args.spots} surface spots "
        f"({args.budget} evaluations each) ..."
    )
    result = blind_dock(
        built,
        n_spots=args.spots,
        budget_per_spot=args.budget,
        seed=args.seed,
        n_workers=args.workers,
    )
    print(result.summary())

    print("\nRefining the winning pose (pattern search) ...")
    engine = MetadockEngine(built)
    refined = refine_pose(engine, result.best.best_pose)
    print(
        f"  {result.best.best_score:.2f} -> {refined.score:.2f} "
        f"(+{refined.improvement:.2f} in {refined.evaluations} evaluations)"
    )
    final_dist = float(
        np.linalg.norm(refined.pose.translation - built.pocket_center)
    )
    print(
        f"  refined pose sits {final_dist:.1f} A from the true pocket "
        f"center (spot search: {result.best.pocket_distance:.1f} A)"
    )

    if args.out:
        frames = [
            apply_pose(engine.template, r.best_pose)
            for r in result.spots[:5]
        ]
        frames.append(apply_pose(engine.template, refined.pose))
        write_pdb_trajectory(frames, engine.template, args.out)
        print(
            f"\ntop-5 spot poses + refined pose written to {args.out} "
            f"(multi-MODEL PDB)"
        )


if __name__ == "__main__":
    main()
