#!/usr/bin/env python
"""The full Section 4 experiment at paper scale (2BSM-sized complex).

Builds the 3,264-atom receptor / 45-atom ligand complex, prints Table 1,
and runs a configurable slice of the 1,800-episode training.  The full
run takes hours on CPU; the default slice (3 episodes) demonstrates that
the paper-scale pipeline works and reports the measured steps/sec so the
full-run cost can be extrapolated.

Run:
    python examples/paper_scale.py [--episodes N] [--max-steps T]
"""

from __future__ import annotations

import argparse
import time

from repro.chem.builders import build_complex
from repro.config import PAPER_CONFIG
from repro.env.docking_env import make_env
from repro.experiments.figure4 import build_agent
from repro.experiments.table1 import render_table1
from repro.rl.trainer import Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=3)
    parser.add_argument("--max-steps", type=int, default=150)
    args = parser.parse_args()

    print(render_table1())
    print()

    cfg = PAPER_CONFIG.replace(
        episodes=args.episodes,
        max_steps_per_episode=args.max_steps,
        # Learning must start inside the demo slice to exercise the
        # full pipeline (the paper's 10k-step warmup assumes 1,800 eps).
        learning_start=min(PAPER_CONFIG.learning_start, args.max_steps),
        initial_exploration_steps=min(
            PAPER_CONFIG.initial_exploration_steps, 2 * args.max_steps
        ),
    )

    print(
        f"Building the paper-scale complex "
        f"({cfg.complex.receptor_atoms} + {cfg.complex.ligand_atoms} atoms)..."
    )
    t0 = time.perf_counter()
    built = build_complex(cfg.complex)
    print(f"  built in {time.perf_counter() - t0:.1f}s")

    env = make_env(cfg, built)
    try:
        print(
            f"  state vector: {env.state_dim:,} reals "
            f"(paper: {cfg.state_space:,}); actions: {env.n_actions}"
        )
        agent = build_agent(cfg, env.state_dim, env.n_actions)
        print(f"  Q-network parameters: {agent.q_net.n_parameters():,}")
        trainer = Trainer(
            env,
            agent,
            episodes=cfg.episodes,
            max_steps_per_episode=cfg.max_steps_per_episode,
            learning_start=cfg.learning_start,
            target_update_steps=cfg.target_update_steps,
        )
        print(f"\nRunning {cfg.episodes} episodes x {cfg.max_steps_per_episode} steps ...")
        history = trainer.run()
        print(history.summary())
        sps = history.total_steps / max(history.wall_seconds, 1e-9)
        full_steps = 1800 * 1000
        print(
            f"\nthroughput: {sps:.1f} steps/s -> full 1,800x1,000-step run "
            f"~ {full_steps / sps / 3600:.1f} h on this machine"
        )
        print("\nphase timing:")
        print(history.timer_report)
    finally:
        env.close()


if __name__ == "__main__":
    main()
