#!/usr/bin/env python
"""DQN-Docking vs Monte Carlo vs METADOCK metaheuristics.

Reproduces the paper's framing question: can the RL agent reach
"positions with similar scores as those obtained with state-of-the-art
Monte Carlo optimization methods"?  Every method gets the same score-
evaluation budget; the crystal pose's score is the reference optimum.

Run:
    python examples/dqn_vs_montecarlo.py [--budget N]
"""

from __future__ import annotations

import argparse

from repro.config import ci_scale_config
from repro.experiments.baselines import run_baseline_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = ci_scale_config(episodes=40, seed=args.seed, learning_rate=0.002)
    print(f"Running all methods with a {args.budget}-evaluation budget ...\n")
    comparison = run_baseline_comparison(cfg, budget=args.budget)
    print(comparison.summary())
    best = comparison.best_method()
    print(
        f"\nWinner: {best.method} at {best.best_score:.2f} "
        f"({100 * best.best_score / comparison.crystal_score:.1f}% of the "
        f"crystallographic score)"
    )


if __name__ == "__main__":
    main()
