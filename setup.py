"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file exists so
``pip install -e . --no-use-pep517`` (legacy editable install) works in
offline environments whose setuptools cannot build PEP-660 wheels.
"""

from setuptools import setup

setup()
