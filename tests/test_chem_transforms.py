"""Rigid transforms: rotation matrices, quaternion algebra, RMSD."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.transforms import (
    Quaternion,
    axis_angle_matrix,
    kabsch_rmsd,
    random_rotation,
    rigid_transform,
    rmsd,
    rotation_matrix,
)

angles = st.floats(-2 * math.pi, 2 * math.pi, allow_nan=False)
unit_axes = st.sampled_from(["x", "y", "z"])


class TestAxisAngleMatrix:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(axis_angle_matrix("x", 0.0), np.eye(3))

    def test_quarter_turn_z(self):
        m = axis_angle_matrix("z", math.pi / 2)
        np.testing.assert_allclose(m @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_arbitrary_axis_normalized(self):
        m1 = axis_angle_matrix([2, 0, 0], 0.7)
        m2 = axis_angle_matrix([1, 0, 0], 0.7)
        np.testing.assert_allclose(m1, m2)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            axis_angle_matrix([0, 0, 0], 1.0)

    def test_unknown_axis_name_rejected(self):
        with pytest.raises(ValueError):
            axis_angle_matrix("w", 1.0)

    @given(unit_axes, angles)
    def test_orthogonality(self, axis, angle):
        m = axis_angle_matrix(axis, angle)
        np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-12)

    @given(unit_axes, angles)
    def test_determinant_one(self, axis, angle):
        m = axis_angle_matrix(axis, angle)
        assert np.linalg.det(m) == pytest.approx(1.0)

    @given(unit_axes, angles, angles)
    def test_same_axis_angles_add(self, axis, a, b):
        m = axis_angle_matrix(axis, a) @ axis_angle_matrix(axis, b)
        np.testing.assert_allclose(
            m, axis_angle_matrix(axis, a + b), atol=1e-10
        )


class TestRotationMatrix:
    def test_composition_order(self):
        rx, ry, rz = 0.3, -0.7, 1.1
        expected = (
            axis_angle_matrix("z", rz)
            @ axis_angle_matrix("y", ry)
            @ axis_angle_matrix("x", rx)
        )
        np.testing.assert_allclose(rotation_matrix(rx, ry, rz), expected)


class TestQuaternion:
    def test_identity_matrix(self):
        np.testing.assert_allclose(Quaternion.identity().to_matrix(), np.eye(3))

    @given(unit_axes, angles)
    def test_matches_axis_angle_matrix(self, axis, angle):
        q = Quaternion.from_axis_angle(axis, angle)
        np.testing.assert_allclose(
            q.to_matrix(), axis_angle_matrix(axis, angle), atol=1e-12
        )

    @given(angles, angles)
    def test_hamilton_product_composes_rotations(self, a, b):
        qa = Quaternion.from_axis_angle("z", a)
        qb = Quaternion.from_axis_angle("x", b)
        np.testing.assert_allclose(
            (qa * qb).to_matrix(),
            qa.to_matrix() @ qb.to_matrix(),
            atol=1e-12,
        )

    def test_conjugate_is_inverse(self):
        q = Quaternion.from_axis_angle([1, 2, 3], 0.9)
        ident = q * q.conjugate()
        assert ident.approx_equal(Quaternion.identity())

    def test_normalized_unit_norm(self):
        q = Quaternion(3.0, 4.0, 0.0, 0.0).normalized()
        assert q.norm() == pytest.approx(1.0)

    def test_normalize_zero_rejected(self):
        with pytest.raises(ValueError):
            Quaternion(0, 0, 0, 0).normalized()

    def test_random_is_unit_and_deterministic(self):
        q1 = Quaternion.random(5)
        q2 = Quaternion.random(5)
        assert q1.norm() == pytest.approx(1.0)
        assert q1 == q2

    def test_random_uniform_coverage(self):
        # Rotated z-axes should land in all octants over many draws.
        rng = np.random.default_rng(0)
        z = np.array([0.0, 0.0, 1.0])
        pts = np.array([Quaternion.random(rng).rotate(z) for _ in range(256)])
        for d in range(3):
            assert (pts[:, d] > 0.3).any() and (pts[:, d] < -0.3).any()

    def test_angle(self):
        q = Quaternion.from_axis_angle("y", 0.8)
        assert q.angle() == pytest.approx(0.8)

    def test_minus_q_same_rotation(self):
        q = Quaternion.from_axis_angle("x", 1.0)
        neg = Quaternion(-q.w, -q.x, -q.y, -q.z)
        assert q.approx_equal(neg)
        np.testing.assert_allclose(q.to_matrix(), neg.to_matrix())

    def test_rotate_points_shape(self):
        q = Quaternion.from_axis_angle("z", math.pi)
        pts = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        out = q.rotate(pts)
        np.testing.assert_allclose(out, [[-1, 0, 0], [0, -1, 0]], atol=1e-12)

    def test_from_array_roundtrip(self):
        q = Quaternion.from_axis_angle([1, 1, 0], 0.4)
        q2 = Quaternion.from_array(q.to_array())
        assert q.approx_equal(q2)


class TestRigidTransform:
    def test_translation_only(self):
        pts = np.zeros((3, 3))
        out = rigid_transform(pts, translation=[1, 2, 3])
        np.testing.assert_allclose(out, np.tile([1, 2, 3], (3, 1)))

    def test_rotation_about_centroid_keeps_centroid(self, rng):
        pts = rng.normal(size=(10, 3))
        out = rigid_transform(pts, rotation=random_rotation(1))
        np.testing.assert_allclose(out.mean(axis=0), pts.mean(axis=0), atol=1e-12)

    def test_rotation_about_external_center(self):
        pts = np.array([[1.0, 0.0, 0.0]])
        out = rigid_transform(
            pts, rotation=axis_angle_matrix("z", math.pi), center=[0, 0, 0]
        )
        np.testing.assert_allclose(out, [[-1, 0, 0]], atol=1e-12)

    def test_accepts_quaternion(self, rng):
        pts = rng.normal(size=(5, 3))
        q = Quaternion.from_axis_angle("y", 0.3)
        a = rigid_transform(pts, rotation=q)
        b = rigid_transform(pts, rotation=q.to_matrix())
        np.testing.assert_allclose(a, b)

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            rigid_transform(np.zeros((2, 3)), rotation=np.eye(2))

    def test_preserves_pairwise_distances(self, rng):
        pts = rng.normal(size=(8, 3))
        out = rigid_transform(
            pts, rotation=random_rotation(3), translation=[4, -1, 2]
        )
        d_in = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        d_out = np.linalg.norm(out[:, None] - out[None, :], axis=-1)
        np.testing.assert_allclose(d_in, d_out, atol=1e-10)


class TestRmsd:
    def test_zero_for_identical(self, rng):
        pts = rng.normal(size=(6, 3))
        assert rmsd(pts, pts) == 0.0
        assert kabsch_rmsd(pts, pts) == pytest.approx(0.0, abs=1e-9)

    def test_kabsch_removes_rigid_motion(self, rng):
        pts = rng.normal(size=(12, 3))
        moved = rigid_transform(
            pts, rotation=random_rotation(7), translation=[3, 2, 1]
        )
        assert rmsd(pts, moved) > 0.5
        assert kabsch_rmsd(pts, moved) == pytest.approx(0.0, abs=1e-9)

    def test_plain_rmsd_translation_sensitive(self):
        pts = np.zeros((4, 3))
        assert rmsd(pts, pts + [1.0, 0, 0]) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmsd(np.zeros((3, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            kabsch_rmsd(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_kabsch_reflection_not_allowed(self):
        # A mirrored helix cannot be superposed by pure rotation.
        t = np.linspace(0, 4 * np.pi, 20)
        helix = np.stack([np.cos(t), np.sin(t), t / 3], axis=1)
        mirrored = helix * np.array([1.0, 1.0, -1.0])
        assert kabsch_rmsd(helix, mirrored) > 0.1
