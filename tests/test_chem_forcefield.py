"""Force-field parameter assignment and validation helpers."""

import numpy as np
import pytest

from repro.chem.forcefield import (
    assign_parameters,
    formal_charge_sites,
    refine_hbond_roles,
)
from repro.chem.molecule import Molecule
from repro.chem.validate import ValidationReport, validate_molecule


def carbonyl() -> Molecule:
    """C=O fragment with one attached H: tests charge polarity."""
    return Molecule.from_symbols(
        ["C", "O", "H"],
        [[0.0, 0.0, 0.0], [1.22, 0.0, 0.0], [-0.6, 0.9, 0.0]],
        bonds=[[0, 1], [0, 2]],
    )


class TestAssignParameters:
    def test_electronegativity_polarity(self):
        mol = assign_parameters(carbonyl(), total_charge=0.0)
        # O more electronegative than C: O negative, C positive relative.
        assert mol.charges[1] < mol.charges[0]

    def test_total_charge_respected(self):
        mol = assign_parameters(carbonyl(), total_charge=1.0)
        assert mol.charges.sum() == pytest.approx(1.0)

    def test_typical_model(self):
        mol = assign_parameters(carbonyl(), charge_model="typical")
        assert mol.charges.sum() == pytest.approx(0.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            assign_parameters(carbonyl(), charge_model="qeq")

    def test_lj_parameters_positive(self):
        mol = assign_parameters(carbonyl())
        assert (mol.sigma > 0).all() and (mol.epsilon > 0).all()

    def test_no_bonds_still_works(self):
        atom = Molecule.from_symbols(["C"], [[0, 0, 0]])
        mol = assign_parameters(atom)
        assert mol.charges.shape == (1,)

    def test_original_not_mutated(self):
        orig = carbonyl()
        before = orig.charges.copy()
        assign_parameters(orig, total_charge=5.0)
        np.testing.assert_array_equal(orig.charges, before)


class TestRefineHbondRoles:
    def test_donor_requires_attached_h(self):
        # O in carbonyl has no H -> loses donor status; C has H but C is
        # not a donor element anyway.
        mol = refine_hbond_roles(carbonyl())
        assert not mol.hbond_donor[1]

    def test_hydroxyl_keeps_donor(self):
        oh = Molecule.from_symbols(
            ["O", "H"], [[0, 0, 0], [0.96, 0, 0]], bonds=[[0, 1]]
        )
        mol = refine_hbond_roles(oh)
        assert mol.hbond_donor[0]

    def test_no_bonds_passthrough(self):
        atom = Molecule.from_symbols(["O"], [[0, 0, 0]])
        mol = refine_hbond_roles(atom)
        assert mol.n_atoms == 1


class TestFormalChargeSites:
    def test_threshold(self):
        mol = carbonyl()
        mol.charges = np.array([0.5, -0.5, 0.0])
        np.testing.assert_array_equal(formal_charge_sites(mol, 0.4), [0, 1])

    def test_none_found(self):
        mol = carbonyl()
        mol.charges = np.zeros(3)
        assert formal_charge_sites(mol).size == 0


class TestValidateMolecule:
    def test_good_molecule_passes(self):
        rep = validate_molecule(carbonyl())
        assert rep.ok and bool(rep)

    def test_nan_coords_flagged(self):
        mol = carbonyl()
        mol.coords[0, 0] = np.nan
        rep = validate_molecule(mol)
        assert not rep.ok
        assert any("coordinates" in e for e in rep.errors)

    def test_nan_charge_flagged(self):
        mol = carbonyl()
        mol.charges[0] = np.inf
        assert not validate_molecule(mol).ok

    def test_close_atoms_warn(self):
        mol = Molecule.from_symbols(
            ["C", "C"], [[0, 0, 0], [0.3, 0, 0]]
        )
        rep = validate_molecule(mol)
        assert rep.ok  # warning, not error
        assert rep.warnings

    def test_too_short_bond_is_error(self):
        mol = Molecule.from_symbols(
            ["C", "C"], [[0, 0, 0], [0.3, 0, 0]], bonds=[[0, 1]]
        )
        assert not validate_molecule(mol).ok

    def test_raise_if_failed(self):
        rep = ValidationReport(errors=["boom"])
        with pytest.raises(ValueError, match="boom"):
            rep.raise_if_failed()

    def test_raise_if_ok_is_noop(self):
        ValidationReport().raise_if_failed()
