"""DQN agent: learning mechanics, target network, variants."""

import numpy as np
import pytest

from repro.config import PAPER_CONFIG
from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.distributional import (
    DistributionalConfig,
    DistributionalDQNAgent,
)
from repro.rl.prioritized_replay import PrioritizedReplayMemory


def small_agent(**overrides) -> DQNAgent:
    cfg = AgentConfig(
        state_dim=6,
        n_actions=3,
        hidden_sizes=(16,),
        replay_capacity=256,
        minibatch_size=8,
        initial_exploration_steps=0,
        epsilon_start=1.0,
        epsilon_final=0.0,
        epsilon_decay=0.01,
        learning_rate=0.01,
        seed=0,
        **overrides,
    )
    return DQNAgent(cfg)


def feed_transitions(agent, n=64, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        s = rng.normal(size=6)
        a = int(rng.integers(3))
        # Reward depends on action: action 1 is best everywhere.
        r = 1.0 if a == 1 else -1.0
        s2 = rng.normal(size=6)
        agent.remember(s, a, r, s2, bool(rng.uniform() < 0.2))


class TestAgentConfig:
    def test_from_run_config_maps_table1(self):
        ac = AgentConfig.from_run_config(PAPER_CONFIG, 16599, 12)
        assert ac.hidden_sizes == (135, 135)
        assert ac.gamma == 0.99
        assert ac.learning_rate == 0.00025
        assert ac.minibatch_size == 32
        assert ac.replay_capacity == 400000
        assert not ac.double and not ac.dueling

    def test_variant_flags(self):
        ddqn = AgentConfig.from_run_config(
            PAPER_CONFIG.replace(variant="dueling-ddqn"), 10, 4
        )
        assert ddqn.double and ddqn.dueling


class TestActing:
    def test_q_shape(self):
        agent = small_agent()
        q = agent.predict_q(np.zeros(6))
        assert q.shape == (3,)

    def test_act_returns_action_and_q(self):
        agent = small_agent()
        a, q = agent.act(np.zeros(6), global_step=10**6)
        assert 0 <= a < 3
        assert q.shape == (3,)
        assert a == int(np.argmax(q))  # epsilon fully decayed

    def test_greedy_action_matches_argmax(self):
        agent = small_agent()
        s = np.ones(6)
        assert agent.greedy_action(s) == int(np.argmax(agent.predict_q(s)))


class TestLearning:
    def test_can_learn_threshold(self):
        agent = small_agent()
        assert not agent.can_learn()
        feed_transitions(agent, n=8)
        assert agent.can_learn()

    def test_learn_reduces_td_error_on_bandit(self):
        # Supervised sanity: with gamma=0 the target is just the reward,
        # so the Q-network should learn "action 1 good, others bad".
        agent = small_agent(gamma=0.0)
        feed_transitions(agent, n=200)
        for _ in range(300):
            agent.learn()
        rng = np.random.default_rng(99)
        states = rng.normal(size=(20, 6))
        q = np.stack([agent.predict_q(s) for s in states])
        assert (np.argmax(q, axis=1) == 1).mean() > 0.9

    def test_learn_info_fields(self):
        agent = small_agent()
        feed_transitions(agent)
        info = agent.learn()
        assert np.isfinite(info.loss)
        assert np.isfinite(info.max_q)
        assert info.mean_td_error >= 0.0

    def test_terminal_states_bootstrap_blocked(self):
        # All transitions terminal with reward 0 -> targets are 0, Q
        # collapses toward 0 regardless of gamma.
        agent = small_agent(gamma=0.99)
        rng = np.random.default_rng(1)
        for _ in range(100):
            s = rng.normal(size=6)
            agent.remember(s, int(rng.integers(3)), 0.0, s, True)
        for _ in range(400):
            agent.learn()
        q = agent.predict_q(rng.normal(size=6))
        assert np.abs(q).max() < 0.5

    def test_learn_steps_counted(self):
        agent = small_agent()
        feed_transitions(agent)
        agent.learn()
        agent.learn()
        assert agent.learn_steps == 2


class TestTargetNetwork:
    def test_starts_synced(self):
        agent = small_agent()
        s = np.ones(6)
        np.testing.assert_allclose(
            agent.q_net.predict(s), agent.target_net.predict(s)
        )

    def test_diverges_then_syncs(self):
        agent = small_agent()
        feed_transitions(agent)
        for _ in range(20):
            agent.learn()
        s = np.ones(6)
        assert not np.allclose(
            agent.q_net.predict(s), agent.target_net.predict(s)
        )
        agent.sync_target()
        np.testing.assert_allclose(
            agent.q_net.predict(s), agent.target_net.predict(s)
        )
        assert agent.target_syncs == 1


class TestVariants:
    def test_double_runs(self):
        agent = small_agent(double=True)
        feed_transitions(agent)
        info = agent.learn()
        assert np.isfinite(info.loss)

    def test_dueling_network_type(self):
        agent = small_agent(dueling=True)
        q = agent.predict_q(np.zeros(6))
        assert q.shape == (3,)
        feed_transitions(agent)
        assert np.isfinite(agent.learn().loss)

    def test_prioritized_replay_used(self):
        agent = small_agent(prioritized=True)
        assert isinstance(agent.replay, PrioritizedReplayMemory)
        feed_transitions(agent)
        agent.learn()  # priorities updated without error

    def test_double_differs_from_vanilla(self):
        # Same seed, same data: DDQN target computation must diverge from
        # vanilla DQN after enough updates.
        a = small_agent(double=False)
        b = small_agent(double=True)
        feed_transitions(a, seed=7)
        feed_transitions(b, seed=7)
        for _ in range(100):
            a.learn()
            b.learn()
        s = np.ones(6)
        assert not np.allclose(a.predict_q(s), b.predict_q(s), atol=1e-3)


class TestDistributional:
    def make(self) -> DistributionalDQNAgent:
        cfg = AgentConfig(
            state_dim=6,
            n_actions=3,
            hidden_sizes=(16,),
            replay_capacity=256,
            minibatch_size=8,
            initial_exploration_steps=0,
            epsilon_decay=0.01,
            learning_rate=0.01,
            seed=0,
        )
        return DistributionalDQNAgent(
            cfg, DistributionalConfig(n_atoms=11, v_min=-2.0, v_max=2.0)
        )

    def test_distribution_normalized(self):
        agent = self.make()
        probs = agent._distribution(agent.q_net, np.zeros((4, 6)))
        assert probs.shape == (4, 3, 11)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)
        assert (probs >= 0).all()

    def test_predict_q_within_support(self):
        agent = self.make()
        q = agent.predict_q(np.zeros(6))
        assert q.shape == (3,)
        assert (q >= -2.0).all() and (q <= 2.0).all()

    def test_projection_preserves_mass(self):
        agent = self.make()
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(11), size=5)
        m = agent._project_target(
            rewards=rng.normal(size=5),
            terminals=np.array([True, False, True, False, False]),
            next_probs=probs,
        )
        np.testing.assert_allclose(m.sum(axis=1), 1.0, atol=1e-9)

    def test_terminal_projection_is_reward_spike(self):
        agent = self.make()
        m = agent._project_target(
            rewards=np.array([1.0]),
            terminals=np.array([True]),
            next_probs=np.full((1, 11), 1 / 11),
        )
        # All mass concentrated around z = 1.0 (atoms at -2..2, step .4).
        support = agent.dist.support
        mean = float(m[0] @ support)
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_learns_bandit(self):
        agent = self.make()
        rng = np.random.default_rng(3)
        for _ in range(200):
            s = rng.normal(size=6)
            a = int(rng.integers(3))
            agent.remember(s, a, 1.0 if a == 2 else -1.0, s, True)
        for _ in range(300):
            agent.learn()
        states = rng.normal(size=(20, 6))
        picks = [agent.greedy_action(s) for s in states]
        assert np.mean(np.array(picks) == 2) > 0.9

    def test_invalid_dist_config(self):
        with pytest.raises(ValueError):
            DistributionalConfig(n_atoms=1)
        with pytest.raises(ValueError):
            DistributionalConfig(v_min=1.0, v_max=-1.0)

    def test_sync_target(self):
        agent = self.make()
        rng = np.random.default_rng(1)
        for _ in range(50):
            s = rng.normal(size=6)
            agent.remember(s, 0, 1.0, s, True)
        for _ in range(10):
            agent.learn()
        agent.sync_target()
        s = np.ones(6)
        np.testing.assert_allclose(
            agent.q_net.predict(s), agent.target_net.predict(s)
        )
