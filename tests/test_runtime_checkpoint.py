"""Runtime layer: full-state checkpoints and interrupt-resume equality.

The load-bearing property is bit-exactness: a run interrupted at any
safe boundary and resumed from its checkpoint must produce exactly the
history, losses, and network weights of the uninterrupted run.  The
parametrized tests below prove it across the replay flavours (dense,
compact, prioritized + n-step via the rainbow variant) for both the
sequential :class:`~repro.rl.trainer.Trainer` and the segment-based
:class:`~repro.rl.vector_trainer.VectorTrainer`.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import signal

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.env.docking_env import make_env
from repro.env.factory import make_vector_env
from repro.experiments.figure4 import build_agent, build_agent_for_env
from repro.nn.checkpoints import CheckpointMismatchError
from repro.rl.nstep import NStepTransitionBuffer
from repro.rl.prioritized_replay import PrioritizedReplayMemory
from repro.rl.replay import ReplayMemory
from repro.rl.trainer import Trainer
from repro.rl.vector_trainer import VectorTrainer
from repro.runtime import (
    CHECKPOINT_DIR_NAME,
    Checkpoint,
    CheckpointReadError,
    RunInterrupted,
    RunLoop,
    RuntimeContext,
    ShutdownGuard,
    checkpoint_info,
    latest_checkpoint,
    memoized,
    read_meta,
)
from repro.runtime.checkpoint import SCHEMA_VERSION


# ---------------------------------------------------------------------------
# helpers


def _assert_state_equal(a, b, path=""):
    """Deep equality of two state_dict trees (NaN-aware arrays)."""
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys {set(a) ^ set(b)}"
        for k in a:
            _assert_state_equal(a[k], b[k], f"{path}/{k}")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        assert np.array_equal(a, b, equal_nan=True), path
    elif isinstance(a, float):
        assert a == b or (a != a and b != b), f"{path}: {a} vs {b}"
    else:
        assert a == b, f"{path}: {a} vs {b}"


def _assert_histories_equal(a, b):
    assert a.total_steps == b.total_steps
    assert len(a.episodes) == len(b.episodes)
    for ea, eb in zip(a.episodes, b.episodes):
        da, db = dataclasses.asdict(ea), dataclasses.asdict(eb)
        assert set(da) == set(db)
        for k in da:
            va, vb = da[k], db[k]
            if isinstance(va, float) and va != va:
                assert vb != vb, (k, va, vb)
            else:
                assert va == vb, (k, va, vb)


def _make_trainer(cfg, on_episode_end=None):
    env = make_env(cfg)
    agent = build_agent_for_env(cfg, env)
    trainer = Trainer(
        env,
        agent,
        episodes=cfg.episodes,
        max_steps_per_episode=cfg.max_steps_per_episode,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
        on_episode_end=on_episode_end,
    )
    return env, agent, trainer


def _make_vector(cfg, n_envs=2):
    venv = make_vector_env(cfg, n_envs=n_envs, backend="sync")
    agent = build_agent(cfg, venv.state_dim, venv.n_actions)
    vtrainer = VectorTrainer(
        venv,
        agent,
        learning_start=cfg.learning_start,
        target_update_steps=cfg.target_update_steps,
        train_interval=cfg.train_interval,
    )
    return venv, agent, vtrainer


class _StopAfterCheckpoint:
    """Guard stub: latches once the phase's snapshot reaches ``step``.

    Emulates a signal arriving while the next segment runs, so the loop
    stops right after the checkpoint covering ``step`` is on disk.
    """

    def __init__(self, runtime, phase, step):
        self._runtime = runtime
        self._phase = phase
        self._step = step

    @property
    def stop_requested(self):
        path = self._runtime.checkpoint_path(self._phase)
        if not path.exists():
            return False
        return read_meta(path).get("global_step", 0) >= self._step


# ---------------------------------------------------------------------------
# checkpoint file format


class TestCheckpointFormat:
    def test_roundtrip_arrays_and_scalars(self, tmp_path):
        state = {
            "weights": {"w0": np.arange(6.0).reshape(2, 3)},
            "flags": {"n": 3, "name": "adam", "nan": float("nan")},
            "ring": np.arange(4, dtype=np.int64),
        }
        meta = {"phase": "t", "complete": False, "global_step": 40}
        path = tmp_path / "c.npz"
        Checkpoint(state=state, meta=meta).write(path)
        loaded = Checkpoint.load(path)
        assert loaded.meta == meta
        _assert_state_equal(loaded.state, state)

    def test_read_meta_skips_arrays(self, tmp_path):
        path = tmp_path / "c.npz"
        Checkpoint(
            state={"big": np.zeros(128)}, meta={"global_step": 7}
        ).write(path)
        assert read_meta(path)["global_step"] == 7

    def test_checkpoint_info(self, tmp_path):
        path = tmp_path / "c.npz"
        Checkpoint(
            state={"a": np.zeros(3), "b": {"c": np.ones(2)}},
            meta={"phase": "x"},
        ).write(path)
        info = checkpoint_info(path)
        assert info["n_arrays"] == 2
        assert info["meta"]["phase"] == "x"
        assert info["file_bytes"] == path.stat().st_size

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        path = tmp_path / "c.npz"
        Checkpoint(state={"a": np.zeros(2)}, meta={}).write(path)
        Checkpoint(state={"a": np.ones(2)}, meta={}).write(path)
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]
        assert np.array_equal(Checkpoint.load(path).state["a"], np.ones(2))

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(CheckpointReadError):
            read_meta(path)

    def test_missing_meta_member_raises(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(CheckpointReadError, match="__meta__"):
            Checkpoint.load(path)

    def test_unknown_schema_raises(self, tmp_path):
        blob = json.dumps(
            {"schema": SCHEMA_VERSION + 1, "meta": {}, "state": {}}
        ).encode()
        buf = io.BytesIO()
        np.savez(buf, __meta__=np.frombuffer(blob, dtype=np.uint8))
        path = tmp_path / "future.npz"
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointReadError, match="schema"):
            read_meta(path)

    def test_latest_checkpoint(self, tmp_path):
        assert latest_checkpoint(tmp_path / "nope") is None
        assert latest_checkpoint(tmp_path) is None
        old = tmp_path / "a.npz"
        new = tmp_path / "b.npz"
        Checkpoint(state={}, meta={"k": 1}).write(old)
        Checkpoint(state={}, meta={"k": 2}).write(new)
        os.utime(old, (1, 1))
        os.utime(new, (2, 2))
        assert latest_checkpoint(tmp_path) == new


# ---------------------------------------------------------------------------
# shutdown guard


class TestShutdownGuard:
    def test_request_stop_latches(self):
        guard = ShutdownGuard()
        assert not guard.stop_requested
        guard.request_stop()
        assert guard.stop_requested

    def test_signal_latches_and_restores_handler(self):
        previous = signal.getsignal(signal.SIGTERM)
        with ShutdownGuard() as guard:
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.stop_requested
            assert guard.signal_number == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_second_signal_raises(self):
        with ShutdownGuard() as guard:
            os.kill(os.getpid(), signal.SIGTERM)
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
            assert guard.stop_requested


# ---------------------------------------------------------------------------
# component state_dict round-trips


class TestComponentRoundTrips:
    def _fill(self, mem, n, state_dim, rng):
        for _ in range(n):
            mem.push(
                rng.normal(size=state_dim),
                int(rng.integers(6)),
                float(rng.normal()),
                rng.normal(size=state_dim),
                bool(rng.integers(2)),
            )

    def test_dense_replay_roundtrip(self, rng):
        a = ReplayMemory(32, 5, seed=1)
        self._fill(a, 20, 5, rng)
        b = ReplayMemory(32, 5, seed=999)
        b.load_state_dict(a.state_dict())
        _assert_state_equal(b.state_dict(), a.state_dict())

    def test_replay_capacity_mismatch(self):
        a = ReplayMemory(32, 5)
        b = ReplayMemory(16, 5)
        with pytest.raises(CheckpointMismatchError):
            b.load_state_dict(a.state_dict())

    def test_replay_layout_mismatch(self, rng):
        dense = ReplayMemory(16, 5)
        compact = ReplayMemory(
            16, 5, static_prefix=np.zeros(2, dtype=np.float32)
        )
        with pytest.raises(CheckpointMismatchError):
            compact.load_state_dict(dense.state_dict())

    def test_compact_static_prefix_mismatch(self):
        a = ReplayMemory(16, 5, static_prefix=np.zeros(2, dtype=np.float32))
        b = ReplayMemory(16, 5, static_prefix=np.ones(2, dtype=np.float32))
        with pytest.raises(CheckpointMismatchError):
            b.load_state_dict(a.state_dict())

    def test_prioritized_roundtrip_and_mismatch(self, rng):
        a = PrioritizedReplayMemory(16, 4, seed=3)
        self._fill(a, 10, 4, rng)
        b = PrioritizedReplayMemory(16, 4, seed=7)
        b.load_state_dict(a.state_dict())
        _assert_state_equal(b.state_dict(), a.state_dict())
        dense = ReplayMemory(16, 4)
        with pytest.raises(CheckpointMismatchError):
            dense.load_state_dict(a.state_dict())

    def test_nstep_roundtrip(self, rng):
        a = NStepTransitionBuffer(3, 0.95)
        for _ in range(2):  # partial window
            a.push(
                rng.normal(size=4),
                1,
                0.5,
                rng.normal(size=4),
                False,
            )
        b = NStepTransitionBuffer(3, 0.95)
        b.load_state_dict(a.state_dict())
        _assert_state_equal(b.state_dict(), a.state_dict())
        c = NStepTransitionBuffer(2, 0.95)
        with pytest.raises(CheckpointMismatchError):
            c.load_state_dict(a.state_dict())


# ---------------------------------------------------------------------------
# runtime context: memoization + interrupt checks


class TestRuntimeContext:
    def test_memoized_computes_once(self, tmp_path):
        rt = RuntimeContext(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"x": 2}

        assert rt.cached("unit", compute) == {"x": 2}
        assert rt.cached("unit", compute) == {"x": 2}
        assert len(calls) == 1
        # persists across context instances
        rt2 = RuntimeContext(tmp_path)
        assert rt2.cached("unit", compute) == {"x": 2}
        assert len(calls) == 1

    def test_memoized_decode_on_hit(self, tmp_path):
        @dataclasses.dataclass
        class Point:
            x: int

        rt = RuntimeContext(tmp_path)
        first = memoized(rt, "p", lambda: Point(3), decode=lambda d: Point(**d))
        assert first == Point(3)
        rt2 = RuntimeContext(tmp_path)
        hit = memoized(rt2, "p", lambda: Point(99), decode=lambda d: Point(**d))
        assert hit == Point(3)

    def test_memoized_without_runtime(self):
        assert memoized(None, "k", lambda: 7) == 7

    def test_check_interrupt_raises(self, tmp_path):
        guard = ShutdownGuard()
        rt = RuntimeContext(tmp_path, guard=guard)
        rt.check_interrupt("phase-a")  # no-op while quiet
        guard.request_stop()
        with pytest.raises(RunInterrupted, match="phase-a"):
            rt.check_interrupt("phase-a")


# ---------------------------------------------------------------------------
# the tentpole property: interrupt + resume == uninterrupted


TRAINER_VARIANTS = [
    pytest.param("dqn", False, id="dqn-dense"),
    pytest.param("dqn", True, id="dqn-compact"),
    pytest.param("rainbow", False, id="rainbow-dense"),
    pytest.param("rainbow", True, id="rainbow-compact"),
]


class TestTrainerResume:
    @pytest.mark.parametrize("variant,compact", TRAINER_VARIANTS)
    def test_interrupt_resume_bit_exact(self, tmp_path, variant, compact):
        cfg = ci_scale_config(
            episodes=6,
            seed=3,
            max_steps=12,
            variant=variant,
            compact_states=compact,
        )

        # Uninterrupted reference (same cadence: snapshots are pure
        # observation in episode mode, but keep the runs symmetric).
        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=2)
        env, agent_a, trainer = _make_trainer(cfg)
        hist_a = RunLoop(rt_a, phase="t").run_episodes(trainer)
        env.close()
        state_a = agent_a.state_dict()

        # Interrupted at the end of episode 2 (SIGTERM semantics).
        guard = ShutdownGuard()

        def on_end(stats):
            if stats.episode == 2:
                guard.request_stop()

        rt_b = RuntimeContext(tmp_path / "b", checkpoint_every=2, guard=guard)
        env, _, trainer_b = _make_trainer(cfg, on_episode_end=on_end)
        with pytest.raises(RunInterrupted):
            RunLoop(rt_b, phase="t").run_episodes(trainer_b)
        env.close()
        assert rt_b.checkpoint_path("t").exists()
        assert not read_meta(rt_b.checkpoint_path("t"))["complete"]

        # Resume into a fresh process-equivalent: new env + new agent.
        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=2)
        env, agent_c, trainer_c = _make_trainer(cfg)
        hist_b = RunLoop(rt_c, phase="t").run_episodes(trainer_c)
        env.close()

        _assert_histories_equal(hist_a, hist_b)
        _assert_state_equal(agent_c.state_dict(), state_a)

    def test_completed_phase_short_circuits(self, tmp_path):
        cfg = ci_scale_config(episodes=3, seed=1, max_steps=8)
        rt = RuntimeContext(tmp_path, checkpoint_every=0)
        env, agent_a, trainer = _make_trainer(cfg)
        hist_a = RunLoop(rt, phase="t").run_episodes(trainer)
        env.close()

        env, agent_b, trainer_b = _make_trainer(cfg)
        hist_b = RunLoop(rt, phase="t").run_episodes(trainer_b)
        env.close()
        _assert_histories_equal(hist_a, hist_b)
        # The short-circuit restored the trained weights into agent_b
        # without running a single episode.
        _assert_state_equal(agent_b.state_dict(), agent_a.state_dict())


class TestVectorResume:
    @pytest.mark.parametrize("variant", ["dqn", "rainbow"])
    def test_interrupt_resume_bit_exact(self, tmp_path, variant):
        cfg = ci_scale_config(
            episodes=4, seed=5, max_steps=12, variant=variant
        )
        total, segment = 72, 24

        # Reference: segmented but uninterrupted.  Segmentation is part
        # of the run definition, so the cadence must match.
        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=segment)
        venv, agent_a, vt = _make_vector(cfg)
        stats_a = RunLoop(rt_a, phase="v").run_steps(vt, total)
        venv.close()
        state_a = agent_a.state_dict()

        # Interrupted right after the first segment's checkpoint.
        rt_b = RuntimeContext(tmp_path / "b", checkpoint_every=segment)
        rt_b.guard = _StopAfterCheckpoint(rt_b, "v", segment)
        venv, _, vt_b = _make_vector(cfg)
        with pytest.raises(RunInterrupted):
            RunLoop(rt_b, phase="v").run_steps(vt_b, total)
        venv.close()
        meta = read_meta(rt_b.checkpoint_path("v"))
        assert not meta["complete"]
        assert meta["next_step"] == segment

        # Resume with fresh envs + agent.
        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=segment)
        venv, agent_c, vt_c = _make_vector(cfg)
        stats_b = RunLoop(rt_c, phase="v").run_steps(vt_c, total)
        venv.close()

        assert stats_b.total_steps == stats_a.total_steps == total
        assert stats_b.episodes_completed == stats_a.episodes_completed
        assert stats_b.best_score == stats_a.best_score
        assert stats_b.mean_reward == stats_a.mean_reward
        _assert_state_equal(agent_c.state_dict(), state_a)

    def test_completed_phase_short_circuits(self, tmp_path):
        cfg = ci_scale_config(episodes=2, seed=2, max_steps=10)
        rt = RuntimeContext(tmp_path, checkpoint_every=0)
        venv, agent_a, vt = _make_vector(cfg)
        stats_a = RunLoop(rt, phase="v").run_steps(vt, 40)
        venv.close()

        venv, agent_b, vt_b = _make_vector(cfg)
        stats_b = RunLoop(rt, phase="v").run_steps(vt_b, 40)
        venv.close()
        assert stats_b.total_steps == stats_a.total_steps
        assert stats_b.best_score == stats_a.best_score
        _assert_state_equal(agent_b.state_dict(), agent_a.state_dict())


# ---------------------------------------------------------------------------
# CLI: resume + inspect integration


class TestCliResume:
    def _run_figure4(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "run"
        code = main(
            [
                "figure4",
                "--episodes", "4",
                "--max-steps", "10",
                "--checkpoint-every", "2",
                "--log-dir", str(run_dir),
            ]
        )
        capsys.readouterr()
        assert code == 0
        return run_dir

    def test_resume_records_lineage(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = self._run_figure4(tmp_path, capsys)
        first = json.loads((run_dir / "manifest.json").read_text())
        assert first["status"] == "completed"
        assert first["parent_run_id"] is None

        # Resuming a completed run short-circuits on the checkpoint but
        # still re-dispatches and seals a new manifest with lineage.
        assert main(["resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "resuming 'figure4'" in out
        second = json.loads((run_dir / "manifest.json").read_text())
        assert second["status"] == "completed"
        assert second["parent_run_id"] == first["run_id"]
        assert second["resume_step"] is not None

    def test_resume_missing_manifest_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["resume", str(tmp_path / "nowhere")]) == 1
        assert "manifest" in capsys.readouterr().err

    def test_sigterm_subprocess_resume(self, tmp_path):
        """Real signal path: SIGTERM -> exit 130 -> resume completes."""
        import subprocess
        import sys
        import time

        run_dir = tmp_path / "run"
        env = dict(os.environ)
        src = str((
            __import__("pathlib").Path(__file__).parent.parent / "src"
        ))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable, "-m", "repro", "figure4",
            "--episodes", "40", "--max-steps", "20",
            "--checkpoint-every", "1", "--log-dir", str(run_dir),
        ]
        proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        ckpt = run_dir / CHECKPOINT_DIR_NAME / "figure4.npz"
        deadline = time.monotonic() + 60
        while not ckpt.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert ckpt.exists(), "no checkpoint before deadline"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 130
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "interrupted"

        done = subprocess.run(
            [sys.executable, "-m", "repro", "resume", str(run_dir)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert done.returncode == 0, done.stderr
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "completed"
        assert manifest["parent_run_id"] is not None
        assert read_meta(ckpt)["complete"]

    def test_inspect_renders_checkpoints(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = self._run_figure4(tmp_path, capsys)
        assert (run_dir / CHECKPOINT_DIR_NAME / "figure4.npz").exists()
        assert main(["inspect", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Checkpoints" in out
        assert "figure4.npz" in out
        assert "4/4 ep" in out
