"""Seeded equivalence of compact-state replay against dense storage.

The compact layout (static prefix factored out, successor-sharing
dynamic ring, overflow pool) must be an *invisible* optimization: under
the same seed and the same pushes, samples reconstruct bit-for-bit the
states a dense ring would have returned.  Covered here: plain
trajectories, terminal boundaries, ring wrap, interleaved multi-env
pushes, bare-tail pushes, prioritized replay, and the n-step buffer
interaction at agent level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.agent import AgentConfig, DQNAgent
from repro.rl.prioritized_replay import PrioritizedReplayMemory
from repro.rl.replay import ReplayMemory

STATE_DIM = 40
PREFIX_LEN = 28
TAIL_DIM = STATE_DIM - PREFIX_LEN


def _static(seed=0):
    return np.random.default_rng(seed).standard_normal(
        PREFIX_LEN
    ).astype(np.float32)


def _pair(capacity, seed=11, static=None, cls=ReplayMemory):
    """(dense, compact) memories sharing the sampling seed."""
    static = _static() if static is None else static
    dense = cls(capacity, STATE_DIM, seed=seed)
    compact = cls(capacity, STATE_DIM, seed=seed, static_prefix=static)
    return dense, compact, static


def _trajectory(rng, static, n_steps, terminal_every=None):
    """Full-state transitions whose prefix is the shared static block
    and whose next_state chains into the following state."""
    out = []
    state = np.concatenate([static, rng.standard_normal(TAIL_DIM)])
    for t in range(n_steps):
        terminal = (
            terminal_every is not None and (t + 1) % terminal_every == 0
        )
        nxt = np.concatenate([static, rng.standard_normal(TAIL_DIM)])
        out.append(
            (state, int(rng.integers(4)), float(rng.normal()), nxt,
             terminal)
        )
        state = (
            np.concatenate([static, rng.standard_normal(TAIL_DIM)])
            if terminal else nxt
        )
    return out


def _push_all(mem, transitions):
    for s, a, r, ns, term in transitions:
        mem.push(s, a, r, ns, term, discount=0.99)


def _assert_batches_equal(b1, b2):
    np.testing.assert_array_equal(b1.states, b2.states)
    np.testing.assert_array_equal(b1.next_states, b2.next_states)
    np.testing.assert_array_equal(b1.actions, b2.actions)
    np.testing.assert_array_equal(b1.rewards, b2.rewards)
    np.testing.assert_array_equal(b1.terminals, b2.terminals)
    np.testing.assert_array_equal(b1.indices, b2.indices)
    np.testing.assert_array_equal(b1.discounts, b2.discounts)


def _assert_contents_equal(dense, compact):
    assert len(dense) == len(compact)
    for i in range(len(dense)):
        td, tc = dense[i], compact[i]
        np.testing.assert_array_equal(td.state, tc.state)
        np.testing.assert_array_equal(td.next_state, tc.next_state)
        assert td.action == tc.action
        assert td.reward == tc.reward
        assert td.terminal == tc.terminal


class TestCompactVsDense:
    def test_identical_samples_plain_trajectory(self):
        dense, compact, static = _pair(capacity=64)
        traj = _trajectory(np.random.default_rng(1), static, 50)
        _push_all(dense, traj)
        _push_all(compact, traj)
        for _ in range(10):
            _assert_batches_equal(dense.sample(8), compact.sample(8))

    def test_identical_samples_with_terminals(self):
        dense, compact, static = _pair(capacity=64)
        traj = _trajectory(
            np.random.default_rng(2), static, 60, terminal_every=7
        )
        _push_all(dense, traj)
        _push_all(compact, traj)
        _assert_contents_equal(dense, compact)
        for _ in range(10):
            _assert_batches_equal(dense.sample(16), compact.sample(16))

    def test_identical_after_ring_wrap(self):
        # Capacity 16, 3x overwritten, episodes ending mid-ring: the
        # successor aliasing must stay correct through every overwrite.
        dense, compact, static = _pair(capacity=16)
        traj = _trajectory(
            np.random.default_rng(3), static, 55, terminal_every=5
        )
        _push_all(dense, traj)
        _push_all(compact, traj)
        assert compact.is_full
        _assert_contents_equal(dense, compact)
        for _ in range(20):
            _assert_batches_equal(dense.sample(8), compact.sample(8))

    def test_interleaved_multi_env_pushes(self):
        # Two independent trajectories pushed alternately (the vector
        # trainer's pattern): successors never land in adjacent slots,
        # so every next-state must spill to the overflow pool -- and
        # samples must still match dense exactly.
        dense, compact, static = _pair(capacity=32)
        rng = np.random.default_rng(4)
        t_a = _trajectory(rng, static, 30, terminal_every=9)
        t_b = _trajectory(rng, static, 30, terminal_every=11)
        for pair in zip(t_a, t_b):
            for s, a, r, ns, term in pair:
                dense.push(s, a, r, ns, term)
                compact.push(s, a, r, ns, term)
        _assert_contents_equal(dense, compact)
        for _ in range(10):
            _assert_batches_equal(dense.sample(8), compact.sample(8))

    def test_bare_tail_pushes_match_full_state_pushes(self):
        _, compact_tails, static = _pair(capacity=32)
        dense, compact_full, _ = _pair(capacity=32, static=static)
        traj = _trajectory(np.random.default_rng(5), static, 25)
        _push_all(dense, traj)
        _push_all(compact_full, traj)
        for s, a, r, ns, term in traj:
            compact_tails.push(
                s[PREFIX_LEN:], a, r, ns[PREFIX_LEN:], term,
                discount=0.99,
            )
        _assert_contents_equal(compact_full, compact_tails)
        _assert_batches_equal(dense.sample(8), compact_tails.sample(8))

    def test_prioritized_identical_samples(self):
        dense, compact, static = _pair(
            capacity=64, cls=PrioritizedReplayMemory
        )
        traj = _trajectory(
            np.random.default_rng(6), static, 50, terminal_every=8
        )
        _push_all(dense, traj)
        _push_all(compact, traj)
        for _ in range(5):
            bd = dense.sample(8)
            bc = compact.sample(8)
            _assert_batches_equal(bd, bc)
            np.testing.assert_array_equal(bd.weights, bc.weights)
            errs = np.random.default_rng(7).normal(size=8)
            dense.update_priorities(bd.indices, errs)
            compact.update_priorities(bc.indices, errs)

    def test_capacity_one(self):
        dense, compact, static = _pair(capacity=1)
        traj = _trajectory(np.random.default_rng(8), static, 5)
        _push_all(dense, traj)
        _push_all(compact, traj)
        _assert_contents_equal(dense, compact)


class TestCompactInternals:
    def test_overflow_rows_are_recycled(self):
        # Long multi-episode run on a small ring: the overflow pool must
        # stay bounded by the ring capacity (free-list recycling).
        static = _static()
        mem = ReplayMemory(8, STATE_DIM, seed=0, static_prefix=static)
        traj = _trajectory(
            np.random.default_rng(9), static, 200, terminal_every=3
        )
        _push_all(mem, traj)
        assert mem._overflow.shape[0] <= mem.capacity
        live = sum(1 for r in mem._next_ref if r >= 0)
        assert live <= mem.capacity

    def test_successor_sharing_uses_no_overflow(self):
        # An unbroken non-terminal trajectory needs at most the pending
        # slot -- zero overflow rows while the ring has not wrapped.
        static = _static()
        mem = ReplayMemory(64, STATE_DIM, seed=0, static_prefix=static)
        traj = _trajectory(np.random.default_rng(10), static, 40)
        _push_all(mem, traj)
        assert mem._over_used == 0

    def test_static_prefix_validation(self):
        with pytest.raises(ValueError):
            ReplayMemory(
                8, STATE_DIM,
                static_prefix=np.zeros((2, 4), dtype=np.float32),
            )
        with pytest.raises(ValueError):
            ReplayMemory(
                8, STATE_DIM,
                static_prefix=np.zeros(STATE_DIM, dtype=np.float32),
            )

    def test_bad_tail_length_raises(self):
        static = _static()
        mem = ReplayMemory(8, STATE_DIM, static_prefix=static)
        with pytest.raises(ValueError):
            mem.push(np.zeros(5), 0, 0.0, np.zeros(5), False)


class TestNbytes:
    def test_nbytes_includes_discounts(self):
        mem = ReplayMemory(100, STATE_DIM)
        assert mem.nbytes() >= mem._discounts.nbytes
        accounted = (
            mem._states.nbytes + mem._next_states.nbytes
            + mem._actions.nbytes + mem._rewards.nbytes
            + mem._terminals.nbytes + mem._discounts.nbytes
        )
        assert mem.nbytes() == accounted

    def test_compact_is_much_smaller_than_dense(self):
        static = _static()
        dense = ReplayMemory(512, STATE_DIM)
        compact = ReplayMemory(512, STATE_DIM, static_prefix=static)
        assert compact.nbytes() < dense.nbytes() / 2

    def test_paper_scale_compact_under_2gb(self):
        # np.zeros is lazy (calloc), so this costs no real memory.
        static = np.zeros(16599 - 267, dtype=np.float32)
        mem = ReplayMemory(400_000, 16599, static_prefix=static)
        assert mem.nbytes() < 2 * 1024**3
        assert mem.prefix_len == 16599 - 267
        assert mem.tail_dim == 267


class TestAgentLevel:
    def _agent(self, static=None, n_step=1, prioritized=False):
        cfg = AgentConfig(
            state_dim=STATE_DIM,
            n_actions=4,
            hidden_sizes=(16,),
            minibatch_size=8,
            replay_capacity=128,
            n_step=n_step,
            prioritized=prioritized,
            seed=42,
        )
        return DQNAgent(cfg, static_state=static)

    def _run_pair(self, n_step=1, prioritized=False, steps=60):
        """Feed the same trajectory to a dense and a compact agent."""
        static = _static()
        dense = self._agent(n_step=n_step, prioritized=prioritized)
        compact = self._agent(
            static=static, n_step=n_step, prioritized=prioritized
        )
        rng = np.random.default_rng(20)
        traj = _trajectory(rng, static, steps, terminal_every=13)
        losses = []
        for s, a, r, ns, term in traj:
            dense.remember(s, a, r, ns, term)
            compact.remember(s, a, r, ns, term)
            if dense.can_learn() and compact.can_learn():
                ld = dense.learn()
                lc = compact.learn()
                losses.append((ld.loss, lc.loss))
        return dense, compact, losses

    def test_learn_identical_one_step(self):
        dense, compact, losses = self._run_pair()
        assert losses
        for ld, lc in losses:
            assert ld == lc
        for pd, pc in zip(dense.q_net.params(), compact.q_net.params()):
            np.testing.assert_array_equal(pd, pc)

    def test_learn_identical_n_step(self):
        # The n-step window snapshots compact tails; targets and
        # resulting weights must still match dense exactly.
        dense, compact, losses = self._run_pair(n_step=3)
        assert losses
        for ld, lc in losses:
            assert ld == lc
        for pd, pc in zip(dense.q_net.params(), compact.q_net.params()):
            np.testing.assert_array_equal(pd, pc)

    def test_learn_identical_prioritized(self):
        dense, compact, losses = self._run_pair(prioritized=True)
        assert losses
        for ld, lc in losses:
            assert ld == lc

    def test_act_accepts_bare_tails(self):
        static = _static()
        compact = self._agent(static=static)
        tail = np.random.default_rng(0).standard_normal(TAIL_DIM)
        full = np.concatenate([static, tail])
        q_tail = compact.predict_q(tail).copy()
        q_full = compact.predict_q(full)
        np.testing.assert_allclose(q_tail, q_full, rtol=1e-6, atol=1e-6)

    def test_replay_bytes_shrink(self):
        static = _static()
        dense = self._agent()
        compact = self._agent(static=static)
        assert compact.replay.nbytes() < dense.replay.nbytes()
