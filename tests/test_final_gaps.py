"""Last-mile coverage: engine scorer modes in the env, conv padding
edges, library metadata, report formatting helpers."""

import numpy as np
import pytest

from repro.env.docking_env import DockingEnv
from repro.metadock.engine import MetadockEngine


class TestEnvWithAlternateScorers:
    def test_training_on_cutoff_engine(self, small_complex):
        from repro.rl.trainer import Trainer
        from tests.test_rl_trainer import tiny_agent

        engine = MetadockEngine(
            small_complex,
            shift_length=0.8,
            rotation_angle_deg=5.0,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 14.0},
        )
        env = DockingEnv(engine)
        agent = tiny_agent(state_dim=env.state_dim, n_actions=env.n_actions)
        history = Trainer(
            env, agent, episodes=2, max_steps_per_episode=10
        ).run()
        assert history.total_steps == 20
        assert np.isfinite(history.best_score)

    def test_cutoff_env_rewards_still_unit(self, small_complex):
        engine = MetadockEngine(
            small_complex,
            scoring_method="cutoff",
            scoring_kwargs={"cutoff": 10.0},
        )
        env = DockingEnv(engine)
        env.reset()
        for a in (5, 5, 0, 7):
            _s, r, _d, _i = env.step(a)
            assert r in (-1.0, 0.0, 1.0)


class TestConvPaddingEdges:
    def test_same_padding_odd_kernel_even_input(self):
        from repro.nn.conv import Conv2D

        conv = Conv2D(1, 1, kernel_size=3, stride=1, padding="same", rng=0)
        out = conv.forward(np.zeros((1, 1, 6, 6)))
        assert out.shape == (1, 1, 6, 6)

    def test_same_padding_with_stride(self):
        from repro.nn.conv import Conv2D

        conv = Conv2D(1, 1, kernel_size=3, stride=3, padding="same", rng=0)
        out = conv.forward(np.zeros((1, 1, 7, 7)))
        # ceil(7 / 3) = 3
        assert out.shape == (1, 1, 3, 3)

    def test_kernel_one(self):
        from repro.nn.conv import Conv2D

        conv = Conv2D(2, 3, kernel_size=1, rng=0)
        x = np.random.default_rng(0).normal(size=(2, 2, 4, 4))
        out = conv.forward(x)
        assert out.shape == (2, 3, 4, 4)
        # 1x1 conv == per-pixel linear map; spot-check one pixel.
        i, j = 1, 2
        expected = x[0, :, i, j] @ conv.w[:, :, 0, 0].T + conv.b
        np.testing.assert_allclose(out[0, :, i, j], expected)


class TestLibraryMetadata:
    def test_net_charge_recorded(self):
        from repro.metadock.library import generate_library
        from tests.conftest import SMALL_COMPLEX_CFG

        lib = generate_library(SMALL_COMPLEX_CFG, 3, seed=0)
        for entry in lib:
            assert entry.net_charge == pytest.approx(
                float(entry.ligand.charges.sum())
            )
            assert entry.n_atoms == entry.ligand.n_atoms

    def test_descriptor_integration(self):
        from repro.chem.descriptors import compute_descriptors
        from repro.metadock.library import generate_library
        from tests.conftest import SMALL_COMPLEX_CFG

        lib = generate_library(SMALL_COMPLEX_CFG, 3, seed=1)
        for entry in lib:
            d = compute_descriptors(entry.ligand)
            assert d.n_atoms == entry.n_atoms
            assert d.lipinski_violations() == 0  # small synthetics


class TestVectorEnvWithWrappers:
    def test_wrapped_envs_vectorize(self, small_complex):
        from repro.env.factory import make_vector_env
        from repro.env.wrappers import TimeLimit

        venv = make_vector_env(
            env_fns=[
                lambda: TimeLimit(
                    DockingEnv(MetadockEngine(small_complex)), 5
                )
            ]
            * 2
        )
        try:
            venv.reset()
            done_seen = False
            for _ in range(6):
                _s, _r, dones, infos = venv.step([0, 1])
                if dones.any():
                    done_seen = True
                    assert "terminal_state" in infos[int(np.argmax(dones))]
            assert done_seen  # TimeLimit fired inside the vector env
        finally:
            venv.close()
