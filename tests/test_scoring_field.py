"""Hybrid field scorer: two-regime accuracy, bit-stability, plumbing.

The load-bearing properties (see ``repro/scoring/field.py``):

- in-box poses track the exact scorer to a small interpolation drift
  of the *clipped* fields -- overlapping pairs (the clash terms) are
  rescored exactly, so deep-clash scores agree to relative rounding;
  fully out-of-box poses match :class:`ExactScorer` *bitwise*;
- the clash-voxel candidate mask is a conservative superset: every
  atom within ``clash_radius`` of any receptor atom is flagged, so
  every overlapping pair receives its exact correction;
- maps are derived state -- shared (warm) and private (cold) builds
  agree bitwise in any ensure() order, so checkpoint resume under
  ``--scoring-method field`` cannot perturb a float;
- end-to-end wiring: factory, config, envs, CLI, telemetry, and
  interrupt/resume through the figure4 trainer stack.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ci_scale_config
from repro.env.factory import make_env
from repro.scoring.field import (
    FIELD_BYTES_METRIC,
    NEAR_FRACTION_METRIC,
    FieldMaps,
    FieldScorer,
)
from repro.scoring.scorers import (
    SCORING_METHODS,
    ExactScorer,
    make_scorer,
)

#: Coarser-than-default lattice for tests: the small-complex box stays
#: tiny, builds stay ~ms, and the drift bounds below are still met.
SPACING = 0.5
#: Smaller-than-default box padding for the same reason (the default
#: is sized for full-length 2BSM docking trajectories).
PADDING = 6.0
#: Absolute drift bound vs exact at SPACING on calm poses of the
#: 120+10 test complex (measured worst ~3.5 -- interpolation of the
#: clipped fields; see field.py for the 2BSM-scale budget).
CALM_TOL = 6.0
#: Relative drift bound on larger-|score| poses: the dominating clash
#: terms come from the exact pair corrections, so drift stays a tiny
#: fraction of the total (measured ~1e-12 on deep clashes).
REL_TOL = 1e-4


@pytest.fixture(scope="module")
def pair(small_complex):
    lig = small_complex.ligand_crystal
    template = lig.with_coords(lig.coords - lig.centroid())
    return small_complex.receptor, template, lig.coords


@pytest.fixture(scope="module")
def scorers(pair):
    rec, template, _ = pair
    return (
        FieldScorer(rec, template, spacing=SPACING, padding=PADDING),
        ExactScorer(rec, template),
    )


def _rot(p, axis, ang):
    axis = axis / np.linalg.norm(axis)
    c, s = np.cos(ang), np.sin(ang)
    centroid = p.mean(axis=0)
    rel = p - centroid
    return (
        centroid
        + rel * c
        + np.cross(axis, rel) * s
        + np.outer(rel @ axis, axis) * (1 - c)
    )


def _drift_ok(se: float, sf: float) -> bool:
    """Within budget: absolute on calm poses, relative on huge ones."""
    return abs(se - sf) <= max(CALM_TOL, REL_TOL * abs(se))


# ---------------------------------------------------------------------------
# two-regime accuracy vs the exact scorer


class TestAccuracy:
    def test_random_jittered_poses(self, scorers, pair, rng):
        fld, exact = scorers
        _, _, coords = pair
        for _ in range(30):
            pose = coords + rng.normal(
                scale=0.5, size=coords.shape
            ) + rng.normal(scale=2.0, size=(1, 3))
            assert _drift_ok(exact.score(pose), fld.score(pose))

    def test_rotation_trajectory(self, scorers, pair, rng):
        fld, exact = scorers
        _, _, coords = pair
        pose = coords.copy()
        for _ in range(40):
            pose = _rot(pose, rng.normal(size=3), np.radians(5.0))
            assert _drift_ok(exact.score(pose), fld.score(pose))

    def test_torsion_actions_via_flex_engine(self, small_complex):
        from repro.metadock.engine import MetadockEngine

        eng = MetadockEngine(
            small_complex,
            shift_length=0.8,
            rotation_angle_deg=5.0,
            n_torsions=2,
            scoring_method="field",
            scoring_kwargs={"spacing": SPACING, "padding": PADDING},
        )
        ref = ExactScorer(eng.receptor, eng.template)
        rng = np.random.default_rng(5)
        for _ in range(40):
            eng.apply_action(int(rng.integers(0, eng.n_actions)))
            assert _drift_ok(ref.score(eng.ligand_coords()), eng.score())

    def test_deep_clash_tracks_exact(self, scorers, pair):
        # The clash-dominating overlap pairs are computed exactly, so
        # a deep clash agrees to relative float rounding (|score| is
        # ~1e15 here; only the smooth interpolated remainder differs).
        fld, exact = scorers
        rec, template, coords = pair
        clash = coords - coords.mean(axis=0) + rec.coords[0]
        se, sf = exact.score(clash), fld.score(clash)
        assert abs(se - sf) <= 1e-7 * abs(se)
        assert fld.near_fraction > 0.5

    def test_out_of_box_bitwise_exact(self, scorers, pair):
        # No silent boundary clamp: fully out-of-box poses are exact.
        fld, exact = scorers
        _, _, coords = pair
        assert fld.score(coords + 500.0) == exact.score(coords + 500.0)
        assert fld.near_fraction == 1.0

    def test_straddling_pose(self, scorers, pair):
        # Some atoms out of box, some far-field in box.
        fld, exact = scorers
        _, _, coords = pair
        pose = coords.copy()
        pose[: pose.shape[0] // 2] += 500.0
        assert _drift_ok(exact.score(pose), fld.score(pose))
        assert 0.0 < fld.near_fraction < 1.0

    def test_error_shrinks_with_spacing(self, pair, rng):
        # Compared on poses hovering off the surface so the result is
        # interpolation-dominated (a coarser lattice also dilates the
        # near mask, which would otherwise mask its own error).
        rec, template, coords = pair
        exact = ExactScorer(rec, template)
        ring = coords - coords.mean(axis=0)
        ring = ring + rec.coords.mean(axis=0) + [0.0, 0.0, 10.0]
        poses = [
            ring + rng.normal(scale=0.3, size=ring.shape)
            for _ in range(10)
        ]
        errs = {}
        for spacing in (1.0, 0.25):
            fld = FieldScorer(rec, template, spacing=spacing, padding=PADDING)
            errs[spacing] = np.mean(
                [abs(fld.score(p) - exact.score(p)) for p in poses]
            )
        assert errs[0.25] < errs[1.0]


# ---------------------------------------------------------------------------
# near-field classification guarantee


class TestClassification:
    def test_candidate_mask_covers_overlaps(self, pair, rng):
        # The documented guarantee: the clash-voxel mask may over-flag
        # (its conservative dilation) but never under-flags -- every
        # atom within clash_radius of any receptor atom sits in a
        # flagged voxel, so its overlapping pairs get corrected.
        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        fld.score(coords)  # force build
        for _ in range(25):
            pose = coords + rng.normal(
                scale=1.5, size=coords.shape
            ) + rng.normal(scale=3.0, size=(1, 3))
            frac = (pose - fld.maps.origin) * fld._inv_spacing
            in_box = (frac >= 0.0).all(axis=1) & (
                frac <= fld._upper
            ).all(axis=1)
            idx = np.clip(
                np.floor(frac).astype(np.int64), 0, fld._max_idx
            )
            flagged = fld._near_flat[idx @ fld._strides]
            dmin = np.sqrt(
                ((pose[:, None, :] - rec.coords[None, :, :]) ** 2)
                .sum(axis=-1)
                .min(axis=1)
            )
            overlapping = dmin < fld.clash_radius
            assert (flagged | ~in_box)[overlapping].all()

    def test_candidate_table_matches_cell_list(self, pair, rng):
        # The voxel CSR table is a precomputed cell list: expanding it
        # for a probe and range-filtering must yield exactly the pairs
        # the reference CellList query finds at clash_radius.
        from repro.scoring.neighborlist import CellList, query_pairs

        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        fld.score(coords)
        maps = fld.maps
        cells = CellList(rec.coords, cell_size=maps.clash_radius)
        for _ in range(10):
            pose = coords + rng.normal(scale=1.0, size=coords.shape)
            frac = (pose - maps.origin) * fld._inv_spacing
            idx = np.clip(
                np.floor(frac).astype(np.int64), 0, fld._max_idx
            )
            vox = idx @ fld._strides
            want_r, want_p = query_pairs(
                cells, pose, maps.clash_radius
            )
            got = set()
            for a in range(pose.shape[0]):
                s = maps.cand_start[vox[a]]
                cand = maps.cand_atoms[s : s + maps.cand_count[vox[a]]]
                d = np.linalg.norm(
                    rec.coords[cand] - pose[a], axis=1
                )
                for c in cand[d <= maps.clash_radius]:
                    got.add((int(c), a))
            assert got == set(
                zip(want_r.tolist(), want_p.tolist())
            )

    def test_near_fraction_tracks_pose(self, pair):
        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        fld.score(coords + 500.0)
        assert fld.near_fraction == 1.0
        # A pose hovering just off the receptor surface but inside the
        # padded box is fully far-field (clash radius + dilation clear).
        ring = coords - coords.mean(axis=0)
        ring = ring + rec.coords.mean(axis=0) + [0.0, 0.0, 10.0]
        fld.score(ring)
        assert fld.near_fraction == 0.0


# ---------------------------------------------------------------------------
# bit-stability: maps are derived state


class TestMapSharing:
    def test_warm_equals_cold_bitwise(self, pair, rng):
        rec, template, coords = pair
        maps = FieldMaps(rec, spacing=SPACING, padding=PADDING)
        warm = FieldScorer(
            rec, template, spacing=SPACING, padding=PADDING, cells=maps
        )
        pose = coords.copy()
        for _ in range(20):
            pose = pose + rng.normal(scale=0.4, size=pose.shape)
            cold = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
            assert warm.score(pose) == cold.score(pose)  # bitwise

    def test_ensure_order_independent(self, pair):
        # Maps built alongside other types == maps built alone.
        rec, template, _ = pair
        maps_a = FieldMaps(rec, spacing=1.0)
        maps_b = FieldMaps(rec, spacing=1.0)
        specs = [
            (3.5, 0.06, True, True),
            (3.1, 0.12, False, True),
            (2.8, 0.02, False, False),
        ]
        maps_a.ensure(specs)  # one batched pass
        for s in reversed(specs):  # three passes, reverse order
            maps_b.ensure([s])
        assert maps_a.build_count == 1 and maps_b.build_count == 3
        np.testing.assert_array_equal(maps_a.phi, maps_b.phi)
        np.testing.assert_array_equal(maps_a.near_mask, maps_b.near_mask)
        np.testing.assert_array_equal(maps_a.cand_atoms, maps_b.cand_atoms)
        np.testing.assert_array_equal(maps_a.cand_count, maps_b.cand_count)
        for key in maps_a._lj:
            for i in range(2):
                np.testing.assert_array_equal(
                    maps_a._lj[key][i], maps_b._lj[key][i]
                )
        for cls in maps_a._hb1210:
            np.testing.assert_array_equal(
                maps_a._hb1210[cls], maps_b._hb1210[cls]
            )
        for p in maps_a._hblj:
            for i in range(2):
                np.testing.assert_array_equal(
                    maps_a._hblj[p][i], maps_b._hblj[p][i]
                )

    def test_ensure_noop_when_built(self, pair):
        rec, template, coords = pair
        maps = FieldMaps(rec, spacing=SPACING, padding=PADDING)
        s1 = FieldScorer(
            rec, template, spacing=SPACING, padding=PADDING, cells=maps
        )
        s1.score(coords)
        builds = maps.build_count
        s2 = FieldScorer(
            rec, template, spacing=SPACING, padding=PADDING, cells=maps
        )
        s2.score(coords)
        assert maps.build_count == builds  # same types, no rebuild

    def test_score_batch_matches_singles(self, pair, rng):
        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        batch = np.concatenate(
            [
                coords[None] + rng.normal(scale=0.8, size=(5, 1, 3)),
                coords[None] + 500.0,
            ]
        )
        singles = np.array([fld.score(c) for c in batch])
        assert np.array_equal(fld.score_batch(batch), singles)

    def test_cells_validation(self, pair):
        rec, template, _ = pair
        with pytest.raises(TypeError, match="FieldMaps"):
            FieldScorer(rec, template, cells=object())
        maps = FieldMaps(rec, spacing=1.0)
        with pytest.raises(ValueError, match="spacing"):
            FieldScorer(rec, template, spacing=0.5, cells=maps)
        with pytest.raises(ValueError, match="clash_radius"):
            FieldScorer(
                rec, template, spacing=1.0, clash_radius=4.0, cells=maps
            )

    def test_parameter_validation(self, pair):
        rec, template, coords = pair
        with pytest.raises(ValueError, match="spacing"):
            FieldMaps(rec, spacing=0.0)
        with pytest.raises(ValueError, match="clash_radius"):
            FieldMaps(rec, clash_radius=-1.0)
        with pytest.raises(ValueError, match="dtype"):
            FieldMaps(rec, dtype="float16")
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        with pytest.raises(ValueError, match="shape"):
            fld.score(coords[:3])
        with pytest.raises(ValueError, match="coords_batch"):
            fld.score_batch(coords)

    def test_float32_maps_halve_memory(self, pair, rng):
        rec, template, coords = pair
        f64 = FieldScorer(rec, template, spacing=1.0, padding=PADDING)
        f32 = FieldScorer(
            rec, template, spacing=1.0, padding=PADDING, dtype="float32"
        )
        s64, s32 = f64.score(coords), f32.score(coords)
        # The clash-voxel table (bool mask + integer CSR) is dtype-
        # independent; the float maps themselves halve exactly.
        m64, m32 = f64.maps, f32.maps
        fixed = sum(
            a.nbytes
            for a in (
                m64.near_mask,
                m64.cand_start,
                m64.cand_count,
                m64.cand_atoms,
            )
        )
        assert (m32.nbytes() - fixed) * 2 == m64.nbytes() - fixed
        assert s32 == pytest.approx(s64, rel=1e-3, abs=1.0)


# ---------------------------------------------------------------------------
# factory / config / env / CLI plumbing


class TestPlumbing:
    def test_factory(self, pair):
        rec, template, _ = pair
        s = make_scorer(
            "field", rec, template, spacing=0.75, clash_radius=3.5
        )
        assert isinstance(s, FieldScorer)
        assert s.spacing == 0.75 and s.clash_radius == 3.5
        assert "field" in SCORING_METHODS

    def test_config_accepts_field(self):
        cfg = ci_scale_config(
            episodes=1,
            scoring_method="field",
            scoring_kwargs={"spacing": 1.0, "dtype": "float32"},
        )
        assert cfg.scoring_method == "field"
        with pytest.raises(ValueError, match="runtime-only"):
            ci_scale_config(
                episodes=1,
                scoring_method="field",
                scoring_kwargs={"cells": None},
            )

    def test_make_env_wires_scorer(self, small_complex):
        cfg = ci_scale_config(
            episodes=1,
            scoring_method="field",
            scoring_kwargs={"spacing": 1.0, "padding": PADDING},
        )
        env = make_env(cfg, small_complex)
        assert isinstance(env.engine.scorer, FieldScorer)
        assert env.engine.scorer.spacing == 1.0

    def test_cli_accepts_field(self):
        from repro.cli import build_parser

        p = build_parser()
        for cmd in ("figure4", "curriculum", "screen"):
            args = p.parse_args([cmd, "--scoring-method", "field"])
            assert args.scoring_method == "field"

    def test_lazy_build(self, pair):
        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=SPACING, padding=PADDING)
        assert fld._foff is None and fld._maps.phi is None
        fld.score(coords)
        assert fld._foff is not None and fld._flat is not None


# ---------------------------------------------------------------------------
# telemetry


class TestTelemetry:
    def test_span_gauge_and_histogram(self, small_complex):
        from repro.metadock.engine import MetadockEngine
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.spans import SpanTracer

        eng = MetadockEngine(
            small_complex,
            scoring_method="field",
            scoring_kwargs={"spacing": 1.0, "padding": PADDING},
        )
        reg, tr = MetricsRegistry(), SpanTracer()
        eng.metrics = reg
        eng.tracer = tr
        assert eng.scorer.metrics is reg and eng.scorer.tracer is tr
        eng.reset()
        scorer = eng.scorer
        assert reg.get(FIELD_BYTES_METRIC).value == float(
            scorer.maps.nbytes()
        )
        assert reg.get(NEAR_FRACTION_METRIC).count >= 1
        assert "field-build" in str(tr.report())

    def test_metrics_attached_after_build(self, pair):
        from repro.telemetry.metrics import MetricsRegistry

        rec, template, coords = pair
        fld = FieldScorer(rec, template, spacing=1.0, padding=PADDING)
        fld.score(coords)
        reg = MetricsRegistry()
        fld.metrics = reg
        assert reg.get(FIELD_BYTES_METRIC).value > 0.0


# ---------------------------------------------------------------------------
# interrupt/resume bit-stability through the trainer stack


class TestFieldResume:
    def test_interrupt_resume_bit_exact(self, tmp_path):
        from repro.experiments.figure4 import build_agent_for_env
        from repro.rl.trainer import Trainer
        from repro.runtime import (
            RunInterrupted,
            RunLoop,
            RuntimeContext,
            ShutdownGuard,
        )

        cfg = ci_scale_config(
            episodes=5,
            seed=3,
            max_steps=12,
            scoring_method="field",
            scoring_kwargs={"spacing": 1.0, "padding": PADDING},
        )

        def make_trainer(on_episode_end=None):
            env = make_env(cfg)
            agent = build_agent_for_env(cfg, env)
            return env, agent, Trainer(
                env,
                agent,
                episodes=cfg.episodes,
                max_steps_per_episode=cfg.max_steps_per_episode,
                learning_start=cfg.learning_start,
                target_update_steps=cfg.target_update_steps,
                train_interval=cfg.train_interval,
                on_episode_end=on_episode_end,
            )

        rt_a = RuntimeContext(tmp_path / "a", checkpoint_every=2)
        env, agent_a, trainer = make_trainer()
        hist_a = RunLoop(rt_a, phase="t").run_episodes(trainer)
        env.close()

        guard = ShutdownGuard()

        def on_end(stats):
            if stats.episode == 2:
                guard.request_stop()

        rt_b = RuntimeContext(
            tmp_path / "b", checkpoint_every=2, guard=guard
        )
        env, _, trainer_b = make_trainer(on_episode_end=on_end)
        with pytest.raises(RunInterrupted):
            RunLoop(rt_b, phase="t").run_episodes(trainer_b)
        env.close()

        # Resume in a fresh stack: maps rebuild cold, which must not
        # perturb a single float (maps are derived state).
        rt_c = RuntimeContext(tmp_path / "b", checkpoint_every=2)
        env, agent_c, trainer_c = make_trainer()
        hist_b = RunLoop(rt_c, phase="t").run_episodes(trainer_c)
        env.close()

        assert hist_a.total_steps == hist_b.total_steps
        assert len(hist_a.episodes) == len(hist_b.episodes)
        for ea, eb in zip(hist_a.episodes, hist_b.episodes):
            da, db = dataclasses.asdict(ea), dataclasses.asdict(eb)
            assert set(da) == set(db)
            for k in da:
                va, vb = da[k], db[k]
                if isinstance(va, float) and va != va:
                    assert vb != vb, (k, va, vb)
                else:
                    assert va == vb, (k, va, vb)

        def deep_equal(a, b):
            if isinstance(a, dict):
                assert set(a) == set(b)
                for k in a:
                    deep_equal(a[k], b[k])
            elif isinstance(a, np.ndarray):
                assert np.array_equal(a, b, equal_nan=True)
            else:
                assert a == b or (a != a and b != b)

        deep_equal(agent_a.state_dict(), agent_c.state_dict())
